#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, rustfmt, clippy.
# Run from anywhere; works on a fresh checkout with no network access
# (external dev-dependencies are vendored under crates/vendor/).
# Mirrors .github/workflows/ci.yml so the local gate matches CI.
set -euo pipefail
cd "$(dirname "$0")/.."

# Property suites run deterministically and under budget: the seed pins
# the per-test case stream (and is echoed in every failure message, so a
# red run reproduces locally with the same PROPTEST_SEED), the cap
# bounds per-property case counts. Override either from the environment
# to widen a run, e.g. PROPTEST_CASES=256 ./scripts/check.sh
export PROPTEST_SEED="${PROPTEST_SEED:-0}"
export PROPTEST_CASES="${PROPTEST_CASES:-16}"
echo "property suites: PROPTEST_SEED=${PROPTEST_SEED} PROPTEST_CASES=${PROPTEST_CASES}"

cargo build --release
cargo test -q
# Fault-injection suite per store backend, mirroring CI's `faults`
# matrix legs (the plain `cargo test` run above covers the default
# CFA_STORE_BACKEND=both).
for backend in replicated sharded; do
    echo "fault-injection suite: CFA_STORE_BACKEND=${backend}"
    CFA_STORE_BACKEND="${backend}" cargo test -q --test faults
done
# Golden race-detector suite per store backend × evaluation mode,
# mirroring CI's `races` matrix legs (the plain `cargo test` run above
# covers the unpinned sweep: both backends, both modes).
for backend in replicated sharded; do
    for mode in semi-naive full-reeval; do
        echo "golden race suite: CFA_STORE_BACKEND=${backend} CFA_EVAL_MODE=${mode}"
        CFA_STORE_BACKEND="${backend}" CFA_EVAL_MODE="${mode}" \
            cargo test -q --test races_golden
    done
done
# Pool-throughput smoke per store backend, mirroring CI's `throughput`
# matrix legs: one repeat of the corpus through the multi-tenant pool.
# The bench asserts all tenants completed, pooled fixpoints match solo
# runs, and analyses/sec is nonzero. Run in a scratch directory so the
# committed BENCH_engine.json (a release-build measurement) is not
# overwritten by a smoke run.
throughput_scratch="$(mktemp -d)"
trap 'rm -rf "${throughput_scratch}"' EXIT
for backend in replicated sharded; do
    echo "pool throughput smoke: CFA_STORE_BACKEND=${backend}"
    CFA_STORE_BACKEND="${backend}" cargo test -q --test pool
    (cd "${throughput_scratch}" && \
        CFA_STORE_BACKEND="${backend}" CFA_THROUGHPUT_REPEATS=1 \
        cargo run --manifest-path "${OLDPWD}/Cargo.toml" -p cfa-bench \
            --release --quiet --bin throughput_bench)
done
# Trace-correctness suite per store backend, mirroring CI's
# `telemetry` matrix legs (the plain `cargo test` run above covers
# CFA_STORE_BACKEND=both).
for backend in replicated sharded; do
    echo "telemetry suite: CFA_STORE_BACKEND=${backend}"
    CFA_STORE_BACKEND="${backend}" cargo test -q --test telemetry
done
# Trace smoke, mirroring CI's telemetry smoke step: `cfa trace` on a
# suite program must emit Chrome trace JSON that parses with at least
# one event in every worker lane.
echo "trace smoke: cfa trace on examples/sat.scm"
cargo run -p cfa-cli --release --quiet -- trace --threads 2 \
    --out "${throughput_scratch}/profile.json" examples/sat.scm
python3 - "${throughput_scratch}/profile.json" <<'EOF'
import collections, json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
lanes = collections.Counter(e["tid"] for e in events if e.get("ph") != "M")
assert len(lanes) == 2, lanes
assert all(n >= 1 for n in lanes.values()), lanes
print(f"trace smoke ok: {dict(lanes)}")
EOF
# Corpus-scale differential sweep per store backend, mirroring CI's
# `corpus` matrix legs: the golden snapshot + canon property suites,
# then corpus_diff pushes the bounded corpus (suite + golden concurrent
# programs + 16 seeded generated programs, seed 0) through all seven
# engine configurations via the AnalysisPool and diffs the canonical
# normal forms. Widen the generated band for a nightly-scale run with
# e.g. CFA_CORPUS_SIZE=500 ./scripts/check.sh
for backend in replicated sharded; do
    echo "corpus differential sweep: CFA_STORE_BACKEND=${backend}"
    CFA_STORE_BACKEND="${backend}" cargo test -q --test snapshots --test canon_prop
    CFA_STORE_BACKEND="${backend}" CFA_CORPUS_SIZE="${CFA_CORPUS_SIZE:-16}" \
        CFA_CORPUS_SEED="${CFA_CORPUS_SEED:-0}" \
        cargo run -p cfa-bench --release --quiet --bin corpus_diff
done
cargo fmt --all --check
# Lint every first-party crate; the vendored stand-ins (rand, proptest,
# criterion) are build inputs, not code we hold to clippy.
cargo clippy --workspace --exclude rand --exclude proptest --exclude criterion \
    --all-targets -- -D warnings
# Rustdoc must build warning-free: `missing_docs` is `warn` in the
# first-party crates, so an undocumented public item or broken
# intra-doc link fails here (doc-examples run as tests above).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude rand --exclude proptest --exclude criterion

echo "tier-1 check passed"

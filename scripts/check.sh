#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, rustfmt, clippy.
# Run from anywhere; works on a fresh checkout with no network access
# (external dev-dependencies are vendored under crates/vendor/).
# Mirrors .github/workflows/ci.yml so the local gate matches CI.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --all --check
# Lint every first-party crate; the vendored stand-ins (rand, proptest,
# criterion) are build inputs, not code we hold to clippy.
cargo clippy --workspace --exclude rand --exclude proptest --exclude criterion \
    --all-targets -- -D warnings

echo "tier-1 check passed"

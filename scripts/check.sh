#!/usr/bin/env bash
# Tier-1 verification: release build plus the full test suite.
# Run from anywhere; works on a fresh checkout with no network access
# (external dev-dependencies are vendored under crates/vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

echo "tier-1 check passed"

//! Workspace root: re-exports the [`cfa`] facade so the top-level
//! integration tests and examples have a single import surface.
//!
//! The real code lives in `crates/` — see `crates/cfa` for the facade
//! and ROADMAP.md for the project's direction.

pub use cfa;

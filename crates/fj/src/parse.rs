//! Parser and A-normalizer for Featherweight Java.
//!
//! The surface syntax is a Java subset. Nested expressions are allowed —
//! the parser performs the A-normalization the paper describes in §4
//! (`return f.foo(b.bar());` becomes `B b1 = b.bar(); F f1 = f.foo(b1);
//! return f1;`), introducing fresh temporaries so every statement matches
//! the A-normal grammar of [`crate::ast`].
//!
//! # Examples
//!
//! ```
//! use cfa_fj::parse::parse_fj;
//!
//! let program = parse_fj(
//!     "class Main extends Object {
//!        Main() { super(); }
//!        Object main() {
//!          Object o;
//!          o = new Object();
//!          return o;
//!        }
//!      }",
//! )
//! .unwrap();
//! assert_eq!(program.class_count(), 2); // Object is implicit
//! ```

use crate::ast::{ClassDef, ClassId, FjExpr, FjProgram, FjStmt, FjStmtKind, Method, MethodId};
use cfa_syntax::cps::Label;
use cfa_syntax::intern::{Interner, Symbol};
use std::fmt;

/// An error from the Featherweight Java parser.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FjParseError {
    /// Byte offset in the source, when known.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FjParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FJ parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for FjParseError {}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    KwClass,
    KwExtends,
    KwSuper,
    KwThis,
    KwNew,
    KwReturn,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Comma,
    Dot,
    Eq,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    at: usize,
}

impl<'a> Lexer<'a> {
    fn tokens(src: &'a str) -> Result<Vec<(Tok, usize)>, FjParseError> {
        let mut lx = Lexer {
            src: src.as_bytes(),
            at: 0,
        };
        let mut out = Vec::new();
        loop {
            lx.skip_trivia();
            let at = lx.at;
            let Some(c) = lx.peek() else {
                out.push((Tok::Eof, at));
                return Ok(out);
            };
            let tok = match c {
                b'{' => {
                    lx.at += 1;
                    Tok::LBrace
                }
                b'}' => {
                    lx.at += 1;
                    Tok::RBrace
                }
                b'(' => {
                    lx.at += 1;
                    Tok::LParen
                }
                b')' => {
                    lx.at += 1;
                    Tok::RParen
                }
                b';' => {
                    lx.at += 1;
                    Tok::Semi
                }
                b',' => {
                    lx.at += 1;
                    Tok::Comma
                }
                b'.' => {
                    lx.at += 1;
                    Tok::Dot
                }
                b'=' => {
                    lx.at += 1;
                    Tok::Eq
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let start = lx.at;
                    while lx
                        .peek()
                        .map(|c| c.is_ascii_alphanumeric() || c == b'_')
                        .unwrap_or(false)
                    {
                        lx.at += 1;
                    }
                    let word = std::str::from_utf8(&lx.src[start..lx.at]).expect("ascii");
                    match word {
                        "class" => Tok::KwClass,
                        "extends" => Tok::KwExtends,
                        "super" => Tok::KwSuper,
                        "this" => Tok::KwThis,
                        "new" => Tok::KwNew,
                        "return" => Tok::KwReturn,
                        _ => Tok::Ident(word.to_owned()),
                    }
                }
                other => {
                    return Err(FjParseError {
                        offset: at,
                        message: format!("unexpected character '{}'", other as char),
                    })
                }
            };
            out.push((tok, at));
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.at += 1,
                Some(b'/') if self.src.get(self.at + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        self.at += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Expression trees (pre-normalization)
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum ExprTree {
    Var(String),
    This,
    FieldRead(Box<ExprTree>, String),
    Invoke(Box<ExprTree>, String, Vec<ExprTree>),
    New(String, Vec<ExprTree>),
    Cast(String, Box<ExprTree>),
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct RawCtor {
    params: Vec<(String, String)>,
    super_args: Vec<String>,
    assignments: Vec<(String, String)>, // (field, param)
}

struct RawMethod {
    ret: String,
    name: String,
    params: Vec<(String, String)>,
    body: Vec<RawStmt>,
}

enum RawStmt {
    Decl {
        ty: String,
        name: String,
        init: Option<ExprTree>,
    },
    Assign {
        lhs: String,
        rhs: ExprTree,
    },
    Return(ExprTree),
}

struct RawClass {
    name: String,
    superclass: String,
    fields: Vec<(String, String)>,
    ctor: Option<RawCtor>,
    methods: Vec<RawMethod>,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].0
    }

    fn offset(&self) -> usize {
        self.toks[self.at].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].0.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> FjParseError {
        FjParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), FjParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, FjParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Vec<RawClass>, FjParseError> {
        let mut classes = Vec::new();
        while *self.peek() != Tok::Eof {
            classes.push(self.class()?);
        }
        Ok(classes)
    }

    fn class(&mut self) -> Result<RawClass, FjParseError> {
        self.expect(&Tok::KwClass, "'class'")?;
        let name = self.ident("class name")?;
        self.expect(&Tok::KwExtends, "'extends'")?;
        let superclass = self.ident("superclass name")?;
        self.expect(&Tok::LBrace, "'{'")?;

        let mut fields = Vec::new();
        let mut ctor = None;
        let mut methods = Vec::new();
        while *self.peek() != Tok::RBrace {
            // Lookahead: `Type name ;` = field, `Name (` = ctor,
            // `Type name (` = method.
            let first = self.ident("type or constructor name")?;
            match self.peek().clone() {
                Tok::LParen if first == name => {
                    ctor = Some(self.ctor_rest()?);
                }
                Tok::Ident(second) => {
                    self.bump();
                    match self.peek() {
                        Tok::Semi => {
                            self.bump();
                            fields.push((first, second));
                        }
                        Tok::LParen => {
                            methods.push(self.method_rest(first, second)?);
                        }
                        _ => return Err(self.err("expected ';' or '(' after member name")),
                    }
                }
                _ => return Err(self.err("expected class member")),
            }
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(RawClass {
            name,
            superclass,
            fields,
            ctor,
            methods,
        })
    }

    fn params(&mut self) -> Result<Vec<(String, String)>, FjParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let ty = self.ident("parameter type")?;
                let name = self.ident("parameter name")?;
                params.push((ty, name));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(params)
    }

    fn ctor_rest(&mut self) -> Result<RawCtor, FjParseError> {
        // The constructor name is consumed; the current token is '('.
        let params = self.params()?;
        self.expect(&Tok::LBrace, "'{'")?;
        self.expect(&Tok::KwSuper, "'super'")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut super_args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                super_args.push(self.ident("super argument")?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        self.expect(&Tok::Semi, "';'")?;
        let mut assignments = Vec::new();
        while *self.peek() == Tok::KwThis {
            self.bump();
            self.expect(&Tok::Dot, "'.'")?;
            let field = self.ident("field name")?;
            self.expect(&Tok::Eq, "'='")?;
            let param = self.ident("parameter name")?;
            self.expect(&Tok::Semi, "';'")?;
            assignments.push((field, param));
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(RawCtor {
            params,
            super_args,
            assignments,
        })
    }

    fn method_rest(&mut self, ret: String, name: String) -> Result<RawMethod, FjParseError> {
        let params = self.params()?;
        self.expect(&Tok::LBrace, "'{'")?;
        let mut body = Vec::new();
        while *self.peek() != Tok::RBrace {
            body.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(RawMethod {
            ret,
            name,
            params,
            body,
        })
    }

    fn stmt(&mut self) -> Result<RawStmt, FjParseError> {
        match self.peek().clone() {
            Tok::KwReturn => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(RawStmt::Return(e))
            }
            Tok::Ident(first) => {
                self.bump();
                match self.peek().clone() {
                    // `Type name ;` or `Type name = expr ;`
                    Tok::Ident(second) => {
                        self.bump();
                        let init = if *self.peek() == Tok::Eq {
                            self.bump();
                            Some(self.expr()?)
                        } else {
                            None
                        };
                        self.expect(&Tok::Semi, "';'")?;
                        Ok(RawStmt::Decl {
                            ty: first,
                            name: second,
                            init,
                        })
                    }
                    // `name = expr ;`
                    Tok::Eq => {
                        self.bump();
                        let rhs = self.expr()?;
                        self.expect(&Tok::Semi, "';'")?;
                        Ok(RawStmt::Assign { lhs: first, rhs })
                    }
                    _ => Err(self.err("expected declaration or assignment")),
                }
            }
            _ => Err(self.err("expected a statement")),
        }
    }

    fn expr(&mut self) -> Result<ExprTree, FjParseError> {
        let mut base = match self.peek().clone() {
            Tok::KwThis => {
                self.bump();
                ExprTree::This
            }
            Tok::KwNew => {
                self.bump();
                let class = self.ident("class name")?;
                let args = self.arg_exprs()?;
                ExprTree::New(class, args)
            }
            Tok::LParen => {
                // FJ has no parenthesized expressions: '(' starts a cast.
                self.bump();
                let class = self.ident("cast target class")?;
                self.expect(&Tok::RParen, "')'")?;
                let inner = self.expr()?;
                ExprTree::Cast(class, Box::new(inner))
            }
            Tok::Ident(name) => {
                self.bump();
                ExprTree::Var(name)
            }
            other => return Err(self.err(format!("expected an expression, found {other:?}"))),
        };
        // Postfix chains: .field or .method(args)
        while *self.peek() == Tok::Dot {
            self.bump();
            let name = self.ident("member name")?;
            if *self.peek() == Tok::LParen {
                let args = self.arg_exprs()?;
                base = ExprTree::Invoke(Box::new(base), name, args);
            } else {
                base = ExprTree::FieldRead(Box::new(base), name);
            }
        }
        Ok(base)
    }

    fn arg_exprs(&mut self) -> Result<Vec<ExprTree>, FjParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.expr()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(args)
    }
}

// ---------------------------------------------------------------------
// A-normalization + program assembly
// ---------------------------------------------------------------------

struct Normalizer {
    interner: Interner,
    next_label: u32,
    next_temp: u32,
}

impl Normalizer {
    fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    fn temp(&mut self) -> (String, Symbol) {
        let name = format!("_t{}", self.next_temp);
        self.next_temp += 1;
        let sym = self.interner.intern(&name);
        (name, sym)
    }

    /// Lowers an expression tree to an atomic variable, emitting
    /// intermediate assignments (and their local declarations).
    fn atomize(
        &mut self,
        e: &ExprTree,
        this: Symbol,
        stmts: &mut Vec<FjStmt>,
        temps: &mut Vec<(Symbol, Symbol)>,
        object_sym: Symbol,
    ) -> Symbol {
        match e {
            ExprTree::This => this,
            ExprTree::Var(name) => self.interner.intern(name),
            compound => {
                let rhs = self.lower(compound, this, stmts, temps, object_sym);
                let (_, tmp) = self.temp();
                temps.push((object_sym, tmp));
                let label = self.label();
                stmts.push(FjStmt {
                    kind: FjStmtKind::Assign { lhs: tmp, rhs },
                    label,
                });
                tmp
            }
        }
    }

    /// Lowers an expression tree to an A-normal [`FjExpr`], emitting any
    /// needed intermediate statements first.
    fn lower(
        &mut self,
        e: &ExprTree,
        this: Symbol,
        stmts: &mut Vec<FjStmt>,
        temps: &mut Vec<(Symbol, Symbol)>,
        object_sym: Symbol,
    ) -> FjExpr {
        match e {
            ExprTree::This => FjExpr::Var(this),
            ExprTree::Var(name) => FjExpr::Var(self.interner.intern(name)),
            ExprTree::FieldRead(obj, field) => {
                let object = self.atomize(obj, this, stmts, temps, object_sym);
                FjExpr::FieldRead {
                    object,
                    field: self.interner.intern(field),
                }
            }
            ExprTree::Invoke(recv, method, args) => {
                let receiver = self.atomize(recv, this, stmts, temps, object_sym);
                let args = args
                    .iter()
                    .map(|a| self.atomize(a, this, stmts, temps, object_sym))
                    .collect();
                FjExpr::Invoke {
                    receiver,
                    method: self.interner.intern(method),
                    args,
                }
            }
            ExprTree::New(class, args) => {
                let args = args
                    .iter()
                    .map(|a| self.atomize(a, this, stmts, temps, object_sym))
                    .collect();
                FjExpr::New {
                    class: self.interner.intern(class),
                    args,
                }
            }
            ExprTree::Cast(class, inner) => {
                let var = self.atomize(inner, this, stmts, temps, object_sym);
                FjExpr::Cast {
                    class: self.interner.intern(class),
                    var,
                }
            }
        }
    }
}

/// Parses (and A-normalizes) a Featherweight Java program.
///
/// The program must define a class `Main` with a nullary method `main`;
/// an `Object` base class is provided implicitly. Constructors must
/// follow the FJ shape: pass the inherited fields to `super` and assign
/// each own field from a parameter.
///
/// # Errors
///
/// Returns [`FjParseError`] on lexical/syntactic errors or FJ
/// well-formedness violations (missing `Main.main`, unknown superclass,
/// constructor/field mismatch).
pub fn parse_fj(src: &str) -> Result<FjProgram, FjParseError> {
    let toks = Lexer::tokens(src)?;
    let mut parser = Parser { toks, at: 0 };
    let raw_classes = parser.program()?;

    let mut norm = Normalizer {
        interner: Interner::new(),
        next_label: 0,
        next_temp: 0,
    };
    let object_sym = norm.interner.intern("Object");
    let this_sym = norm.interner.intern("this");

    // Implicit Object base class.
    let mut classes = vec![ClassDef {
        name: object_sym,
        superclass: object_sym,
        fields: Vec::new(),
        methods: Vec::new(),
    }];
    let mut methods: Vec<Method> = Vec::new();

    // First pass: intern class shells so method bodies can reference any
    // class regardless of declaration order.
    for raw in &raw_classes {
        let name = norm.interner.intern(&raw.name);
        if classes.iter().any(|c| c.name == name) {
            return Err(FjParseError {
                offset: 0,
                message: format!("duplicate class '{}'", raw.name),
            });
        }
        let superclass = norm.interner.intern(&raw.superclass);
        let fields = raw
            .fields
            .iter()
            .map(|(ty, f)| (norm.interner.intern(ty), norm.interner.intern(f)))
            .collect();
        classes.push(ClassDef {
            name,
            superclass,
            fields,
            methods: Vec::new(),
        });
    }

    // Validate superclasses exist.
    for def in &classes {
        if !classes.iter().any(|c| c.name == def.superclass) {
            return Err(FjParseError {
                offset: 0,
                message: "unknown superclass".to_owned(),
            });
        }
    }

    // Second pass: methods (A-normalized) and constructor validation.
    for (raw_idx, raw) in raw_classes.iter().enumerate() {
        let class_id = ClassId(raw_idx as u32 + 1); // offset past Object
                                                    // Constructor shape check: super args + own assignments cover all
                                                    // fields positionally.
        if let Some(ctor) = &raw.ctor {
            let own_assigned: Vec<&String> = ctor.assignments.iter().map(|(f, _)| f).collect();
            for (_, f) in &raw.fields {
                if !own_assigned.contains(&f) {
                    return Err(FjParseError {
                        offset: 0,
                        message: format!(
                            "constructor of '{}' does not assign field '{}'",
                            raw.name, f
                        ),
                    });
                }
            }
            // FJ constructor shape: one parameter per inherited field
            // (forwarded to super) plus one per own field.
            if ctor.params.len() != ctor.super_args.len() + raw.fields.len() {
                return Err(FjParseError {
                    offset: 0,
                    message: format!(
                        "constructor of '{}' must take one parameter per field \
                         (got {}, expected {})",
                        raw.name,
                        ctor.params.len(),
                        ctor.super_args.len() + raw.fields.len()
                    ),
                });
            }
        } else if !raw.fields.is_empty() {
            return Err(FjParseError {
                offset: 0,
                message: format!("class '{}' has fields but no constructor", raw.name),
            });
        }

        for m in &raw.methods {
            let name = norm.interner.intern(&m.name);
            let params: Vec<(Symbol, Symbol)> = m
                .params
                .iter()
                .map(|(ty, v)| (norm.interner.intern(ty), norm.interner.intern(v)))
                .collect();
            let mut stmts: Vec<FjStmt> = Vec::new();
            let mut locals: Vec<(Symbol, Symbol)> = Vec::new();
            let mut saw_return = false;
            for s in &m.body {
                match s {
                    RawStmt::Decl { ty, name, init } => {
                        let ty = norm.interner.intern(ty);
                        let v = norm.interner.intern(name);
                        locals.push((ty, v));
                        if let Some(init) = init {
                            let rhs =
                                norm.lower(init, this_sym, &mut stmts, &mut locals, object_sym);
                            let label = norm.label();
                            stmts.push(FjStmt {
                                kind: FjStmtKind::Assign { lhs: v, rhs },
                                label,
                            });
                        }
                    }
                    RawStmt::Assign { lhs, rhs } => {
                        let lhs = norm.interner.intern(lhs);
                        let rhs = norm.lower(rhs, this_sym, &mut stmts, &mut locals, object_sym);
                        let label = norm.label();
                        stmts.push(FjStmt {
                            kind: FjStmtKind::Assign { lhs, rhs },
                            label,
                        });
                    }
                    RawStmt::Return(e) => {
                        let var = norm.atomize(e, this_sym, &mut stmts, &mut locals, object_sym);
                        let label = norm.label();
                        stmts.push(FjStmt {
                            kind: FjStmtKind::Return { var },
                            label,
                        });
                        saw_return = true;
                    }
                }
            }
            if !saw_return {
                return Err(FjParseError {
                    offset: 0,
                    message: format!("method '{}.{}' has no return", raw.name, m.name),
                });
            }
            let _ = &m.ret;
            let method_id = MethodId(methods.len() as u32);
            methods.push(Method {
                owner: class_id,
                name,
                params,
                locals,
                body: stmts,
            });
            classes[class_id.0 as usize].methods.push(method_id);
        }
    }

    // Entry: Main.main().
    let main_class_sym = norm.interner.lookup("Main").ok_or_else(|| FjParseError {
        offset: 0,
        message: "program must define a class 'Main'".into(),
    })?;
    let main_method_sym = norm.interner.lookup("main").ok_or_else(|| FjParseError {
        offset: 0,
        message: "class 'Main' must define a method 'main'".into(),
    })?;
    let main_class = classes
        .iter()
        .position(|c| c.name == main_class_sym)
        .ok_or_else(|| FjParseError {
            offset: 0,
            message: "class 'Main' not found".into(),
        })?;
    let entry = classes[main_class]
        .methods
        .iter()
        .copied()
        .find(|&m| {
            methods[m.0 as usize].name == main_method_sym && methods[m.0 as usize].params.is_empty()
        })
        .ok_or_else(|| FjParseError {
            offset: 0,
            message: "class 'Main' must define a nullary method 'main'".into(),
        })?;

    let next_label = norm.next_label;
    Ok(FjProgram::new(
        norm.interner,
        classes,
        methods,
        entry,
        next_label,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::FjStmtKind;

    const HELLO: &str = "
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Object o;
            o = new Object();
            return o;
          }
        }";

    #[test]
    fn parses_minimal_program() {
        let p = parse_fj(HELLO).unwrap();
        assert_eq!(p.class_count(), 2);
        assert_eq!(p.method_count(), 1);
        assert_eq!(p.stmt_count(), 2);
    }

    #[test]
    fn anf_flattens_nested_calls() {
        let p = parse_fj(
            "class Box extends Object {
               Object item;
               Box(Object item0) { super(); this.item = item0; }
               Object get() { return this.item; }
               Box wrap() { return new Box(this.get()); }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() {
                 Box b;
                 b = new Box(new Object());
                 return b.wrap().get();
               }
             }",
        )
        .unwrap();
        // `b.wrap().get()` needs a temp; `new Box(new Object())` needs one.
        let main = p.method(p.entry());
        assert!(main.locals.len() >= 3, "locals: {}", main.locals.len());
        assert!(main.body.len() >= 4);
        // All statements are A-normal: arguments and receivers are vars.
        for m in p.method_ids() {
            for s in &p.method(m).body {
                if let FjStmtKind::Assign { rhs, .. } = &s.kind {
                    // Nothing to check structurally — the types enforce
                    // atomicity — but every temp must be declared.
                    let _ = rhs;
                }
            }
        }
    }

    #[test]
    fn field_lookup_includes_inherited() {
        let p = parse_fj(
            "class A extends Object {
               Object x;
               A(Object x0) { super(); this.x = x0; }
             }
             class B extends A {
               Object y;
               B(Object x0, Object y0) { super(x0); this.y = y0; }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
        )
        .unwrap();
        let b = p.class_by_name(p.interner().lookup("B").unwrap()).unwrap();
        let fields = p.all_fields(b);
        assert_eq!(fields.len(), 2);
        assert_eq!(p.name(fields[0].1), "x");
        assert_eq!(p.name(fields[1].1), "y");
    }

    #[test]
    fn method_lookup_walks_hierarchy() {
        let p = parse_fj(
            "class A extends Object {
               A() { super(); }
               Object id(Object x) { return x; }
             }
             class B extends A {
               B() { super(); }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
        )
        .unwrap();
        let b = p.class_by_name(p.interner().lookup("B").unwrap()).unwrap();
        let id = p.interner().lookup("id").unwrap();
        let m = p.lookup_method(b, id).expect("inherited method");
        assert_eq!(p.name(p.method(m).name), "id");
        assert!(p.is_subclass(
            b,
            p.class_by_name(p.interner().lookup("A").unwrap()).unwrap()
        ));
    }

    #[test]
    fn rejects_missing_main() {
        let err = parse_fj("class A extends Object { A() { super(); } }").unwrap_err();
        assert!(err.message.contains("Main"));
    }

    #[test]
    fn rejects_missing_return() {
        let err = parse_fj(
            "class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); }
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("return"), "{err}");
    }

    #[test]
    fn rejects_unassigned_field() {
        let err = parse_fj(
            "class A extends Object {
               Object x;
               A(Object x0) { super(); }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("assign"), "{err}");
    }

    #[test]
    fn rejects_duplicate_class() {
        let err = parse_fj(
            "class A extends Object { A() { super(); } }
             class A extends Object { A() { super(); } }",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn comments_are_ignored() {
        let p = parse_fj(&format!("// header\n{HELLO}")).unwrap();
        assert_eq!(p.class_count(), 2);
    }

    #[test]
    fn casts_parse() {
        let p = parse_fj(
            "class Main extends Object {
               Main() { super(); }
               Object main() {
                 Object o;
                 o = new Object();
                 Object p;
                 p = (Main) o;
                 return p;
               }
             }",
        )
        .unwrap();
        assert!(p.method(p.entry()).body.iter().any(|s| matches!(
            &s.kind,
            FjStmtKind::Assign {
                rhs: FjExpr::Cast { .. },
                ..
            }
        )));
    }
}

//! Concrete semantics for A-Normal Featherweight Java (paper Fig 4–6).
//!
//! States are `(stmt, β, σ, p_κ, t)`. Continuations are *semantic* values
//! allocated in the store (in CPS they exist syntactically; here they must
//! be explicit — §4.1). Objects are a class name plus a record mapping
//! field names to addresses — deliberately the same shape as CPS closures,
//! which is what makes the k-CFA comparison meaningful.
//!
//! # Examples
//!
//! ```
//! use cfa_fj::parse::parse_fj;
//! use cfa_fj::concrete::{run_fj, FjLimits};
//!
//! let p = parse_fj(
//!     "class Main extends Object {
//!        Main() { super(); }
//!        Object main() { Object o; o = new Object(); return o; }
//!      }",
//! ).unwrap();
//! let run = run_fj(&p, FjLimits::default());
//! assert!(run.halted().is_some());
//! ```

use crate::ast::{FjExpr, FjProgram, FjStmtKind, MethodId, StmtId};
use cfa_concrete::base::Ctx;
use cfa_concrete::ctx::CtxTable;
use cfa_syntax::intern::Symbol;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// What a Featherweight Java address names.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FjSlot {
    /// A variable or field binding.
    Var(Symbol),
    /// The continuation slot for an invocation of a method.
    Kont(MethodId),
}

/// A concrete address: slot × allocation context.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FjAddr {
    /// What is stored.
    pub slot: FjSlot,
    /// Allocation context (time).
    pub ctx: Ctx,
}

/// A binding environment: variable → address.
pub type FjBEnv = Rc<HashMap<Symbol, FjAddr>>;

/// A concrete runtime value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FjValue {
    /// An object: class + record of field addresses.
    Obj {
        /// The class.
        class: crate::ast::ClassId,
        /// Field name → address (the paper's `BEnv` record component).
        fields: FjBEnv,
    },
    /// A continuation `(v, s, β, p_κ)`.
    Kont {
        /// Variable receiving the return value.
        var: Symbol,
        /// Statement to resume at.
        next: StmtId,
        /// Caller's binding environment.
        benv: FjBEnv,
        /// Caller's continuation pointer.
        kont: FjAddr,
    },
    /// The top-level continuation: returning to it halts the program.
    HaltKont,
}

/// A runtime error of the Featherweight Java machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FjError {
    /// A variable had no binding in the environment.
    UnboundVariable(String),
    /// A field was missing from an object.
    NoSuchField(String),
    /// Method lookup failed.
    NoSuchMethod(String),
    /// A non-object was dereferenced.
    NotAnObject(String),
    /// A method was invoked with the wrong number of arguments.
    ArityMismatch {
        /// Expected parameter count.
        expected: usize,
        /// Actual argument count.
        actual: usize,
    },
    /// An address was read before being written (e.g. an uninitialized
    /// local).
    UninitializedRead,
    /// Control fell off the end of a method body.
    FellOffMethod,
}

impl fmt::Display for FjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FjError::UnboundVariable(v) => write!(f, "unbound variable '{v}'"),
            FjError::NoSuchField(x) => write!(f, "no such field '{x}'"),
            FjError::NoSuchMethod(m) => write!(f, "no such method '{m}'"),
            FjError::NotAnObject(d) => write!(f, "not an object: {d}"),
            FjError::ArityMismatch { expected, actual } => {
                write!(f, "arity mismatch: expected {expected}, got {actual}")
            }
            FjError::UninitializedRead => write!(f, "read of an uninitialized address"),
            FjError::FellOffMethod => write!(f, "control fell off the end of a method"),
        }
    }
}

impl std::error::Error for FjError {}

/// Limits for a concrete run.
#[derive(Copy, Clone, Debug)]
pub struct FjLimits {
    /// Maximum machine transitions.
    pub max_steps: usize,
}

impl Default for FjLimits {
    fn default() -> Self {
        FjLimits {
            max_steps: 1_000_000,
        }
    }
}

/// One visited state (when tracing).
#[derive(Clone, Debug)]
pub struct FjVisit {
    /// The statement.
    pub stmt: StmtId,
    /// The binding environment.
    pub benv: FjBEnv,
    /// The continuation pointer.
    pub kont: FjAddr,
    /// The time.
    pub time: Ctx,
}

/// How a run ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FjOutcome {
    /// `main` returned; the value is rendered as `ClassName@ctx`.
    Halted(String),
    /// Step budget exhausted.
    OutOfFuel,
    /// A runtime error.
    Error(FjError),
}

/// The result of running the Featherweight Java machine.
#[derive(Debug)]
pub struct FjRun {
    /// How the run ended.
    pub outcome: FjOutcome,
    /// Transitions taken.
    pub steps: usize,
    /// The final store.
    pub store: HashMap<FjAddr, FjValue>,
    /// Visited states (empty unless traced).
    pub trace: Vec<FjVisit>,
    /// Call-string metadata per time.
    pub times: CtxTable,
}

impl FjRun {
    /// The rendered halt value, if the run halted.
    pub fn halted(&self) -> Option<&str> {
        match &self.outcome {
            FjOutcome::Halted(v) => Some(v),
            _ => None,
        }
    }
}

/// Runs `program` from `Main.main()`.
pub fn run_fj(program: &FjProgram, limits: FjLimits) -> FjRun {
    run_fj_traced(program, limits, false)
}

/// Runs `program`, optionally recording every visited state.
pub fn run_fj_traced(program: &FjProgram, limits: FjLimits, trace: bool) -> FjRun {
    let mut m = Machine {
        program,
        store: HashMap::new(),
        times: CtxTable::new(),
        trace: Vec::new(),
        record_trace: trace,
    };
    let (outcome, steps) = m.run(limits);
    FjRun {
        outcome,
        steps,
        store: m.store,
        trace: m.trace,
        times: m.times,
    }
}

struct Machine<'p> {
    program: &'p FjProgram,
    store: HashMap<FjAddr, FjValue>,
    times: CtxTable,
    trace: Vec<FjVisit>,
    record_trace: bool,
}

struct State {
    stmt: StmtId,
    benv: FjBEnv,
    kont: FjAddr,
    time: Ctx,
}

enum Step {
    Continue(State),
    Halt(FjValue),
}

impl<'p> Machine<'p> {
    fn run(&mut self, limits: FjLimits) -> (FjOutcome, usize) {
        // Initial state: allocate the Main receiver and a halt continuation.
        let t0 = self.times.initial();
        let entry = self.program.entry();
        let main = self.program.method(entry);
        let main_class = main.owner;
        let this_sym = self
            .program
            .interner()
            .lookup("this")
            .expect("'this' interned by the parser");

        let this_addr = FjAddr {
            slot: FjSlot::Var(this_sym),
            ctx: t0,
        };
        self.store.insert(
            this_addr,
            FjValue::Obj {
                class: main_class,
                fields: Rc::new(HashMap::new()),
            },
        );
        let halt_addr = FjAddr {
            slot: FjSlot::Kont(entry),
            ctx: t0,
        };
        self.store.insert(halt_addr, FjValue::HaltKont);

        let mut benv = HashMap::new();
        benv.insert(this_sym, this_addr);
        for &(_, local) in &main.locals {
            benv.insert(
                local,
                FjAddr {
                    slot: FjSlot::Var(local),
                    ctx: t0,
                },
            );
        }
        let mut state = State {
            stmt: self.program.entry_stmt(),
            benv: Rc::new(benv),
            kont: halt_addr,
            time: t0,
        };

        let mut steps = 0;
        loop {
            if steps >= limits.max_steps {
                return (FjOutcome::OutOfFuel, steps);
            }
            steps += 1;
            if self.record_trace {
                self.trace.push(FjVisit {
                    stmt: state.stmt,
                    benv: state.benv.clone(),
                    kont: state.kont,
                    time: state.time,
                });
            }
            match self.step(&state) {
                Ok(Step::Continue(next)) => state = next,
                Ok(Step::Halt(v)) => {
                    let rendered = match v {
                        FjValue::Obj { class, .. } => {
                            self.program.name(self.program.class(class).name).to_owned()
                        }
                        other => format!("{other:?}"),
                    };
                    return (FjOutcome::Halted(rendered), steps);
                }
                Err(e) => return (FjOutcome::Error(e), steps),
            }
        }
    }

    fn lookup(&self, benv: &FjBEnv, v: Symbol) -> Result<FjAddr, FjError> {
        benv.get(&v)
            .copied()
            .ok_or_else(|| FjError::UnboundVariable(self.program.name(v).to_owned()))
    }

    fn read(&self, addr: FjAddr) -> Result<FjValue, FjError> {
        self.store
            .get(&addr)
            .cloned()
            .ok_or(FjError::UninitializedRead)
    }

    fn read_var(&self, benv: &FjBEnv, v: Symbol) -> Result<FjValue, FjError> {
        self.read(self.lookup(benv, v)?)
    }

    fn step(&mut self, state: &State) -> Result<Step, FjError> {
        let stmt = self
            .program
            .stmt(state.stmt)
            .ok_or(FjError::FellOffMethod)?;
        let label = stmt.label;
        match &stmt.kind {
            FjStmtKind::Assign { lhs, rhs } => {
                let t_new = self.times.tick(label, state.time);
                match rhs {
                    // Variable reference: σ[β(v) ↦ σ(β(v′))]
                    FjExpr::Var(v2) => {
                        let d = self.read_var(&state.benv, *v2)?;
                        self.store.insert(self.lookup(&state.benv, *lhs)?, d);
                        Ok(Step::Continue(State {
                            stmt: self.program.succ(state.stmt),
                            benv: state.benv.clone(),
                            kont: state.kont,
                            time: t_new,
                        }))
                    }
                    // Field reference: (C, β′) = σ(β(v′)); σ[β(v) ↦ σ(β′(f))]
                    FjExpr::FieldRead { object, field } => {
                        let obj = self.read_var(&state.benv, *object)?;
                        let FjValue::Obj { fields, .. } = obj else {
                            return Err(FjError::NotAnObject(
                                self.program.name(*object).to_owned(),
                            ));
                        };
                        let faddr = fields.get(field).copied().ok_or_else(|| {
                            FjError::NoSuchField(self.program.name(*field).to_owned())
                        })?;
                        let d = self.read(faddr)?;
                        self.store.insert(self.lookup(&state.benv, *lhs)?, d);
                        Ok(Step::Continue(State {
                            stmt: self.program.succ(state.stmt),
                            benv: state.benv.clone(),
                            kont: state.kont,
                            time: t_new,
                        }))
                    }
                    // Method invocation (Fig 6).
                    FjExpr::Invoke {
                        receiver,
                        method,
                        args,
                    } => {
                        let d0 = self.read_var(&state.benv, *receiver)?;
                        let FjValue::Obj { class, .. } = &d0 else {
                            return Err(FjError::NotAnObject(
                                self.program.name(*receiver).to_owned(),
                            ));
                        };
                        let mid = self.program.lookup_method(*class, *method).ok_or_else(|| {
                            FjError::NoSuchMethod(self.program.name(*method).to_owned())
                        })?;
                        let target = self.program.method(mid);
                        if target.params.len() != args.len() {
                            return Err(FjError::ArityMismatch {
                                expected: target.params.len(),
                                actual: args.len(),
                            });
                        }
                        let arg_vals = args
                            .iter()
                            .map(|&a| self.read_var(&state.benv, a))
                            .collect::<Result<Vec<_>, _>>()?;

                        // κ = (v, succ(ℓ), β, p_κ) at p_κ′ = (M, t′)
                        let kont = FjValue::Kont {
                            var: *lhs,
                            next: self.program.succ(state.stmt),
                            benv: state.benv.clone(),
                            kont: state.kont,
                        };
                        let kont_addr = FjAddr {
                            slot: FjSlot::Kont(mid),
                            ctx: t_new,
                        };
                        self.store.insert(kont_addr, kont);

                        // β′ = [this ↦ β(v0)]; β″ adds params and locals.
                        let this_sym = self.program.interner().lookup("this").expect("this");
                        let mut callee = HashMap::new();
                        callee.insert(this_sym, self.lookup(&state.benv, *receiver)?);
                        for ((_, p), d) in target.params.iter().zip(arg_vals) {
                            let a = FjAddr {
                                slot: FjSlot::Var(*p),
                                ctx: t_new,
                            };
                            callee.insert(*p, a);
                            self.store.insert(a, d);
                        }
                        for &(_, l) in &target.locals {
                            callee.insert(
                                l,
                                FjAddr {
                                    slot: FjSlot::Var(l),
                                    ctx: t_new,
                                },
                            );
                        }
                        Ok(Step::Continue(State {
                            stmt: StmtId {
                                method: mid,
                                index: 0,
                            },
                            benv: Rc::new(callee),
                            kont: kont_addr,
                            time: t_new,
                        }))
                    }
                    // Object allocation (Fig 6).
                    FjExpr::New { class, args } => {
                        let cid = self.program.class_by_name(*class).ok_or_else(|| {
                            FjError::NotAnObject(self.program.name(*class).to_owned())
                        })?;
                        let field_list = self.program.all_fields(cid);
                        if field_list.len() != args.len() {
                            return Err(FjError::ArityMismatch {
                                expected: field_list.len(),
                                actual: args.len(),
                            });
                        }
                        let mut record = HashMap::new();
                        for ((_, f), &arg) in field_list.iter().zip(args) {
                            let d = self.read_var(&state.benv, arg)?;
                            let a = FjAddr {
                                slot: FjSlot::Var(*f),
                                ctx: t_new,
                            };
                            record.insert(*f, a);
                            self.store.insert(a, d);
                        }
                        let obj = FjValue::Obj {
                            class: cid,
                            fields: Rc::new(record),
                        };
                        self.store.insert(self.lookup(&state.benv, *lhs)?, obj);
                        Ok(Step::Continue(State {
                            stmt: self.program.succ(state.stmt),
                            benv: state.benv.clone(),
                            kont: state.kont,
                            time: t_new,
                        }))
                    }
                    // Casting: σ[β(v) ↦ σ(β(v′))] (Fig 6 copies unchecked).
                    FjExpr::Cast { var, .. } => {
                        let d = self.read_var(&state.benv, *var)?;
                        self.store.insert(self.lookup(&state.benv, *lhs)?, d);
                        Ok(Step::Continue(State {
                            stmt: self.program.succ(state.stmt),
                            benv: state.benv.clone(),
                            kont: state.kont,
                            time: t_new,
                        }))
                    }
                }
            }
            // Return (Fig 6).
            FjStmtKind::Return { var } => {
                let d = self.read_var(&state.benv, *var)?;
                match self.read(state.kont)? {
                    FjValue::HaltKont => Ok(Step::Halt(d)),
                    FjValue::Kont {
                        var: v2,
                        next,
                        benv,
                        kont,
                    } => {
                        let t_new = self.times.tick(label, state.time);
                        let dest = self.lookup(&benv, v2)?;
                        self.store.insert(dest, d);
                        Ok(Step::Continue(State {
                            stmt: next,
                            benv,
                            kont,
                            time: t_new,
                        }))
                    }
                    FjValue::Obj { .. } => Err(FjError::NotAnObject("continuation".into())),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fj;

    fn run(src: &str) -> FjRun {
        run_fj(&parse_fj(src).unwrap(), FjLimits::default())
    }

    #[test]
    fn allocates_and_returns() {
        let r = run("class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }");
        assert_eq!(r.halted(), Some("Object"));
    }

    #[test]
    fn field_round_trip() {
        let r = run("class Box extends Object {
               Object item;
               Box(Object item0) { super(); this.item = item0; }
               Object get() { return this.item; }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() {
                 Box b;
                 b = new Box(new Main());
                 return b.get();
               }
             }");
        assert_eq!(r.halted(), Some("Main"));
    }

    #[test]
    fn dynamic_dispatch_selects_override() {
        let r = run("class A extends Object {
               A() { super(); }
               Object who() { Object o; o = new A(); return o; }
             }
             class B extends A {
               B() { super(); }
               Object who() { Object o; o = new B(); return o; }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() {
                 A x;
                 x = new B();
                 return x.who();
               }
             }");
        assert_eq!(r.halted(), Some("B"));
    }

    #[test]
    fn inherited_method_found() {
        let r = run("class A extends Object {
               A() { super(); }
               Object mk() { Object o; o = new A(); return o; }
             }
             class B extends A {
               B() { super(); }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() { B b; b = new B(); return b.mk(); }
             }");
        assert_eq!(r.halted(), Some("A"));
    }

    #[test]
    fn inherited_fields_bind_in_order() {
        let r = run("class A extends Object {
               Object x;
               A(Object x0) { super(); this.x = x0; }
             }
             class B extends A {
               Object y;
               B(Object x0, Object y0) { super(x0); this.y = y0; }
               Object getx() { return this.x; }
               Object gety() { return this.y; }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() {
                 B b;
                 b = new B(new Main(), new Object());
                 return b.getx();
               }
             }");
        assert_eq!(r.halted(), Some("Main"));
    }

    #[test]
    fn nested_calls_via_anf() {
        let r = run("class Wrap extends Object {
               Object v;
               Wrap(Object v0) { super(); this.v = v0; }
               Object unwrap() { return this.v; }
               Wrap rewrap() { return new Wrap(this.unwrap()); }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() {
                 Wrap w;
                 w = new Wrap(new Main());
                 return w.rewrap().unwrap();
               }
             }");
        assert_eq!(r.halted(), Some("Main"));
    }

    #[test]
    fn cast_copies_value() {
        let r = run("class Main extends Object {
               Main() { super(); }
               Object main() {
                 Object o;
                 o = new Main();
                 Object p;
                 p = (Main) o;
                 return p;
               }
             }");
        assert_eq!(r.halted(), Some("Main"));
    }

    #[test]
    fn uninitialized_local_read_errors() {
        let r = run("class Main extends Object {
               Main() { super(); }
               Object main() { Object o; return o; }
             }");
        assert!(matches!(
            r.outcome,
            FjOutcome::Error(FjError::UninitializedRead)
        ));
    }

    #[test]
    fn missing_method_errors() {
        let r = run("class Main extends Object {
               Main() { super(); }
               Object main() {
                 Object o;
                 o = new Object();
                 return o.nothing();
               }
             }");
        assert!(matches!(
            r.outcome,
            FjOutcome::Error(FjError::NoSuchMethod(_))
        ));
    }

    #[test]
    fn infinite_recursion_runs_out_of_fuel() {
        let p = parse_fj(
            "class Main extends Object {
               Main() { super(); }
               Object main() { return this.main(); }
             }",
        )
        .unwrap();
        let r = run_fj(&p, FjLimits { max_steps: 100 });
        assert_eq!(r.outcome, FjOutcome::OutOfFuel);
    }

    #[test]
    fn trace_records_states() {
        let p = parse_fj(
            "class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
        )
        .unwrap();
        let r = run_fj_traced(&p, FjLimits::default(), true);
        assert_eq!(r.trace.len(), 2);
    }
}

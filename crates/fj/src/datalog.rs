//! Featherweight Java points-to analysis expressed in Datalog.
//!
//! The paper's §1 resolves half the paradox by observing that OO k-CFA
//! *must* be polynomial because Bravenboer and Smaragdakis express it in
//! Datalog, "a language that can only express polynomial-time
//! algorithms". This module makes that argument executable: it compiles
//! an [`FjProgram`] into input facts and evaluates the k-call-site-
//! sensitive points-to analysis (the §4.5 *OO variant* of k-CFA — context
//! changes only at invocations, returns restore the caller's context)
//! with the [`cfa_datalog`] engine.
//!
//! The encoding mirrors the abstract machine of [`crate::kcfa`] address
//! for address:
//!
//! * an abstract address is a (variable-or-field, context) pair, so one
//!   relation `vp(addr, actx, class, hctx)` *is* the machine's store
//!   restricted to `Var` slots;
//! * `this` is not an address — the machine aliases it to the receiver's
//!   address — so the encoding rewrites `this` uses to a per-method
//!   pseudo-variable fed by every call edge's receiver set;
//! * statement-level reachability (`reach`) reproduces the machine's
//!   on-the-fly call-graph construction: statements after a call become
//!   reachable only via a reachable `return` in a callee.
//!
//! Because pure Datalog has no term constructors, the bounded context
//! algebra is pre-tabulated as `ctxpush(ctx, s, ctx′)` facts over the
//! universe of call strings of length ≤ k — polynomial for fixed k,
//! exactly the paper's claim.
//!
//! Cross-validation tests assert that call graphs, points-to sets, and
//! halt classes agree *exactly* with [`crate::kcfa::analyze_fj`] under
//! [`crate::kcfa::TickPolicy::OnInvocation`].

use crate::ast::{ClassId, FjExpr, FjProgram, FjStmtKind, MethodId, StmtId};
use cfa_datalog::{Const, ConstPool, Database, DatalogProgram, EvalStats, RelId, Term};
use cfa_syntax::cps::Label;
use cfa_syntax::intern::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Options for the Datalog points-to analysis.
#[derive(Copy, Clone, Debug)]
pub struct FjDatalogOptions {
    /// Call-site sensitivity depth (the `k` of k-CFA). The context
    /// universe is tabulated up front, so this encoding supports small
    /// `k` only.
    pub k: usize,
    /// If true, casts filter by subclassing (matching
    /// [`crate::kcfa::FjAnalysisOptions::cast_filtering`]).
    pub cast_filtering: bool,
}

impl FjDatalogOptions {
    /// Context-insensitive points-to (0-CFA).
    pub fn insensitive() -> Self {
        FjDatalogOptions {
            k: 0,
            cast_filtering: false,
        }
    }

    /// k-call-site-sensitive points-to, unfiltered casts.
    pub fn sensitive(k: usize) -> Self {
        FjDatalogOptions {
            k,
            cast_filtering: false,
        }
    }
}

/// The result of running the Datalog points-to analysis.
#[derive(Clone, Debug)]
pub struct FjDatalogResult {
    /// Resolved targets per invocation statement (the on-the-fly call
    /// graph; includes arity-mismatched targets, like the machine's
    /// `call_targets`).
    pub call_targets: BTreeMap<StmtId, BTreeSet<MethodId>>,
    /// Points-to sets per abstract address: (variable or field, address
    /// context) → classes. `this` pseudo-variables are reported
    /// separately in [`FjDatalogResult::this_points_to`].
    pub points_to: BTreeMap<(Symbol, Vec<Label>), BTreeSet<ClassId>>,
    /// Receiver classes per (method, entry context).
    pub this_points_to: BTreeMap<(MethodId, Vec<Label>), BTreeSet<ClassId>>,
    /// Reachable (statement, context) pairs.
    pub reachable: BTreeSet<(StmtId, Vec<Label>)>,
    /// Classes of values returned from the entry method.
    pub halt_classes: BTreeSet<ClassId>,
    /// Number of input (EDB) facts generated from the program.
    pub edb_facts: usize,
    /// Total facts at the fixpoint.
    pub total_facts: usize,
    /// Engine statistics.
    pub stats: EvalStats,
}

impl FjDatalogResult {
    /// Invocation sites with exactly one resolved target.
    pub fn monomorphic_calls(&self) -> usize {
        self.call_targets.values().filter(|t| t.len() == 1).count()
    }

    /// Points-to set for a (variable, context) address, or empty.
    pub fn classes_of(&self, var: Symbol, ctx: &[Label]) -> BTreeSet<ClassId> {
        self.points_to
            .get(&(var, ctx.to_vec()))
            .cloned()
            .unwrap_or_default()
    }
}

/// All relation ids of the encoding.
struct Rels {
    // IDB
    reach: RelId,
    vp: RelId,
    target: RelId,
    calledge: RelId,
    haltclass: RelId,
    // EDB
    mov: RelId,
    cast: RelId,
    subclass: RelId,
    load: RelId,
    hasfield: RelId,
    alloc: RelId,
    allocarg: RelId,
    invoke: RelId,
    actual: RelId,
    formal: RelId,
    lookup: RelId,
    marity: RelId,
    firststmt: RelId,
    nextlocal: RelId,
    callsucc: RelId,
    retstmt: RelId,
    ctxpush: RelId,
}

fn declare(program: &mut DatalogProgram) -> Rels {
    Rels {
        reach: program.relation("reach", 2),
        vp: program.relation("vp", 4),
        target: program.relation("target", 2),
        calledge: program.relation("calledge", 4),
        haltclass: program.relation("haltclass", 1),
        mov: program.relation("move", 3),
        cast: program.relation("cast", 4),
        subclass: program.relation("subclass", 2),
        load: program.relation("load", 4),
        hasfield: program.relation("hasfield", 2),
        alloc: program.relation("alloc", 3),
        allocarg: program.relation("allocarg", 3),
        invoke: program.relation("invoke", 5),
        actual: program.relation("actual", 3),
        formal: program.relation("formal", 3),
        lookup: program.relation("lookup", 3),
        marity: program.relation("marity", 2),
        firststmt: program.relation("firststmt", 2),
        nextlocal: program.relation("nextlocal", 2),
        callsucc: program.relation("callsucc", 2),
        retstmt: program.relation("retstmt", 3),
        ctxpush: program.relation("ctxpush", 3),
    }
}

fn v(name: &str) -> Term {
    Term::var(name)
}

/// Installs the analysis rules (§4.5 OO-variant k-CFA as Datalog).
///
/// `sentinel` is the `formal` index constant that stands for the `this`
/// pseudo-parameter; `entry_mid` and `eps` pin the halt rule to the entry
/// method in the empty context.
fn install_rules(p: &mut DatalogProgram, r: &Rels, sentinel: Const, entry_mid: Const, eps: Const) {
    // Intraprocedural flow ------------------------------------------------
    // vp(to, ctx, c, h) :- move(s, to, from), reach(s, ctx), vp(from, ctx, c, h).
    p.rule(
        r.vp,
        vec![v("to"), v("ctx"), v("c"), v("h")],
        vec![
            (r.mov, vec![v("s"), v("to"), v("from")]),
            (r.reach, vec![v("s"), v("ctx")]),
            (r.vp, vec![v("from"), v("ctx"), v("c"), v("h")]),
        ],
    )
    .expect("move rule");
    // Filtered cast: requires subclass(c, target).
    p.rule(
        r.vp,
        vec![v("to"), v("ctx"), v("c"), v("h")],
        vec![
            (r.cast, vec![v("s"), v("to"), v("from"), v("tc")]),
            (r.reach, vec![v("s"), v("ctx")]),
            (r.vp, vec![v("from"), v("ctx"), v("c"), v("h")]),
            (r.subclass, vec![v("c"), v("tc")]),
        ],
    )
    .expect("cast rule");
    // Field load: vp(to, ctx, c2, h2) :- load(s, to, base, f), reach(s, ctx),
    //   vp(base, ctx, c, h), hasfield(c, f), vp(f, h, c2, h2).
    p.rule(
        r.vp,
        vec![v("to"), v("ctx"), v("c2"), v("h2")],
        vec![
            (r.load, vec![v("s"), v("to"), v("base"), v("f")]),
            (r.reach, vec![v("s"), v("ctx")]),
            (r.vp, vec![v("base"), v("ctx"), v("c"), v("h")]),
            (r.hasfield, vec![v("c"), v("f")]),
            (r.vp, vec![v("f"), v("h"), v("c2"), v("h2")]),
        ],
    )
    .expect("load rule");
    // Allocation: the new object's heap context is the current context
    // (fields are all closed simultaneously — the paper's key collapse).
    p.rule(
        r.vp,
        vec![v("lhs"), v("ctx"), v("c"), v("ctx")],
        vec![
            (r.alloc, vec![v("s"), v("lhs"), v("c")]),
            (r.reach, vec![v("s"), v("ctx")]),
        ],
    )
    .expect("alloc rule");
    // Constructor field initialization: field f of an object born at ctx
    // receives the constructor argument's values.
    p.rule(
        r.vp,
        vec![v("f"), v("ctx"), v("c2"), v("h2")],
        vec![
            (r.allocarg, vec![v("s"), v("f"), v("a")]),
            (r.reach, vec![v("s"), v("ctx")]),
            (r.vp, vec![v("a"), v("ctx"), v("c2"), v("h2")]),
        ],
    )
    .expect("allocarg rule");
    // Straight-line reachability.
    p.rule(
        r.reach,
        vec![v("s2"), v("ctx")],
        vec![
            (r.nextlocal, vec![v("s"), v("s2")]),
            (r.reach, vec![v("s"), v("ctx")]),
        ],
    )
    .expect("nextlocal rule");

    // Dispatch -------------------------------------------------------------
    // target(s, mid): resolved targets, before the arity check (the
    // machine records targets the same way).
    p.rule(
        r.target,
        vec![v("s"), v("mid")],
        vec![
            (r.invoke, vec![v("s"), v("lhs"), v("recv"), v("m"), v("n")]),
            (r.reach, vec![v("s"), v("ctx")]),
            (r.vp, vec![v("recv"), v("ctx"), v("c"), v("h")]),
            (r.lookup, vec![v("c"), v("m"), v("mid")]),
        ],
    )
    .expect("target rule");
    // calledge(s, ctx, mid, newctx): arity-checked call edges with the
    // callee context from the pre-tabulated context algebra.
    p.rule(
        r.calledge,
        vec![v("s"), v("ctx"), v("mid"), v("newctx")],
        vec![
            (r.invoke, vec![v("s"), v("lhs"), v("recv"), v("m"), v("n")]),
            (r.reach, vec![v("s"), v("ctx")]),
            (r.vp, vec![v("recv"), v("ctx"), v("c"), v("h")]),
            (r.lookup, vec![v("c"), v("m"), v("mid")]),
            (r.marity, vec![v("mid"), v("n")]),
            (r.ctxpush, vec![v("ctx"), v("s"), v("newctx")]),
        ],
    )
    .expect("calledge rule");
    // Callee entry becomes reachable.
    p.rule(
        r.reach,
        vec![v("s0"), v("newctx")],
        vec![
            (r.calledge, vec![v("s"), v("ctx"), v("mid"), v("newctx")]),
            (r.firststmt, vec![v("mid"), v("s0")]),
        ],
    )
    .expect("call entry rule");
    // Receiver flow: the callee's `this` aliases the receiver's address,
    // so it sees the receiver's *entire* flow set (as in the machine,
    // which binds `this ↦ β̂(v₀)`).
    p.rule(
        r.vp,
        vec![v("this"), v("newctx"), v("c"), v("h")],
        vec![
            (r.calledge, vec![v("s"), v("ctx"), v("mid"), v("newctx")]),
            (r.invoke, vec![v("s"), v("lhs"), v("recv"), v("m"), v("n")]),
            (r.formal, vec![v("mid"), Term::Const(sentinel), v("this")]),
            (r.vp, vec![v("recv"), v("ctx"), v("c"), v("h")]),
        ],
    )
    .expect("this rule");
    // Parameter passing.
    p.rule(
        r.vp,
        vec![v("p"), v("newctx"), v("c"), v("h")],
        vec![
            (r.calledge, vec![v("s"), v("ctx"), v("mid"), v("newctx")]),
            (r.actual, vec![v("s"), v("i"), v("a")]),
            (r.formal, vec![v("mid"), v("i"), v("p")]),
            (r.vp, vec![v("a"), v("ctx"), v("c"), v("h")]),
        ],
    )
    .expect("param rule");
    // Return value flows to the call's left-hand side in the caller's
    // context (the OO variant *restores* the caller's context, §4.5).
    p.rule(
        r.vp,
        vec![v("lhs"), v("ctx"), v("c"), v("h")],
        vec![
            (r.calledge, vec![v("s"), v("ctx"), v("mid"), v("newctx")]),
            (r.invoke, vec![v("s"), v("lhs"), v("recv"), v("m"), v("n")]),
            (r.retstmt, vec![v("rs"), v("mid"), v("rv")]),
            (r.reach, vec![v("rs"), v("newctx")]),
            (r.vp, vec![v("rv"), v("newctx"), v("c"), v("h")]),
        ],
    )
    .expect("return value rule");
    // The statement after a call is reachable once some callee return is.
    p.rule(
        r.reach,
        vec![v("s2"), v("ctx")],
        vec![
            (r.calledge, vec![v("s"), v("ctx"), v("mid"), v("newctx")]),
            (r.retstmt, vec![v("rs"), v("mid"), v("rv")]),
            (r.reach, vec![v("rs"), v("newctx")]),
            (r.callsucc, vec![v("s"), v("s2")]),
        ],
    )
    .expect("return reach rule");
    // Values returned from the entry method reach the halt continuation.
    p.rule(
        r.haltclass,
        vec![v("c")],
        vec![
            (r.retstmt, vec![v("rs"), Term::Const(entry_mid), v("rv")]),
            (r.reach, vec![v("rs"), Term::Const(eps)]),
            (r.vp, vec![v("rv"), Term::Const(eps), v("c"), v("h")]),
        ],
    )
    .expect("halt rule");
}

/// The `formal` index used for the `this` pseudo-parameter. Real
/// parameters use indices `0, 1, …` interned as `i0, i1, …`; `this` uses
/// this sentinel name so one `formal` relation serves both.
const THIS_INDEX_SENTINEL_NAME: &str = "iThis";

/// Compiles `program` into facts + rules and evaluates to the fixpoint.
///
/// # Panics
///
/// Panics if `options.k > 2`: the pure-Datalog encoding tabulates the
/// whole context universe (all call strings of length ≤ k) as `ctxpush`
/// facts, which is only sensible for small k. This mirrors practice —
/// Datalog points-to frameworks treat deep contexts with constructors,
/// not tables.
pub fn analyze_fj_datalog(program: &FjProgram, options: FjDatalogOptions) -> FjDatalogResult {
    assert!(
        options.k <= 2,
        "Datalog encoding tabulates contexts; k ≤ 2 only"
    );
    Encoder::new(program, options).run()
}

struct Encoder<'p> {
    fj: &'p FjProgram,
    options: FjDatalogOptions,
    pool: ConstPool,
    program: DatalogProgram,
    rels: Rels,
    db: Option<Database>,
    // Forward maps.
    stmt_consts: HashMap<StmtId, Const>,
    ctx_consts: HashMap<Vec<Label>, Const>,
    // Reverse maps.
    stmt_of: HashMap<Const, StmtId>,
    mid_of: HashMap<Const, MethodId>,
    class_of: HashMap<Const, ClassId>,
    var_of: HashMap<Const, Symbol>,
    this_of: HashMap<Const, MethodId>,
    ctx_of: HashMap<Const, Vec<Label>>,
    this_sym: Symbol,
    edb_facts: usize,
}

impl<'p> Encoder<'p> {
    fn new(fj: &'p FjProgram, options: FjDatalogOptions) -> Self {
        let mut program = DatalogProgram::new();
        let rels = declare(&mut program);
        let this_sym = fj
            .interner()
            .lookup("this")
            .expect("'this' interned by parser");
        Encoder {
            fj,
            options,
            pool: ConstPool::new(),
            program,
            rels,
            db: None,
            stmt_consts: HashMap::new(),
            ctx_consts: HashMap::new(),
            stmt_of: HashMap::new(),
            mid_of: HashMap::new(),
            class_of: HashMap::new(),
            var_of: HashMap::new(),
            this_of: HashMap::new(),
            ctx_of: HashMap::new(),
            this_sym,
            edb_facts: 0,
        }
    }

    fn stmt_const(&mut self, s: StmtId) -> Const {
        if let Some(&c) = self.stmt_consts.get(&s) {
            return c;
        }
        let c = self.pool.intern(&format!("s{}.{}", s.method.0, s.index));
        self.stmt_consts.insert(s, c);
        self.stmt_of.insert(c, s);
        c
    }

    fn mid_const(&mut self, m: MethodId) -> Const {
        let c = self.pool.intern(&format!("mid{}", m.0));
        self.mid_of.insert(c, m);
        c
    }

    fn class_const(&mut self, c: ClassId) -> Const {
        let k = self.pool.intern(&format!("class{}", c.0));
        self.class_of.insert(k, c);
        k
    }

    /// A variable or field constant. `this` must not reach here.
    fn var_const(&mut self, sym: Symbol) -> Const {
        debug_assert_ne!(sym, self.this_sym, "this is rewritten before var_const");
        let c = self.pool.intern(&format!("var{}", sym.index()));
        self.var_of.insert(c, sym);
        c
    }

    /// The pseudo-variable standing for `this` inside method `m`.
    fn this_const(&mut self, m: MethodId) -> Const {
        let c = self.pool.intern(&format!("this#{}", m.0));
        self.this_of.insert(c, m);
        c
    }

    /// Rewrites a use: `this` becomes the enclosing method's
    /// pseudo-variable; anything else is a plain variable constant.
    fn use_const(&mut self, sym: Symbol, method: MethodId) -> Const {
        if sym == self.this_sym {
            self.this_const(method)
        } else {
            self.var_const(sym)
        }
    }

    fn ctx_const(&mut self, labels: &[Label]) -> Const {
        if let Some(&c) = self.ctx_consts.get(labels) {
            return c;
        }
        let name = if labels.is_empty() {
            "ctx⟨⟩".to_owned()
        } else {
            format!(
                "ctx⟨{}⟩",
                labels
                    .iter()
                    .map(|l| l.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        let c = self.pool.intern(&name);
        self.ctx_consts.insert(labels.to_vec(), c);
        self.ctx_of.insert(c, labels.to_vec());
        c
    }

    fn idx_const(&mut self, i: usize) -> Const {
        self.pool.intern(&format!("i{i}"))
    }

    fn arity_const(&mut self, n: usize) -> Const {
        self.pool.intern(&format!("a{n}"))
    }

    fn fact(&mut self, rel: RelId, tuple: &[Const]) {
        if self.db.as_mut().expect("db initialized").insert(rel, tuple) {
            self.edb_facts += 1;
        }
    }

    /// Generates all input facts from the program.
    fn generate_facts(&mut self) {
        // Per-method structural facts.
        for mid in self.fj.method_ids() {
            let method = self.fj.method(mid).clone();
            let mc = self.mid_const(mid);
            let first = self.stmt_const(StmtId {
                method: mid,
                index: 0,
            });
            self.fact(self.rels.firststmt, &[mc, first]);
            let nargs = self.arity_const(method.params.len());
            self.fact(self.rels.marity, &[mc, nargs]);
            // Formals: real parameters at i0, i1, …; `this` at the
            // sentinel index.
            for (i, &(_, pname)) in method.params.iter().enumerate() {
                let ic = self.idx_const(i);
                let pc = self.var_const(pname);
                self.fact(self.rels.formal, &[mc, ic, pc]);
            }
            let sentinel = self.pool.intern(THIS_INDEX_SENTINEL_NAME);
            let this_c = self.this_const(mid);
            self.fact(self.rels.formal, &[mc, sentinel, this_c]);

            for (index, stmt) in method.body.iter().enumerate() {
                let sid = StmtId {
                    method: mid,
                    index: index as u32,
                };
                let sc = self.stmt_const(sid);
                let succ_c = self.stmt_const(StmtId {
                    method: mid,
                    index: index as u32 + 1,
                });
                match &stmt.kind {
                    FjStmtKind::Return { var } => {
                        let rv = self.use_const(*var, mid);
                        self.fact(self.rels.retstmt, &[sc, mc, rv]);
                    }
                    FjStmtKind::Assign { lhs, rhs } => {
                        let lhs_c = self.var_const(*lhs);
                        match rhs {
                            FjExpr::Var(from) => {
                                let from_c = self.use_const(*from, mid);
                                self.fact(self.rels.mov, &[sc, lhs_c, from_c]);
                                self.fact(self.rels.nextlocal, &[sc, succ_c]);
                            }
                            FjExpr::Cast { class, var } => {
                                let from_c = self.use_const(*var, mid);
                                let target = if self.options.cast_filtering {
                                    self.fj.class_by_name(*class)
                                } else {
                                    None
                                };
                                match target {
                                    Some(cid) => {
                                        let tc = self.class_const(cid);
                                        self.fact(self.rels.cast, &[sc, lhs_c, from_c, tc]);
                                    }
                                    // Unfiltered (or unknown target class,
                                    // which the machine also copies
                                    // unfiltered): a plain move.
                                    None => {
                                        self.fact(self.rels.mov, &[sc, lhs_c, from_c]);
                                    }
                                }
                                self.fact(self.rels.nextlocal, &[sc, succ_c]);
                            }
                            FjExpr::FieldRead { object, field } => {
                                let base = self.use_const(*object, mid);
                                let fc = self.var_const(*field);
                                self.fact(self.rels.load, &[sc, lhs_c, base, fc]);
                                self.fact(self.rels.nextlocal, &[sc, succ_c]);
                            }
                            FjExpr::New { class, args } => {
                                // Valid allocations only; the machine
                                // falls through (no write) otherwise.
                                if let Some(cid) = self.fj.class_by_name(*class) {
                                    let fields = self.fj.all_fields(cid);
                                    if fields.len() == args.len() {
                                        let cc = self.class_const(cid);
                                        self.fact(self.rels.alloc, &[sc, lhs_c, cc]);
                                        for ((_, fname), &arg) in fields.iter().zip(args) {
                                            let fc = self.var_const(*fname);
                                            let ac = self.use_const(arg, mid);
                                            self.fact(self.rels.allocarg, &[sc, fc, ac]);
                                        }
                                    }
                                }
                                self.fact(self.rels.nextlocal, &[sc, succ_c]);
                            }
                            FjExpr::Invoke {
                                receiver,
                                method: mname,
                                args,
                            } => {
                                let recv = self.use_const(*receiver, mid);
                                let m_c = self.pool.intern(&format!("m:{}", mname.index()));
                                let n = self.arity_const(args.len());
                                self.fact(self.rels.invoke, &[sc, lhs_c, recv, m_c, n]);
                                for (i, &arg) in args.iter().enumerate() {
                                    let ic = self.idx_const(i);
                                    let ac = self.use_const(arg, mid);
                                    self.fact(self.rels.actual, &[sc, ic, ac]);
                                }
                                self.fact(self.rels.callsucc, &[sc, succ_c]);
                            }
                        }
                    }
                }
            }
        }

        // Class hierarchy facts.
        for cid in self.fj.class_ids() {
            let cc = self.class_const(cid);
            for (_, fname) in self.fj.all_fields(cid) {
                let fc = self.var_const(fname);
                self.fact(self.rels.hasfield, &[cc, fc]);
            }
            // Method lookup for every method name in the program.
            for mid in self.fj.method_ids() {
                let mname = self.fj.method(mid).name;
                if let Some(resolved) = self.fj.lookup_method(cid, mname) {
                    let m_c = self.pool.intern(&format!("m:{}", mname.index()));
                    let rc = self.mid_const(resolved);
                    self.fact(self.rels.lookup, &[cc, m_c, rc]);
                }
            }
            if self.options.cast_filtering {
                for sup in self.fj.class_ids() {
                    if self.fj.is_subclass(cid, sup) {
                        let sc = self.class_const(sup);
                        self.fact(self.rels.subclass, &[cc, sc]);
                    }
                }
            }
        }

        // Context algebra: all call strings of length ≤ k over invocation
        // labels, and the push table.
        let invoke_stmts: Vec<(StmtId, Label)> = self
            .fj
            .method_ids()
            .flat_map(|mid| {
                let body = &self.fj.method(mid).body;
                body.iter()
                    .enumerate()
                    .filter(|(_, s)| {
                        matches!(
                            s.kind,
                            FjStmtKind::Assign {
                                rhs: FjExpr::Invoke { .. },
                                ..
                            }
                        )
                    })
                    .map(|(i, s)| {
                        (
                            StmtId {
                                method: mid,
                                index: i as u32,
                            },
                            s.label,
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut universe: Vec<Vec<Label>> = vec![Vec::new()];
        let mut frontier = universe.clone();
        for _ in 0..self.options.k {
            let mut next = Vec::new();
            for ctx in &frontier {
                for &(_, label) in &invoke_stmts {
                    let mut pushed = vec![label];
                    pushed.extend(ctx.iter().copied());
                    pushed.truncate(self.options.k);
                    if !universe.contains(&pushed) {
                        universe.push(pushed.clone());
                        next.push(pushed);
                    }
                }
            }
            frontier = next;
        }
        for ctx in &universe.clone() {
            let cc = self.ctx_const(ctx);
            for &(sid, label) in &invoke_stmts {
                let mut pushed = vec![label];
                pushed.extend(ctx.iter().copied());
                pushed.truncate(self.options.k);
                let nc = self.ctx_const(&pushed);
                let sc = self.stmt_const(sid);
                self.fact(self.rels.ctxpush, &[cc, sc, nc]);
            }
        }

        // Seeds: the entry statement is reachable in the empty context,
        // and the entry method's `this` holds the main object.
        let entry = self.fj.entry();
        let eps = self.ctx_const(&[]);
        let s0 = self.stmt_const(self.fj.entry_stmt());
        self.fact(self.rels.reach, &[s0, eps]);
        let main_class = self.class_const(self.fj.method(entry).owner);
        let this_c = self.this_const(entry);
        self.fact(self.rels.vp, &[this_c, eps, main_class, eps]);
    }

    fn run(mut self) -> FjDatalogResult {
        self.db = Some(self.program.database());
        self.generate_facts();

        // Install the rules with the now-known sentinel and entry
        // constants.
        let sentinel = self.pool.intern(THIS_INDEX_SENTINEL_NAME);
        let entry_mid = self.mid_const(self.fj.entry());
        let eps = self.ctx_const(&[]);
        install_rules(&mut self.program, &self.rels, sentinel, entry_mid, eps);

        let mut db = self.db.take().expect("db present");
        let stats = self.program.run(&mut db);

        // Extract results back into domain terms.
        let mut call_targets: BTreeMap<StmtId, BTreeSet<MethodId>> = BTreeMap::new();
        for t in db.tuples(self.rels.target) {
            let s = self.stmt_of[&t[0]];
            let m = self.mid_of[&t[1]];
            call_targets.entry(s).or_default().insert(m);
        }
        let mut points_to: BTreeMap<(Symbol, Vec<Label>), BTreeSet<ClassId>> = BTreeMap::new();
        let mut this_points_to: BTreeMap<(MethodId, Vec<Label>), BTreeSet<ClassId>> =
            BTreeMap::new();
        for t in db.tuples(self.rels.vp) {
            let ctx = self.ctx_of[&t[1]].clone();
            let class = self.class_of[&t[2]];
            if let Some(&sym) = self.var_of.get(&t[0]) {
                points_to.entry((sym, ctx)).or_default().insert(class);
            } else if let Some(&mid) = self.this_of.get(&t[0]) {
                this_points_to.entry((mid, ctx)).or_default().insert(class);
            }
        }
        let mut reachable = BTreeSet::new();
        for t in db.tuples(self.rels.reach) {
            if let Some(&s) = self.stmt_of.get(&t[0]) {
                reachable.insert((s, self.ctx_of[&t[1]].clone()));
            }
        }
        let halt_classes: BTreeSet<ClassId> = db
            .tuples(self.rels.haltclass)
            .map(|t| self.class_of[&t[0]])
            .collect();

        FjDatalogResult {
            call_targets,
            points_to,
            this_points_to,
            reachable,
            halt_classes,
            edb_facts: self.edb_facts,
            total_facts: db.total_facts(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fj;

    fn run(src: &str, options: FjDatalogOptions) -> (FjProgram, FjDatalogResult) {
        let p = parse_fj(src).unwrap();
        let r = analyze_fj_datalog(&p, options);
        (p, r)
    }

    const DISPATCH: &str = "
        class A extends Object {
          A() { super(); }
          Object who() { Object o; o = new A(); return o; }
        }
        class B extends A {
          B() { super(); }
          Object who() { Object o; o = new B(); return o; }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            A x;
            x = new B();
            return x.who();
          }
        }";

    #[test]
    fn minimal_program_halts_with_object() {
        let (p, r) = run(
            "class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
            FjDatalogOptions::insensitive(),
        );
        let names: Vec<&str> = r
            .halt_classes
            .iter()
            .map(|&c| p.name(p.class(c).name))
            .collect();
        assert_eq!(names, vec!["Object"]);
        assert!(r.edb_facts > 0);
        assert!(r.total_facts > r.edb_facts);
    }

    #[test]
    fn dispatch_resolves_precisely() {
        let (_, r) = run(DISPATCH, FjDatalogOptions::sensitive(1));
        assert_eq!(r.monomorphic_calls(), r.call_targets.len());
        assert_eq!(r.call_targets.len(), 1);
    }

    #[test]
    fn field_flow_through_constructor() {
        let (p, r) = run(
            "class Box extends Object {
               Object item;
               Box(Object item0) { super(); this.item = item0; }
               Object get() { return this.item; }
             }
             class Marker extends Object { Marker() { super(); } }
             class Main extends Object {
               Main() { super(); }
               Object main() {
                 Box b;
                 b = new Box(new Marker());
                 return b.get();
               }
             }",
            FjDatalogOptions::sensitive(1),
        );
        let names: Vec<&str> = r
            .halt_classes
            .iter()
            .map(|&c| p.name(p.class(c).name))
            .collect();
        assert_eq!(names, vec!["Marker"]);
    }

    #[test]
    fn infinite_recursion_reaches_no_halt() {
        let (_, r) = run(
            "class Main extends Object {
               Main() { super(); }
               Object main() { return this.main(); }
             }",
            FjDatalogOptions::sensitive(1),
        );
        assert!(r.halt_classes.is_empty());
        // The self-call is still resolved.
        assert_eq!(r.call_targets.len(), 1);
    }

    #[test]
    fn unreachable_code_is_not_analyzed() {
        let (p, r) = run(
            "class Dead extends Object {
               Dead() { super(); }
               Object never() { Object o; o = new Dead(); return o; }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
            FjDatalogOptions::insensitive(),
        );
        let dead = p
            .class_by_name(p.interner().lookup("Dead").unwrap())
            .unwrap();
        assert!(!r.halt_classes.contains(&dead));
        // No points-to tuple mentions Dead: its alloc never fires.
        for classes in r.points_to.values() {
            assert!(!classes.contains(&dead));
        }
    }

    #[test]
    fn cast_filtering_prunes() {
        let src = "
            class A extends Object { A() { super(); } }
            class B extends Object { B() { super(); } }
            class Main extends Object {
              Main() { super(); }
              Object pick(Object one, Object two) { return two; }
              Object main() {
                Object x;
                x = this.pick(new A(), new B());
                Object x2;
                x2 = this.pick(new B(), new A());
                B y;
                y = (B) x;
                return y;
              }
            }";
        let (_, unfiltered) = run(src, FjDatalogOptions::insensitive());
        let (_, filtered) = run(
            src,
            FjDatalogOptions {
                k: 0,
                cast_filtering: true,
            },
        );
        assert!(unfiltered.halt_classes.len() >= 2);
        assert_eq!(filtered.halt_classes.len(), 1);
    }

    #[test]
    fn context_sensitivity_splits_call_sites() {
        // Under k=1 the two `pick` calls have distinct contexts, so the
        // returned values stay distinct.
        let src = "
            class A extends Object {
              A() { super(); }
              Object who() { Object o; o = new A(); return o; }
            }
            class B extends A {
              B() { super(); }
              Object who() { Object o; o = new B(); return o; }
            }
            class Main extends Object {
              Main() { super(); }
              A id(A a) { return a; }
              Object main() {
                A x;
                x = this.id(new A());
                A y;
                y = this.id(new B());
                return y.who();
              }
            }";
        let (p, k0) = run(src, FjDatalogOptions::insensitive());
        let (_, k1) = run(src, FjDatalogOptions::sensitive(1));
        let b = p.class_by_name(p.interner().lookup("B").unwrap()).unwrap();
        let a = p.class_by_name(p.interner().lookup("A").unwrap()).unwrap();
        // k=0 merges: y sees both A and B, so who() dispatches to both.
        assert_eq!(k0.halt_classes, [a, b].into_iter().collect());
        // k=1 keeps them apart: only B::who is invoked on y.
        assert_eq!(k1.halt_classes, [b].into_iter().collect());
    }

    #[test]
    #[should_panic(expected = "k ≤ 2")]
    fn deep_contexts_rejected() {
        let p = parse_fj(
            "class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
        )
        .unwrap();
        let _ = analyze_fj_datalog(&p, FjDatalogOptions::sensitive(3));
    }
}

//! Method-level call-graph construction and Graphviz export for
//! Featherweight Java.
//!
//! The OO analog of [`cfa_core::callgraph`]: points-to analyses build
//! the call graph *on the fly* ("on-the-fly call-graph construction",
//! §2.1), and [`crate::kcfa::FjMetrics::call_targets`] records the
//! per-invocation-site target sets. This module turns them into a
//! queryable method-to-method graph with a `dot` rendering, so the OO
//! devirtualization story can be inspected visually.

use crate::ast::{FjProgram, MethodId, StmtId};
use crate::kcfa::FjMetrics;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// A resolved method-level call graph.
#[derive(Clone, Debug, Default)]
pub struct FjCallGraph {
    /// Invocation site → target methods.
    edges: BTreeMap<StmtId, BTreeSet<MethodId>>,
}

impl FjCallGraph {
    /// Builds the call graph from an analysis summary.
    pub fn from_metrics(metrics: &FjMetrics) -> Self {
        FjCallGraph {
            edges: metrics.call_targets.clone(),
        }
    }

    /// Targets of an invocation site.
    pub fn targets(&self, site: StmtId) -> Option<&BTreeSet<MethodId>> {
        self.edges.get(&site)
    }

    /// Number of resolved invocation sites.
    pub fn site_count(&self) -> usize {
        self.edges.len()
    }

    /// Total number of site→method edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Sites with exactly one target (devirtualizable).
    pub fn monomorphic_sites(&self) -> usize {
        self.edges.values().filter(|t| t.len() == 1).count()
    }

    /// Method-to-method edges: the method containing the site → target.
    pub fn method_edges(&self) -> BTreeSet<(MethodId, MethodId)> {
        self.edges
            .iter()
            .flat_map(|(site, targets)| targets.iter().map(|&t| (site.method, t)))
            .collect()
    }

    /// Methods that are the target of at least one edge, plus callers.
    pub fn methods(&self) -> BTreeSet<MethodId> {
        let mut out = BTreeSet::new();
        for (from, to) in self.method_edges() {
            out.insert(from);
            out.insert(to);
        }
        out
    }

    /// Renders the method-level call graph as Graphviz `dot`. Edge
    /// style encodes precision: solid edges come from monomorphic
    /// sites, dashed edges from polymorphic ones.
    pub fn to_dot(&self, program: &FjProgram) -> String {
        let mut out = String::from("digraph fj_callgraph {\n  rankdir=LR;\n");
        let name = |m: MethodId| {
            let method = program.method(m);
            format!(
                "{}.{}",
                program.name(program.class(method.owner).name),
                program.name(method.name)
            )
        };
        for m in self.methods() {
            let _ = writeln!(out, "  m{} [label=\"{}\"];", m.0, name(m));
        }
        for (site, targets) in &self.edges {
            let style = if targets.len() == 1 {
                "solid"
            } else {
                "dashed"
            };
            for &t in targets {
                let _ = writeln!(out, "  m{} -> m{} [style={style}];", site.method.0, t.0);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcfa::{analyze_fj, FjAnalysisOptions};
    use crate::parse::parse_fj;
    use cfa_core::engine::EngineLimits;

    fn graph(src: &str, k: usize) -> (FjProgram, FjCallGraph) {
        let p = parse_fj(src).unwrap();
        let r = analyze_fj(&p, FjAnalysisOptions::oo(k), EngineLimits::default());
        let g = FjCallGraph::from_metrics(&r.metrics);
        (p, g)
    }

    const SRC: &str = "
        class A extends Object {
          A() { super(); }
          Object who() { Object oa; oa = new A(); return oa; }
        }
        class B extends A {
          B() { super(); }
          Object who() { Object ob; ob = new B(); return ob; }
        }
        class Main extends Object {
          Main() { super(); }
          A id(A a) { return a; }
          Object main() {
            A x;
            x = this.id(new A());
            A y;
            y = this.id(new B());
            return x.who();
          }
        }";

    #[test]
    fn builds_method_edges() {
        let (p, g) = graph(SRC, 1);
        assert!(g.site_count() >= 3);
        assert!(g.edge_count() >= g.site_count());
        let main = p.entry();
        // main calls id (twice) and who.
        assert!(g.method_edges().iter().any(|(from, _)| *from == main));
    }

    #[test]
    fn monomorphic_counts_track_precision() {
        let (_, g0) = graph(SRC, 0);
        let (_, g1) = graph(SRC, 1);
        assert!(g1.monomorphic_sites() > g0.monomorphic_sites());
    }

    #[test]
    fn dot_output_is_well_formed() {
        let (p, g) = graph(SRC, 1);
        let dot = g.to_dot(&p);
        assert!(dot.starts_with("digraph fj_callgraph {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("Main.id"), "{dot}");
        assert!(dot.contains("style=solid"));
    }

    #[test]
    fn polymorphic_edges_are_dashed() {
        let (p, g) = graph(SRC, 0);
        let dot = g.to_dot(&p);
        assert!(
            dot.contains("style=dashed"),
            "k=0 who() site is polymorphic:\n{dot}"
        );
    }

    #[test]
    fn empty_graph_renders() {
        let (p, g) = graph(
            "class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
            0,
        );
        let dot = g.to_dot(&p);
        assert!(dot.contains("digraph"));
        assert_eq!(g.site_count(), 0);
        assert_eq!(g.monomorphic_sites(), 0);
    }
}

//! A-Normal Featherweight Java abstract syntax (paper §4).
//!
//! The grammar follows the paper exactly:
//!
//! ```text
//! Class  ::= class C extends C′ { C″ f; … K M… }
//! K      ::= C (C f, …) { super(f′ …); this.f″ = f‴; … }
//! M      ::= C m(C v, …) { C v; … s… }
//! s      ::= v = e;ℓ | return v;ℓ
//! e      ::= v | v.f | v.m(v…) | new C(v…) | (C)v
//! ```
//!
//! Every statement carries a unique [`Label`]; `succ` is positional
//! within a method body. Classes, fields, methods, and variables are
//! interned [`Symbol`]s.

use cfa_syntax::cps::Label;
use cfa_syntax::intern::{Interner, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Index of a class in a [`FjProgram`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClassId(pub u32);

/// Index of a method in a [`FjProgram`] (global across classes).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MethodId(pub u32);

/// A statement position: method × index into its body.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StmtId {
    /// The containing method.
    pub method: MethodId,
    /// Index into the method body.
    pub index: u32,
}

/// An atomically evaluable expression (the `e` production).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FjExpr {
    /// `v` — variable copy.
    Var(Symbol),
    /// `v.f` — field read.
    FieldRead {
        /// The object variable.
        object: Symbol,
        /// The field name.
        field: Symbol,
    },
    /// `v.m(v…)` — method invocation.
    Invoke {
        /// Receiver variable.
        receiver: Symbol,
        /// Method name.
        method: Symbol,
        /// Argument variables.
        args: Vec<Symbol>,
    },
    /// `new C(v…)` — object allocation.
    New {
        /// The class.
        class: Symbol,
        /// Constructor argument variables.
        args: Vec<Symbol>,
    },
    /// `(C) v` — cast.
    Cast {
        /// Target class.
        class: Symbol,
        /// The variable being cast.
        var: Symbol,
    },
}

/// A statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FjStmtKind {
    /// `v = e;`
    Assign {
        /// Left-hand variable.
        lhs: Symbol,
        /// Right-hand expression.
        rhs: FjExpr,
    },
    /// `return v;`
    Return {
        /// The returned variable.
        var: Symbol,
    },
}

/// A labeled statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FjStmt {
    /// The statement.
    pub kind: FjStmtKind,
    /// Its unique label.
    pub label: Label,
}

/// A method definition.
#[derive(Clone, Debug)]
pub struct Method {
    /// The defining class.
    pub owner: ClassId,
    /// Method name.
    pub name: Symbol,
    /// Parameters `(type, name)`.
    pub params: Vec<(Symbol, Symbol)>,
    /// Local variable declarations `(type, name)`.
    pub locals: Vec<(Symbol, Symbol)>,
    /// The body statements (at least one `return`).
    pub body: Vec<FjStmt>,
}

/// A class definition.
#[derive(Clone, Debug)]
pub struct ClassDef {
    /// Class name.
    pub name: Symbol,
    /// Superclass name (`Object`'s superclass is itself).
    pub superclass: Symbol,
    /// Own (non-inherited) fields `(type, name)` in declaration order.
    pub fields: Vec<(Symbol, Symbol)>,
    /// Methods defined directly on this class.
    pub methods: Vec<MethodId>,
}

/// A whole Featherweight Java program.
#[derive(Clone, Debug)]
pub struct FjProgram {
    interner: Interner,
    classes: Vec<ClassDef>,
    methods: Vec<Method>,
    class_index: HashMap<Symbol, ClassId>,
    /// The entry method (`Main.main()`).
    entry: MethodId,
    next_label: u32,
}

impl FjProgram {
    /// Creates a program from parts. Used by the parser; validation
    /// happens there.
    pub(crate) fn new(
        interner: Interner,
        classes: Vec<ClassDef>,
        methods: Vec<Method>,
        entry: MethodId,
        next_label: u32,
    ) -> Self {
        let class_index = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name, ClassId(i as u32)))
            .collect();
        FjProgram {
            interner,
            classes,
            methods,
            class_index,
            entry,
            next_label,
        }
    }

    /// The entry method.
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// The entry statement (first statement of the entry method).
    pub fn entry_stmt(&self) -> StmtId {
        StmtId {
            method: self.entry,
            index: 0,
        }
    }

    /// Class definition by id.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Method definition by id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: Symbol) -> Option<ClassId> {
        self.class_index.get(&name).copied()
    }

    /// The statement at `id`, if in range.
    pub fn stmt(&self, id: StmtId) -> Option<&FjStmt> {
        self.method(id.method).body.get(id.index as usize)
    }

    /// `succ(ℓ)` — the next statement in the same method body.
    pub fn succ(&self, id: StmtId) -> StmtId {
        StmtId {
            method: id.method,
            index: id.index + 1,
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Total number of statements.
    pub fn stmt_count(&self) -> usize {
        self.methods.iter().map(|m| m.body.len()).sum()
    }

    /// One past the largest statement label.
    pub fn label_count(&self) -> u32 {
        self.next_label
    }

    /// Iterates over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len() as u32).map(ClassId)
    }

    /// Iterates over all method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> {
        (0..self.methods.len() as u32).map(MethodId)
    }

    /// Resolves a symbol to its name.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// The program's interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// All fields of a class, inherited first, in constructor order
    /// (the paper's `C(C) = (⃗f, K)` field list).
    pub fn all_fields(&self, class: ClassId) -> Vec<(Symbol, Symbol)> {
        let def = self.class(class);
        let mut fields = if def.superclass == def.name {
            Vec::new() // Object
        } else {
            match self.class_by_name(def.superclass) {
                Some(sup) => self.all_fields(sup),
                None => Vec::new(),
            }
        };
        fields.extend(def.fields.iter().cloned());
        fields
    }

    /// Method lookup `M(C, m)`: walks the class hierarchy upward.
    pub fn lookup_method(&self, class: ClassId, name: Symbol) -> Option<MethodId> {
        let def = self.class(class);
        for &m in &def.methods {
            if self.method(m).name == name {
                return Some(m);
            }
        }
        if def.superclass == def.name {
            return None; // Object
        }
        let sup = self.class_by_name(def.superclass)?;
        self.lookup_method(sup, name)
    }

    /// Is `sub` a (reflexive, transitive) subclass of `sup`?
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let def = self.class(sub);
        if def.superclass == def.name {
            return false;
        }
        match self.class_by_name(def.superclass) {
            Some(parent) => self.is_subclass(parent, sup),
            None => false,
        }
    }
}

impl fmt::Display for FjProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FJ program: {} classes, {} methods, {} statements",
            self.class_count(),
            self.method_count(),
            self.stmt_count()
        )
    }
}

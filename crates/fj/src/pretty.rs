//! Pretty-printing for Featherweight Java programs.
//!
//! Renders the A-normalized AST back to Java-like surface syntax —
//! useful for inspecting what the normalizer produced (temporaries,
//! flattened call chains) and for golden tests.

use crate::ast::{FjExpr, FjProgram, FjStmtKind};
use std::fmt::Write as _;

/// Renders the whole program (classes in declaration order, the
/// implicit `Object` omitted).
pub fn pretty_fj(program: &FjProgram) -> String {
    let mut out = String::new();
    for class_id in program.class_ids() {
        let class = program.class(class_id);
        // Skip the implicit Object root.
        if class.name == class.superclass {
            continue;
        }
        let _ = writeln!(
            out,
            "class {} extends {} {{",
            program.name(class.name),
            program.name(class.superclass)
        );
        for (ty, field) in &class.fields {
            let _ = writeln!(out, "  {} {};", program.name(*ty), program.name(*field));
        }
        // Reconstruct the canonical constructor from the field layout.
        let all = program.all_fields(class_id);
        if !all.is_empty() || !class.fields.is_empty() {
            let params: Vec<String> = all
                .iter()
                .map(|(ty, f)| format!("{} {}0", program.name(*ty), program.name(*f)))
                .collect();
            let inherited = all.len() - class.fields.len();
            let supers: Vec<String> = all[..inherited]
                .iter()
                .map(|(_, f)| format!("{}0", program.name(*f)))
                .collect();
            let mut body = format!("super({});", supers.join(", "));
            for (_, f) in &class.fields {
                let name = program.name(*f);
                let _ = write!(body, " this.{name} = {name}0;");
            }
            let _ = writeln!(
                out,
                "  {}({}) {{ {} }}",
                program.name(class.name),
                params.join(", "),
                body.trim()
            );
        } else {
            let _ = writeln!(out, "  {}() {{ super(); }}", program.name(class.name));
        }
        for &mid in &class.methods {
            let method = program.method(mid);
            let params: Vec<String> = method
                .params
                .iter()
                .map(|(ty, v)| format!("{} {}", program.name(*ty), program.name(*v)))
                .collect();
            let _ = writeln!(
                out,
                "  Object {}({}) {{",
                program.name(method.name),
                params.join(", ")
            );
            for (ty, local) in &method.locals {
                let _ = writeln!(out, "    {} {};", program.name(*ty), program.name(*local));
            }
            for stmt in &method.body {
                let _ = writeln!(out, "    {}", pretty_stmt(program, &stmt.kind));
            }
            let _ = writeln!(out, "  }}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn pretty_stmt(program: &FjProgram, stmt: &FjStmtKind) -> String {
    match stmt {
        FjStmtKind::Assign { lhs, rhs } => {
            format!("{} = {};", program.name(*lhs), pretty_expr(program, rhs))
        }
        FjStmtKind::Return { var } => format!("return {};", program.name(*var)),
    }
}

fn pretty_expr(program: &FjProgram, e: &FjExpr) -> String {
    match e {
        FjExpr::Var(v) => program.name(*v).to_owned(),
        FjExpr::FieldRead { object, field } => {
            format!("{}.{}", program.name(*object), program.name(*field))
        }
        FjExpr::Invoke {
            receiver,
            method,
            args,
        } => {
            let args: Vec<&str> = args.iter().map(|&a| program.name(a)).collect();
            format!(
                "{}.{}({})",
                program.name(*receiver),
                program.name(*method),
                args.join(", ")
            )
        }
        FjExpr::New { class, args } => {
            let args: Vec<&str> = args.iter().map(|&a| program.name(a)).collect();
            format!("new {}({})", program.name(*class), args.join(", "))
        }
        FjExpr::Cast { class, var } => {
            format!("({}) {}", program.name(*class), program.name(*var))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fj;

    const SRC: &str = "
        class Box extends Object {
          Object item;
          Box(Object item0) { super(); this.item = item0; }
          Object get() { return this.item; }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Box b;
            b = new Box(new Object());
            return b.get();
          }
        }";

    #[test]
    fn rendering_is_reparseable() {
        let program = parse_fj(SRC).unwrap();
        let printed = pretty_fj(&program);
        let reparsed =
            parse_fj(&printed).unwrap_or_else(|e| panic!("round-trip failed: {e}\n{printed}"));
        assert_eq!(reparsed.class_count(), program.class_count());
        assert_eq!(reparsed.method_count(), program.method_count());
        assert_eq!(reparsed.stmt_count(), program.stmt_count());
    }

    #[test]
    fn anf_temporaries_are_visible() {
        let program = parse_fj(
            "class Main extends Object {
               Main() { super(); }
               Object id(Object x) { return x; }
               Object main() { return this.id(this.id(new Object())); }
             }",
        )
        .unwrap();
        let printed = pretty_fj(&program);
        assert!(
            printed.contains("_t"),
            "normalizer temporaries shown:\n{printed}"
        );
        // Temporaries use parseable names, so even normalized output
        // round-trips.
        parse_fj(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
    }

    #[test]
    fn constructors_reconstructed_with_inheritance() {
        let program = parse_fj(
            "class A extends Object {
               Object x;
               A(Object x0) { super(); this.x = x0; }
             }
             class B extends A {
               Object y;
               B(Object x0, Object y0) { super(x0); this.y = y0; }
             }
             class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
        )
        .unwrap();
        let printed = pretty_fj(&program);
        assert!(printed.contains("B(Object x0, Object y0)"), "{printed}");
        assert!(printed.contains("super(x0)"), "{printed}");
    }
}

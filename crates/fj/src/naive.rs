//! Naive OO k-CFA: reachable-states search with per-state stores, plus
//! abstract garbage collection and abstract counting (§3.6 + §8).
//!
//! This is the Featherweight Java analog of [`cfa_core::naive`]: the
//! system space is a set of whole states `(s, β̂, σ̂, p̂_κ, t̂)`, each
//! carrying its own store. It exists for two reasons:
//!
//! 1. it makes the §3.6-vs-§3.7 comparison measurable on the OO side
//!    too (per-state stores vs the single-threaded store);
//! 2. it is the machine on which the paper's §8 proposal — abstract
//!    garbage collection for OO programs — applies directly
//!    ([`crate::gc`]), together with ΓCFA's *abstract counting*: a
//!    per-state cardinality map μ̂ recording whether an abstract address
//!    stands for at most one concrete address ([`Count::One`]) or
//!    possibly several ([`Count::Many`]). Singular addresses license
//!    must-alias reasoning; collection makes more addresses singular by
//!    removing dead bindings before they can be re-allocated.

use crate::ast::{ClassId, FjExpr, FjProgram, FjStmtKind, StmtId};
use crate::concrete::FjSlot;
use crate::gc::FjNaiveStore;
use crate::kcfa::{FjAVal, FjAddrA, FjAnalysisOptions, FjBEnvA, TickPolicy};
use cfa_core::domain::CallString;
use cfa_core::engine::Status;
use cfa_core::store::FlowSet;
use cfa_syntax::cps::Label;
use cfa_syntax::intern::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// A flow set of abstract Featherweight Java values.
pub type FlowSetA = FlowSet<FjAVal>;

pub use cfa_core::naive::Count;

/// A per-state cardinality map μ̂.
pub type CountMap = Rc<BTreeMap<FjAddrA, Count>>;

/// A whole abstract state with its own store (and count map when
/// counting is on).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FjNaiveState {
    /// Current statement.
    pub stmt: StmtId,
    /// Current binding environment.
    pub benv: FjBEnvA,
    /// This state's own store.
    pub store: FjNaiveStore,
    /// Current continuation pointer.
    pub kont: FjAddrA,
    /// Current abstract time.
    pub time: CallString,
    /// Abstract counts (empty unless counting is enabled).
    pub counts: CountMap,
}

/// Options for the naive Featherweight Java search.
#[derive(Copy, Clone, Debug)]
pub struct FjNaiveOptions {
    /// The underlying k-CFA options (context depth, tick policy, casts).
    pub analysis: FjAnalysisOptions,
    /// Apply abstract garbage collection to every successor state.
    pub abstract_gc: bool,
    /// Track abstract counts (μ̂) per state.
    pub counting: bool,
    /// Maximum number of distinct states to explore.
    pub max_states: usize,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
}

impl FjNaiveOptions {
    /// Plain naive search at the paper's literal construction.
    pub fn paper(k: usize) -> Self {
        FjNaiveOptions {
            analysis: FjAnalysisOptions::paper(k),
            abstract_gc: false,
            counting: false,
            max_states: 1_000_000,
            time_budget: None,
        }
    }

    /// Plain naive search with the conventional OO tick policy (§4.5).
    pub fn oo(k: usize) -> Self {
        FjNaiveOptions {
            analysis: FjAnalysisOptions::oo(k),
            abstract_gc: false,
            counting: false,
            max_states: 1_000_000,
            time_budget: None,
        }
    }

    /// Enables abstract garbage collection.
    pub fn with_gc(mut self) -> Self {
        self.abstract_gc = true;
        self
    }

    /// Enables abstract counting.
    pub fn with_counting(mut self) -> Self {
        self.counting = true;
        self
    }
}

/// Result of the naive Featherweight Java search.
#[derive(Debug)]
pub struct FjNaiveResult {
    /// Number of distinct states reached.
    pub state_count: usize,
    /// Completion status.
    pub status: Status,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Classes of values returned from `main`.
    pub halt_classes: BTreeSet<ClassId>,
    /// Aggregated over all states: addresses whose count stayed
    /// [`Count::One`] in *every* state that bound them.
    pub singular_addrs: usize,
    /// Aggregated over all states: total distinct bound addresses.
    pub total_addrs: usize,
    /// The aggregated count per address (empty unless counting was on).
    pub counts: BTreeMap<FjAddrA, Count>,
}

impl FjNaiveResult {
    /// Fraction of addresses that remained singular (1.0 when no address
    /// was ever doubly allocated).
    pub fn singular_ratio(&self) -> f64 {
        if self.total_addrs == 0 {
            1.0
        } else {
            self.singular_addrs as f64 / self.total_addrs as f64
        }
    }
}

fn read(store: &FjNaiveStore, addr: &FjAddrA) -> FlowSetA {
    store.get(addr).cloned().unwrap_or_default()
}

/// Joins `entries` into `store`, bumping counts for re-bound addresses.
fn join(
    store: &FjNaiveStore,
    counts: &CountMap,
    counting: bool,
    entries: Vec<(FjAddrA, FlowSetA)>,
) -> (FjNaiveStore, CountMap) {
    if entries.is_empty() {
        return (store.clone(), counts.clone());
    }
    let mut next = (**store).clone();
    let mut next_counts = if counting {
        (**counts).clone()
    } else {
        BTreeMap::new()
    };
    for (addr, values) in entries {
        if counting {
            next_counts
                .entry(addr.clone())
                .and_modify(|c| *c = c.bump())
                .or_insert(Count::One);
        }
        next.entry(addr).or_default().extend(values);
    }
    (Rc::new(next), Rc::new(next_counts))
}

struct Search<'p> {
    program: &'p FjProgram,
    options: FjNaiveOptions,
    this_sym: Symbol,
    halt_classes: BTreeSet<ClassId>,
    /// Aggregated count join across all states.
    global_counts: BTreeMap<FjAddrA, Count>,
}

impl<'p> Search<'p> {
    fn tick(&self, label: Label, time: &CallString, is_invoke: bool) -> CallString {
        let k = self.options.analysis.k;
        match self.options.analysis.policy {
            TickPolicy::EveryStatement => time.push(label, k),
            TickPolicy::OnInvocation if is_invoke => time.push(label, k),
            TickPolicy::OnInvocation => time.clone(),
        }
    }

    fn read_var(&self, state: &FjNaiveState, v: Symbol) -> FlowSetA {
        state
            .benv
            .get(v)
            .map(|a| read(&state.store, a))
            .unwrap_or_default()
    }

    fn initial(&self) -> FjNaiveState {
        let entry = self.program.entry();
        let t0 = CallString::empty();
        let main = self.program.method(entry);
        let this_addr = FjAddrA {
            slot: FjSlot::Var(self.this_sym),
            time: t0.clone(),
        };
        let halt_addr = FjAddrA {
            slot: FjSlot::Kont(entry),
            time: t0.clone(),
        };
        let mut bindings = vec![(self.this_sym, this_addr.clone())];
        for &(_, l) in &main.locals {
            bindings.push((
                l,
                FjAddrA {
                    slot: FjSlot::Var(l),
                    time: t0.clone(),
                },
            ));
        }
        let empty_store: FjNaiveStore = Rc::new(BTreeMap::new());
        let empty_counts: CountMap = Rc::new(BTreeMap::new());
        let seed = vec![
            (
                this_addr,
                std::iter::once(FjAVal::Obj {
                    class: main.owner,
                    fields: FjBEnvA::empty(),
                })
                .collect::<FlowSetA>(),
            ),
            (
                halt_addr.clone(),
                std::iter::once(FjAVal::HaltKont).collect(),
            ),
        ];
        let (store, counts) = join(&empty_store, &empty_counts, self.options.counting, seed);
        FjNaiveState {
            stmt: self.program.entry_stmt(),
            benv: FjBEnvA::empty().extend(bindings),
            store,
            kont: halt_addr,
            time: t0,
            counts,
        }
    }

    fn successors(&mut self, state: &FjNaiveState) -> Vec<FjNaiveState> {
        let Some(stmt) = self.program.stmt(state.stmt) else {
            return Vec::new();
        };
        let label = stmt.label;
        let mut out = Vec::new();
        match &stmt.kind {
            FjStmtKind::Assign { lhs, rhs } => {
                let t_new = self.tick(label, &state.time, matches!(rhs, FjExpr::Invoke { .. }));
                let write_and_step =
                    |values: FlowSetA, me: &Search<'p>, out: &mut Vec<FjNaiveState>| {
                        let entries = match state.benv.get(*lhs) {
                            Some(addr) if !values.is_empty() => vec![(addr.clone(), values)],
                            _ => Vec::new(),
                        };
                        let (store, counts) =
                            join(&state.store, &state.counts, me.options.counting, entries);
                        out.push(FjNaiveState {
                            stmt: me.program.succ(state.stmt),
                            benv: state.benv.clone(),
                            store,
                            kont: state.kont.clone(),
                            time: t_new.clone(),
                            counts,
                        });
                    };
                match rhs {
                    FjExpr::Var(v2) => {
                        let d = self.read_var(state, *v2);
                        write_and_step(d, self, &mut out);
                    }
                    FjExpr::Cast { class, var } => {
                        let mut d = self.read_var(state, *var);
                        if self.options.analysis.cast_filtering {
                            if let Some(target) = self.program.class_by_name(*class) {
                                d.retain(|v| match v {
                                    FjAVal::Obj { class: c, .. } => {
                                        self.program.is_subclass(*c, target)
                                    }
                                    _ => true,
                                });
                            }
                        }
                        write_and_step(d, self, &mut out);
                    }
                    FjExpr::FieldRead { object, field } => {
                        let objs = self.read_var(state, *object);
                        let mut result = FlowSetA::new();
                        for o in &objs {
                            if let FjAVal::Obj { fields, .. } = o {
                                if let Some(faddr) = fields.get(*field) {
                                    result.extend(read(&state.store, faddr));
                                }
                            }
                        }
                        write_and_step(result, self, &mut out);
                    }
                    FjExpr::New { class, args } => {
                        let Some(cid) = self.program.class_by_name(*class) else {
                            write_and_step(FlowSetA::new(), self, &mut out);
                            return out;
                        };
                        let field_list = self.program.all_fields(cid);
                        if field_list.len() != args.len() {
                            write_and_step(FlowSetA::new(), self, &mut out);
                            return out;
                        }
                        let mut entries = Vec::with_capacity(field_list.len() + 1);
                        let mut record = Vec::with_capacity(field_list.len());
                        for ((_, f), &arg) in field_list.iter().zip(args) {
                            let values = self.read_var(state, arg);
                            let a = FjAddrA {
                                slot: FjSlot::Var(*f),
                                time: t_new.clone(),
                            };
                            entries.push((a.clone(), values));
                            record.push((*f, a));
                        }
                        let fields = FjBEnvA::empty().extend(record);
                        if let Some(addr) = state.benv.get(*lhs) {
                            entries.push((
                                addr.clone(),
                                std::iter::once(FjAVal::Obj { class: cid, fields }).collect(),
                            ));
                        }
                        let (store, counts) =
                            join(&state.store, &state.counts, self.options.counting, entries);
                        out.push(FjNaiveState {
                            stmt: self.program.succ(state.stmt),
                            benv: state.benv.clone(),
                            store,
                            kont: state.kont.clone(),
                            time: t_new,
                            counts,
                        });
                    }
                    FjExpr::Invoke {
                        receiver,
                        method,
                        args,
                    } => {
                        let receivers = self.read_var(state, *receiver);
                        let arg_sets: Vec<FlowSetA> =
                            args.iter().map(|&a| self.read_var(state, a)).collect();
                        for r in &receivers {
                            let FjAVal::Obj { class, .. } = r else {
                                continue;
                            };
                            let Some(mid) = self.program.lookup_method(*class, *method) else {
                                continue;
                            };
                            let target = self.program.method(mid);
                            if target.params.len() != arg_sets.len() {
                                continue;
                            }
                            let kont_val = FjAVal::Kont {
                                var: *lhs,
                                next: self.program.succ(state.stmt),
                                benv: state.benv.clone(),
                                kont: state.kont.clone(),
                                time: match self.options.analysis.policy {
                                    TickPolicy::OnInvocation => Some(state.time.clone()),
                                    TickPolicy::EveryStatement => None,
                                },
                            };
                            let kont_addr = FjAddrA {
                                slot: FjSlot::Kont(mid),
                                time: t_new.clone(),
                            };
                            let mut entries =
                                vec![(kont_addr.clone(), std::iter::once(kont_val).collect())];
                            let Some(recv_addr) = state.benv.get(*receiver) else {
                                continue;
                            };
                            let mut bindings = vec![(self.this_sym, recv_addr.clone())];
                            for ((_, p), values) in target.params.iter().zip(&arg_sets) {
                                let a = FjAddrA {
                                    slot: FjSlot::Var(*p),
                                    time: t_new.clone(),
                                };
                                entries.push((a.clone(), values.clone()));
                                bindings.push((*p, a));
                            }
                            for &(_, l) in &target.locals {
                                bindings.push((
                                    l,
                                    FjAddrA {
                                        slot: FjSlot::Var(l),
                                        time: t_new.clone(),
                                    },
                                ));
                            }
                            let (store, counts) =
                                join(&state.store, &state.counts, self.options.counting, entries);
                            out.push(FjNaiveState {
                                stmt: StmtId {
                                    method: mid,
                                    index: 0,
                                },
                                benv: FjBEnvA::empty().extend(bindings),
                                store,
                                kont: kont_addr,
                                time: t_new.clone(),
                                counts,
                            });
                        }
                    }
                }
            }
            FjStmtKind::Return { var } => {
                let d = self.read_var(state, *var);
                let konts = read(&state.store, &state.kont);
                for k in &konts {
                    match k {
                        FjAVal::HaltKont => {
                            for v in &d {
                                if let FjAVal::Obj { class, .. } = v {
                                    self.halt_classes.insert(*class);
                                }
                            }
                        }
                        FjAVal::Kont {
                            var: v2,
                            next,
                            benv,
                            kont,
                            time,
                        } => {
                            let entries = match benv.get(*v2) {
                                Some(addr) if !d.is_empty() => {
                                    vec![(addr.clone(), d.clone())]
                                }
                                _ => Vec::new(),
                            };
                            let (store, counts) =
                                join(&state.store, &state.counts, self.options.counting, entries);
                            let t_new = match (self.options.analysis.policy, time) {
                                (TickPolicy::OnInvocation, Some(t)) => t.clone(),
                                _ => self.tick(label, &state.time, false),
                            };
                            out.push(FjNaiveState {
                                stmt: *next,
                                benv: benv.clone(),
                                store,
                                kont: kont.clone(),
                                time: t_new,
                                counts,
                            });
                        }
                        FjAVal::Obj { .. } => {}
                    }
                }
            }
        }
        out
    }
}

/// Runs the naive reachable-states search for Featherweight Java.
pub fn analyze_fj_naive(program: &FjProgram, options: FjNaiveOptions) -> FjNaiveResult {
    let start = Instant::now();
    let this_sym = program
        .interner()
        .lookup("this")
        .expect("'this' interned by parser");
    let mut search = Search {
        program,
        options,
        this_sym,
        halt_classes: BTreeSet::new(),
        global_counts: BTreeMap::new(),
    };
    let initial = search.initial();
    let mut seen: HashSet<FjNaiveState> = HashSet::new();
    let mut queue: VecDeque<FjNaiveState> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial);

    let mut status = Status::Completed;
    let mut processed: usize = 0;
    while let Some(state) = queue.pop_front() {
        if seen.len() > options.max_states {
            status = Status::IterationLimit;
            break;
        }
        if processed.is_multiple_of(64) {
            if let Some(budget) = options.time_budget {
                if start.elapsed() > budget {
                    status = Status::TimedOut;
                    break;
                }
            }
        }
        processed += 1;
        if options.counting {
            for (addr, &count) in state.counts.iter() {
                search
                    .global_counts
                    .entry(addr.clone())
                    .and_modify(|c| {
                        if count == Count::Many {
                            *c = Count::Many;
                        }
                    })
                    .or_insert(count);
            }
        }
        for mut succ in search.successors(&state) {
            if options.abstract_gc {
                succ.store = crate::gc::collect(&succ.store, &succ.benv, &succ.kont);
                if options.counting {
                    // Collected addresses lose their counts: a future
                    // re-allocation is a *fresh* allocation (the
                    // GC/counting synergy of ΓCFA).
                    let retained: BTreeMap<FjAddrA, Count> = succ
                        .counts
                        .iter()
                        .filter(|(a, _)| succ.store.contains_key(*a))
                        .map(|(a, c)| (a.clone(), *c))
                        .collect();
                    succ.counts = Rc::new(retained);
                }
            }
            if seen.insert(succ.clone()) {
                queue.push_back(succ);
            }
        }
    }

    let singular_addrs = search
        .global_counts
        .values()
        .filter(|&&c| c == Count::One)
        .count();
    let total_addrs = search.global_counts.len();
    FjNaiveResult {
        state_count: seen.len(),
        status,
        elapsed: start.elapsed(),
        halt_classes: search.halt_classes,
        singular_addrs,
        total_addrs,
        counts: search.global_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcfa::analyze_fj;
    use crate::parse::parse_fj;
    use cfa_core::engine::EngineLimits;

    const DISPATCH: &str = "
        class A extends Object {
          A() { super(); }
          Object who() { Object oa; oa = new A(); return oa; }
        }
        class B extends A {
          B() { super(); }
          Object who() { Object ob; ob = new B(); return ob; }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            A x;
            x = new B();
            return x.who();
          }
        }";

    const BOXES: &str = "
        class Box extends Object {
          Object item;
          Box(Object item0) { super(); this.item = item0; }
          Object get() { return this.item; }
        }
        class Marker extends Object { Marker() { super(); } }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            Box b;
            b = new Box(new Marker());
            Box c;
            c = new Box(b.get());
            return c.get();
          }
        }";

    #[test]
    fn halts_agree_with_single_store_machine() {
        for (src, k) in [(DISPATCH, 0), (DISPATCH, 1), (BOXES, 0), (BOXES, 1)] {
            let p = parse_fj(src).unwrap();
            let naive = analyze_fj_naive(&p, FjNaiveOptions::paper(k));
            let fast = analyze_fj(&p, FjAnalysisOptions::paper(k), EngineLimits::default());
            assert_eq!(naive.status, Status::Completed);
            // The single-threaded store over-approximates the naive
            // search; on these programs they coincide.
            assert_eq!(naive.halt_classes, fast.metrics.halt_classes, "k={k}");
        }
    }

    #[test]
    fn gc_preserves_halt_classes() {
        for src in [DISPATCH, BOXES] {
            let p = parse_fj(src).unwrap();
            let plain = analyze_fj_naive(&p, FjNaiveOptions::paper(1));
            let gc = analyze_fj_naive(&p, FjNaiveOptions::paper(1).with_gc());
            assert_eq!(plain.halt_classes, gc.halt_classes);
            assert!(
                gc.state_count <= plain.state_count,
                "gc {} > plain {}",
                gc.state_count,
                plain.state_count
            );
        }
    }

    #[test]
    fn counting_reports_singular_addresses() {
        let p = parse_fj(DISPATCH).unwrap();
        let r = analyze_fj_naive(&p, FjNaiveOptions::paper(1).with_counting());
        assert!(r.total_addrs > 0);
        // Every address in this straight-line program is allocated once
        // per context, so most stay singular.
        assert!(r.singular_addrs > 0);
        assert!(r.singular_ratio() > 0.5, "ratio {}", r.singular_ratio());
    }

    #[test]
    fn recursion_makes_addresses_plural_at_k0() {
        let p = parse_fj(
            "class Main extends Object {
               Main() { super(); }
               Object spin(Object x) { return this.spin(x); }
               Object main() {
                 Object o;
                 o = new Object();
                 return this.spin(o);
               }
             }",
        )
        .unwrap();
        let r = analyze_fj_naive(&p, FjNaiveOptions::paper(0).with_counting());
        // The recursive rebinding of x at the single k=0 context must be
        // observed as a plural count.
        assert!(r.singular_addrs < r.total_addrs);
    }

    #[test]
    fn gc_improves_singularity() {
        let p = parse_fj(BOXES).unwrap();
        let plain = analyze_fj_naive(&p, FjNaiveOptions::paper(0).with_counting());
        let gc = analyze_fj_naive(&p, FjNaiveOptions::paper(0).with_gc().with_counting());
        assert!(
            gc.singular_ratio() >= plain.singular_ratio(),
            "gc {} < plain {}",
            gc.singular_ratio(),
            plain.singular_ratio()
        );
    }

    #[test]
    fn oo_policy_naive_agrees_with_machine() {
        for src in [DISPATCH, BOXES] {
            let p = parse_fj(src).unwrap();
            let naive = analyze_fj_naive(&p, FjNaiveOptions::oo(1));
            let fast = analyze_fj(&p, FjAnalysisOptions::oo(1), EngineLimits::default());
            assert_eq!(naive.halt_classes, fast.metrics.halt_classes);
        }
    }

    #[test]
    fn oo_policy_gc_preserves_halt_classes() {
        let p = parse_fj(BOXES).unwrap();
        let plain = analyze_fj_naive(&p, FjNaiveOptions::oo(1));
        let gc = analyze_fj_naive(&p, FjNaiveOptions::oo(1).with_gc());
        assert_eq!(plain.halt_classes, gc.halt_classes);
        assert!(gc.state_count <= plain.state_count);
    }

    #[test]
    fn state_limit_fires() {
        let p = parse_fj(DISPATCH).unwrap();
        let r = analyze_fj_naive(
            &p,
            FjNaiveOptions {
                max_states: 2,
                ..FjNaiveOptions::paper(1)
            },
        );
        assert_eq!(r.status, Status::IterationLimit);
    }

    #[test]
    fn naive_state_count_at_least_config_count() {
        let p = parse_fj(BOXES).unwrap();
        let naive = analyze_fj_naive(&p, FjNaiveOptions::paper(1));
        let fast = analyze_fj(&p, FjAnalysisOptions::paper(1), EngineLimits::default());
        assert!(naive.state_count >= fast.fixpoint.config_count());
    }
}

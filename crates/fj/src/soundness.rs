//! Soundness checking for the Featherweight Java analysis: the
//! abstraction maps of §4.3 executed against traced concrete runs.
//!
//! Mirrors `cfa_core::soundness` for the OO side: every state the
//! concrete machine (Fig 6) visits must abstract to a reached
//! configuration, and every concrete store binding must be covered by
//! the abstract store. Valid for [`crate::kcfa::TickPolicy::EveryStatement`], whose
//! clock the concrete machine's `tick` matches exactly.

use crate::ast::FjProgram;
use crate::concrete::{FjAddr, FjBEnv, FjRun, FjValue};
use crate::kcfa::{FjAVal, FjAddrA, FjBEnvA, FjConfig, FjResult};
use cfa_concrete::ctx::CtxTable;
use cfa_core::domain::CallString;
use std::collections::HashSet;
use std::fmt;

/// A witness that the abstraction failed to cover the concrete run.
#[derive(Clone, Debug)]
pub struct FjSoundnessViolation {
    /// Description of the uncovered state or binding.
    pub detail: String,
}

impl fmt::Display for FjSoundnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FJ soundness violation: {}", self.detail)
    }
}

impl std::error::Error for FjSoundnessViolation {}

fn alpha_time(ctx: cfa_concrete::base::Ctx, times: &CtxTable, k: usize) -> CallString {
    CallString::from_labels(times.first_k(ctx, k), k)
}

fn alpha_addr(addr: &FjAddr, times: &CtxTable, k: usize) -> FjAddrA {
    FjAddrA {
        slot: addr.slot,
        time: alpha_time(addr.ctx, times, k),
    }
}

fn alpha_benv(benv: &FjBEnv, times: &CtxTable, k: usize) -> FjBEnvA {
    FjBEnvA::empty().extend(benv.iter().map(|(&v, a)| (v, alpha_addr(a, times, k))))
}

fn alpha_value(v: &FjValue, times: &CtxTable, k: usize) -> FjAVal {
    match v {
        FjValue::Obj { class, fields } => FjAVal::Obj {
            class: *class,
            fields: alpha_benv(fields, times, k),
        },
        FjValue::Kont {
            var,
            next,
            benv,
            kont,
        } => FjAVal::Kont {
            var: *var,
            next: *next,
            benv: alpha_benv(benv, times, k),
            kont: alpha_addr(kont, times, k),
            time: None, // EveryStatement konts carry no time
        },
        FjValue::HaltKont => FjAVal::HaltKont,
    }
}

/// Checks that a per-statement-tick analysis result covers a
/// traced concrete run at depth `k`.
///
/// # Errors
///
/// Returns the first uncovered visited state or store binding.
///
/// # Panics
///
/// Panics if `result` was produced with [`crate::kcfa::TickPolicy::OnInvocation`]
/// (its clock differs from the concrete machine's).
pub fn check_fj(
    program: &FjProgram,
    k: usize,
    concrete: &FjRun,
    result: &FjResult,
) -> Result<(), FjSoundnessViolation> {
    assert!(
        result.metrics.analysis.contains("EveryStatement"),
        "check_fj requires the per-statement tick policy"
    );
    let configs: HashSet<&FjConfig> = result.fixpoint.configs.iter().collect();
    for visit in &concrete.trace {
        let abs = FjConfig {
            stmt: visit.stmt,
            benv: alpha_benv(&visit.benv, &concrete.times, k),
            kont: alpha_addr(&visit.kont, &concrete.times, k),
            time: alpha_time(visit.time, &concrete.times, k),
        };
        if !configs.contains(&abs) {
            return Err(FjSoundnessViolation {
                detail: format!("visited state not covered: {:?} → {abs:?}", visit.stmt),
            });
        }
    }
    for (addr, value) in &concrete.store {
        let abs_addr = alpha_addr(addr, &concrete.times, k);
        let abs_val = alpha_value(value, &concrete.times, k);
        let flow = result.fixpoint.store.read(&abs_addr);
        if !flow.contains(&abs_val) {
            return Err(FjSoundnessViolation {
                detail: format!("store binding not covered: {addr:?} (abstract {abs_addr:?})"),
            });
        }
    }
    let _ = program;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::{run_fj_traced, FjLimits};
    use crate::kcfa::{analyze_fj, FjAnalysisOptions};
    use crate::parse::parse_fj;
    use cfa_core::engine::EngineLimits;

    const PROGRAMS: &[&str] = &[
        "class Main extends Object {
           Main() { super(); }
           Object main() { Object o; o = new Object(); return o; }
         }",
        "class Box extends Object {
           Object item;
           Box(Object item0) { super(); this.item = item0; }
           Object get() { return this.item; }
         }
         class Main extends Object {
           Main() { super(); }
           Object main() {
             Box b;
             b = new Box(new Main());
             Box c;
             c = new Box(b.get());
             return c.get();
           }
         }",
        "class A extends Object {
           A() { super(); }
           Object who() { Object o; o = new A(); return o; }
         }
         class B extends A {
           B() { super(); }
           Object who() { Object o; o = new B(); return o; }
         }
         class Main extends Object {
           Main() { super(); }
           Object main() {
             A x;
             x = new B();
             Object r;
             r = x.who();
             return r;
           }
         }",
    ];

    #[test]
    fn fj_kcfa_covers_concrete_runs() {
        for src in PROGRAMS {
            let program = parse_fj(src).unwrap();
            let concrete = run_fj_traced(&program, FjLimits::default(), true);
            for k in [0, 1, 2, 3] {
                let result = analyze_fj(
                    &program,
                    FjAnalysisOptions::paper(k),
                    EngineLimits::default(),
                );
                check_fj(&program, k, &concrete, &result).unwrap_or_else(|e| panic!("k={k}: {e}"));
            }
        }
    }

    #[test]
    fn fj_kcfa_covers_paradox_family() {
        for (n, m) in [(2, 2), (3, 4)] {
            let src = cfa_workloads_oo(n, m);
            let program = parse_fj(&src).unwrap();
            let concrete = run_fj_traced(&program, FjLimits::default(), true);
            for k in [0, 1] {
                let result = analyze_fj(
                    &program,
                    FjAnalysisOptions::paper(k),
                    EngineLimits::default(),
                );
                check_fj(&program, k, &concrete, &result)
                    .unwrap_or_else(|e| panic!("N={n} M={m} k={k}: {e}"));
            }
        }
    }

    /// Inline copy of the Figure 1 generator (avoids a dev-dependency
    /// cycle with cfa-workloads).
    fn cfa_workloads_oo(n: usize, m: usize) -> String {
        use std::fmt::Write as _;
        let mut src = String::from(
            "class ClosureX extends Object {
               Object x;
               ClosureX(Object x0) { super(); this.x = x0; }
               Object bar(Object y) {
                 ClosureXY cxy;
                 cxy = new ClosureXY(this.x, y);
                 return cxy.baz();
               }
             }
             class ClosureXY extends Object {
               Object x;
               Object y;
               ClosureXY(Object x0, Object y0) { super(); this.x = x0; this.y = y0; }
               Object baz() { Object u; u = this.y; return u; }
             }
             class Main extends Object {
               Main() { super(); }
               Object foo(Object x) {
                 ClosureX cx;
                 cx = new ClosureX(x);
",
        );
        for j in 1..=m {
            let _ = writeln!(src, "Object r{j}; r{j} = cx.bar(new Object());");
        }
        let _ = writeln!(src, "return r{m}; }}");
        src.push_str("Object main() {\n");
        for i in 1..=n {
            let _ = writeln!(src, "Object s{i}; s{i} = this.foo(new Object());");
        }
        let _ = writeln!(src, "return s{n}; }} }}");
        src
    }

    #[test]
    fn violations_detected_for_wrong_program() {
        let p1 = parse_fj(PROGRAMS[0]).unwrap();
        let p2 = parse_fj(PROGRAMS[1]).unwrap();
        let concrete = run_fj_traced(&p2, FjLimits::default(), true);
        let result = analyze_fj(&p1, FjAnalysisOptions::paper(1), EngineLimits::default());
        assert!(check_fj(&p2, 1, &concrete, &result).is_err());
    }
}

//! Abstract garbage collection for Featherweight Java (the paper's §8).
//!
//! The paper's future-work section proposes carrying abstract garbage
//! collection (ΓCFA, Might & Shivers) across the functional/OO bridge:
//! "The abstract semantics for Featherweight Java make it possible to
//! adapt abstract garbage collection to the static analysis of
//! object-oriented programs. We hypothesize that its benefits for speed
//! and precision will carry over." This module is that adaptation, for
//! the per-state-store machine of [`crate::naive`].
//!
//! The interesting OO twist is the root set: besides the binding
//! environment, the current *continuation pointer* is a root, and
//! abstract continuations keep their caller's whole frame (and the
//! caller's continuation, transitively) alive — the abstract analog of
//! scanning the stack.

use crate::kcfa::{FjAVal, FjAddrA, FjBEnvA};
use std::collections::BTreeSet;

/// A per-state Featherweight Java store, as used by [`crate::naive`].
pub type FjNaiveStore = std::rc::Rc<std::collections::BTreeMap<FjAddrA, crate::naive::FlowSetA>>;

/// Computes the addresses reachable from `roots` through `store`.
///
/// Traversal: object records keep their field addresses live;
/// continuations keep their caller environment and caller continuation
/// pointer live; the halt continuation has no outgoing edges.
pub fn reachable_addrs(
    store: &FjNaiveStore,
    roots: impl IntoIterator<Item = FjAddrA>,
) -> BTreeSet<FjAddrA> {
    let mut seen: BTreeSet<FjAddrA> = BTreeSet::new();
    let mut work: Vec<FjAddrA> = roots.into_iter().collect();
    while let Some(addr) = work.pop() {
        if !seen.insert(addr.clone()) {
            continue;
        }
        let Some(values) = store.get(&addr) else {
            continue;
        };
        for v in values {
            match v {
                FjAVal::HaltKont => {}
                FjAVal::Obj { fields, .. } => {
                    for (_, a) in fields.iter() {
                        if !seen.contains(a) {
                            work.push(a.clone());
                        }
                    }
                }
                FjAVal::Kont { benv, kont, .. } => {
                    for (_, a) in benv.iter() {
                        if !seen.contains(a) {
                            work.push(a.clone());
                        }
                    }
                    if !seen.contains(kont) {
                        work.push(kont.clone());
                    }
                }
            }
        }
    }
    seen
}

/// The root set of an abstract state: the environment's range plus the
/// continuation pointer.
pub fn state_roots(benv: &FjBEnvA, kont: &FjAddrA) -> Vec<FjAddrA> {
    let mut roots: Vec<FjAddrA> = benv.iter().map(|(_, a)| a.clone()).collect();
    roots.push(kont.clone());
    roots
}

/// Restricts `store` to the addresses reachable from the state's roots —
/// one abstract garbage collection.
pub fn collect(store: &FjNaiveStore, benv: &FjBEnvA, kont: &FjAddrA) -> FjNaiveStore {
    let live = reachable_addrs(store, state_roots(benv, kont));
    if live.len() == store.len() {
        return store.clone();
    }
    std::rc::Rc::new(
        store
            .iter()
            .filter(|(a, _)| live.contains(*a))
            .map(|(a, v)| (a.clone(), v.clone()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ClassId, MethodId, StmtId};
    use crate::concrete::FjSlot;
    use cfa_core::domain::CallString;
    use cfa_syntax::intern::Symbol;
    use std::collections::BTreeMap;
    use std::rc::Rc;

    fn var_addr(i: usize) -> FjAddrA {
        FjAddrA {
            slot: FjSlot::Var(Symbol::from_index(i)),
            time: CallString::empty(),
        }
    }

    fn kont_addr(m: u32) -> FjAddrA {
        FjAddrA {
            slot: FjSlot::Kont(MethodId(m)),
            time: CallString::empty(),
        }
    }

    fn store_of(entries: Vec<(FjAddrA, Vec<FjAVal>)>) -> FjNaiveStore {
        Rc::new(
            entries
                .into_iter()
                .map(|(a, vs)| (a, vs.into_iter().collect()))
                .collect::<BTreeMap<_, _>>(),
        )
    }

    #[test]
    fn unreachable_addresses_are_collected() {
        let obj = FjAVal::Obj {
            class: ClassId(0),
            fields: FjBEnvA::empty(),
        };
        let store = store_of(vec![
            (var_addr(0), vec![obj.clone()]),
            (var_addr(1), vec![obj]),
            (kont_addr(0), vec![FjAVal::HaltKont]),
        ]);
        let benv = FjBEnvA::empty().extend([(Symbol::from_index(0), var_addr(0))]);
        let collected = collect(&store, &benv, &kont_addr(0));
        assert_eq!(collected.len(), 2);
        assert!(collected.contains_key(&var_addr(0)));
        assert!(!collected.contains_key(&var_addr(1)));
    }

    #[test]
    fn object_records_keep_fields_live() {
        let fields = FjBEnvA::empty().extend([(Symbol::from_index(5), var_addr(5))]);
        let store = store_of(vec![
            (
                var_addr(0),
                vec![FjAVal::Obj {
                    class: ClassId(0),
                    fields,
                }],
            ),
            (
                var_addr(5),
                vec![FjAVal::Obj {
                    class: ClassId(1),
                    fields: FjBEnvA::empty(),
                }],
            ),
            (
                var_addr(6),
                vec![FjAVal::Obj {
                    class: ClassId(1),
                    fields: FjBEnvA::empty(),
                }],
            ),
            (kont_addr(0), vec![FjAVal::HaltKont]),
        ]);
        let benv = FjBEnvA::empty().extend([(Symbol::from_index(0), var_addr(0))]);
        let collected = collect(&store, &benv, &kont_addr(0));
        assert!(
            collected.contains_key(&var_addr(5)),
            "field address must stay live"
        );
        assert!(!collected.contains_key(&var_addr(6)));
    }

    #[test]
    fn continuations_keep_caller_frames_live() {
        // kont(1) holds a continuation whose caller frame binds x7 and
        // whose caller continuation is kont(0) (halt).
        let caller_env = FjBEnvA::empty().extend([(Symbol::from_index(7), var_addr(7))]);
        let kont_val = FjAVal::Kont {
            var: Symbol::from_index(9),
            next: StmtId {
                method: MethodId(0),
                index: 1,
            },
            benv: caller_env,
            kont: kont_addr(0),
            time: None,
        };
        let store = store_of(vec![
            (kont_addr(1), vec![kont_val]),
            (kont_addr(0), vec![FjAVal::HaltKont]),
            (
                var_addr(7),
                vec![FjAVal::Obj {
                    class: ClassId(0),
                    fields: FjBEnvA::empty(),
                }],
            ),
            (
                var_addr(8),
                vec![FjAVal::Obj {
                    class: ClassId(0),
                    fields: FjBEnvA::empty(),
                }],
            ),
        ]);
        let benv = FjBEnvA::empty();
        let collected = collect(&store, &benv, &kont_addr(1));
        assert!(
            collected.contains_key(&var_addr(7)),
            "caller frame stays live"
        );
        assert!(
            collected.contains_key(&kont_addr(0)),
            "caller kont stays live"
        );
        assert!(!collected.contains_key(&var_addr(8)));
    }

    #[test]
    fn fully_live_store_is_shared_not_copied() {
        let store = store_of(vec![(kont_addr(0), vec![FjAVal::HaltKont])]);
        let benv = FjBEnvA::empty();
        let collected = collect(&store, &benv, &kont_addr(0));
        assert!(Rc::ptr_eq(&store, &collected));
    }

    #[test]
    fn collection_is_idempotent() {
        let store = store_of(vec![
            (
                var_addr(0),
                vec![FjAVal::Obj {
                    class: ClassId(0),
                    fields: FjBEnvA::empty(),
                }],
            ),
            (
                var_addr(1),
                vec![FjAVal::Obj {
                    class: ClassId(0),
                    fields: FjBEnvA::empty(),
                }],
            ),
            (kont_addr(0), vec![FjAVal::HaltKont]),
        ]);
        let benv = FjBEnvA::empty().extend([(Symbol::from_index(0), var_addr(0))]);
        let once = collect(&store, &benv, &kont_addr(0));
        let twice = collect(&once, &benv, &kont_addr(0));
        assert_eq!(*once, *twice);
    }
}

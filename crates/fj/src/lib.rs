//! A-Normal Featherweight Java and its k-CFA (paper §4).
//!
//! The paper resolves the k-CFA paradox by constructing Shivers's k-CFA
//! *for Java* as literally as possible and observing that the object
//! representation — class name + record whose fields are all born at one
//! time — collapses the environment component that is exponential in the
//! functional setting. This crate provides the whole pipeline:
//!
//! * [`ast`] / [`parse`] — A-Normal Featherweight Java with an
//!   A-normalizing parser;
//! * [`concrete`] — the small-step concrete semantics (Fig 4–6);
//! * [`kcfa`] — the abstract semantics (Fig 7–9) over the same worklist
//!   engine the CPS analyzers use, with the §4.5 tick-policy variants.
//!
//! # Examples
//!
//! ```
//! use cfa_fj::{parse_fj, analyze_fj, FjAnalysisOptions};
//! use cfa_core::engine::EngineLimits;
//!
//! let p = parse_fj(
//!     "class Main extends Object {
//!        Main() { super(); }
//!        Object main() { Object o; o = new Object(); return o; }
//!      }",
//! )?;
//! let result = analyze_fj(&p, FjAnalysisOptions::paper(1), EngineLimits::default());
//! assert!(result.metrics.status.is_complete());
//! # Ok::<(), cfa_fj::parse::FjParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod callgraph;
pub mod concrete;
pub mod datalog;
pub mod gc;
pub mod kcfa;
pub mod naive;
pub mod parse;
pub mod pretty;
pub mod soundness;

pub use ast::{ClassId, FjExpr, FjProgram, FjStmt, FjStmtKind, Method, MethodId, StmtId};
pub use callgraph::FjCallGraph;
pub use concrete::{run_fj, run_fj_traced, FjLimits, FjOutcome, FjRun};
pub use datalog::{analyze_fj_datalog, FjDatalogOptions, FjDatalogResult};
pub use kcfa::{analyze_fj, FjAnalysisOptions, FjMetrics, FjResult, TickPolicy};
pub use naive::{analyze_fj_naive, Count, FjNaiveOptions, FjNaiveResult};
pub use parse::{parse_fj, FjParseError};

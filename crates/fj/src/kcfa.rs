//! k-CFA for A-Normal Featherweight Java (paper Fig 7–9, §4.2–4.5).
//!
//! This is *Shivers's* k-CFA, constructed as literally as possible for
//! Java: abstract states `(stmt, β̂, σ̂, p̂_κ, t̂)` over a single-threaded
//! store, driven by the same worklist engine as the CPS analyzers.
//!
//! Despite being the *same specification* as functional k-CFA, this
//! analysis is polynomial: every address in the range of an object's
//! record shares the object's single birth time (`B̂Env ≅ T̂ime`, §4.4),
//! because `new` closes all fields *simultaneously*. The Figure 1/2
//! experiment measures exactly this collapse.
//!
//! Two tick policies (§4.5):
//!
//! * [`TickPolicy::EveryStatement`] — the paper's literal construction:
//!   time advances at every statement;
//! * [`TickPolicy::OnInvocation`] — the conventional OO k-CFA: contexts
//!   are call sites only, and a method return *restores* the caller's
//!   context.

use crate::ast::{ClassId, FjExpr, FjProgram, FjStmtKind, MethodId, StmtId};
use crate::concrete::{FjAddr as ConcAddr, FjSlot};
use cfa_core::domain::CallString;
use cfa_core::engine::{
    run_fixpoint, AbstractMachine, DeltaFlow, EngineLimits, FixpointResult, Status, TrackedStore,
};
use cfa_core::reference::{RefTrackedStore, ReferenceMachine};
use cfa_core::store::{Flow, FlowSet};
use cfa_syntax::cps::Label;
use cfa_syntax::intern::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// An abstract Featherweight Java address: slot × abstract time.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FjAddrA {
    /// What is stored.
    pub slot: FjSlot,
    /// Abstract allocation time.
    pub time: CallString,
}

/// An abstract binding environment (sorted map behind `Arc`) with its
/// structural hash precomputed at construction — the same cached-hash
/// scheme as `cfa_core::kcfa::BEnvK`, for the same reason: configs,
/// continuations, and object records all embed environments, so their
/// hashes are on the intern hot path.
#[derive(Clone, Debug)]
pub struct FjBEnvA {
    hash: u64,
    items: Arc<Vec<(Symbol, FjAddrA)>>,
}

impl Default for FjBEnvA {
    fn default() -> Self {
        Self::from_items(Vec::new())
    }
}

impl PartialEq for FjBEnvA {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash
            && (Arc::ptr_eq(&self.items, &other.items) || self.items == other.items)
    }
}

impl Eq for FjBEnvA {}

impl PartialOrd for FjBEnvA {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FjBEnvA {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.items.cmp(&other.items)
    }
}

impl std::hash::Hash for FjBEnvA {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl FjBEnvA {
    fn from_items(items: Vec<(Symbol, FjAddrA)>) -> Self {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = cfa_core::fxhash::FxHasher::default();
        items.hash(&mut h);
        FjBEnvA {
            hash: h.finish(),
            items: Arc::new(items),
        }
    }

    /// The empty environment.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Looks up a variable or field.
    pub fn get(&self, v: Symbol) -> Option<&FjAddrA> {
        self.items
            .binary_search_by_key(&v, |(s, _)| *s)
            .ok()
            .map(|i| &self.items[i].1)
    }

    /// Functional extension.
    pub fn extend(&self, bindings: impl IntoIterator<Item = (Symbol, FjAddrA)>) -> FjBEnvA {
        let mut v: Vec<(Symbol, FjAddrA)> = (*self.items).clone();
        for (sym, addr) in bindings {
            match v.binary_search_by_key(&sym, |(s, _)| *s) {
                Ok(i) => v[i].1 = addr,
                Err(i) => v.insert(i, (sym, addr)),
            }
        }
        Self::from_items(v)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over bindings in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &FjAddrA)> {
        self.items.iter().map(|(s, a)| (*s, a))
    }
}

/// An abstract Featherweight Java value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FjAVal {
    /// An abstract object `(C, β̂)`.
    Obj {
        /// The class.
        class: ClassId,
        /// The field record.
        fields: FjBEnvA,
    },
    /// An abstract continuation `(v, s, β̂, p̂_κ)`.
    Kont {
        /// Variable receiving the return value.
        var: Symbol,
        /// Resume statement.
        next: StmtId,
        /// Caller environment.
        benv: FjBEnvA,
        /// Caller continuation pointer.
        kont: FjAddrA,
        /// Caller time — `Some` only under [`TickPolicy::OnInvocation`],
        /// which restores it on return (§4.5). `None` keeps the domain
        /// exactly Fig 7's.
        time: Option<CallString>,
    },
    /// The top-level continuation.
    HaltKont,
}

/// An abstract configuration (store-less state component).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FjConfig {
    /// Current statement.
    pub stmt: StmtId,
    /// Current environment.
    pub benv: FjBEnvA,
    /// Current continuation pointer.
    pub kont: FjAddrA,
    /// Current abstract time.
    pub time: CallString,
}

/// When the abstract clock ticks (§4.5).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TickPolicy {
    /// Tick at every statement (the paper's literal construction, Fig 9).
    EveryStatement,
    /// Tick only at method invocations; returns restore the caller's
    /// context (the conventional OO k-CFA / k-call-site-sensitive
    /// points-to analysis).
    OnInvocation,
}

/// Options for the Featherweight Java analysis.
#[derive(Copy, Clone, Debug)]
pub struct FjAnalysisOptions {
    /// Context depth.
    pub k: usize,
    /// Tick policy.
    pub policy: TickPolicy,
    /// If true, casts filter flow sets by subclassing (a precision
    /// extension; Fig 9 copies unfiltered — the default).
    pub cast_filtering: bool,
}

impl FjAnalysisOptions {
    /// The paper's literal construction with the given `k`.
    pub fn paper(k: usize) -> Self {
        FjAnalysisOptions {
            k,
            policy: TickPolicy::EveryStatement,
            cast_filtering: false,
        }
    }

    /// Conventional OO k-CFA with the given `k`.
    pub fn oo(k: usize) -> Self {
        FjAnalysisOptions {
            k,
            policy: TickPolicy::OnInvocation,
            cast_filtering: false,
        }
    }
}

/// The Featherweight Java abstract machine.
#[derive(Debug)]
pub struct FjMachine<'p> {
    program: &'p FjProgram,
    options: FjAnalysisOptions,
    this_sym: Symbol,
    /// Log of (method, entry environment) pairs; deduplicated when
    /// metrics are built (hot-path set inserts were profile-dominant).
    method_entry_envs: Vec<(MethodId, FjBEnvA)>,
    /// Log of (class, field record) pairs; deduplicated with the above.
    obj_envs: Vec<(ClassId, FjBEnvA)>,
    /// Invocation targets per call statement.
    call_targets: HashMap<StmtId, BTreeSet<MethodId>>,
    /// Classes of values returned from `main`.
    halt_classes: BTreeSet<ClassId>,
}

impl<'p> FjMachine<'p> {
    /// Creates a machine for `program` with `options`.
    pub fn new(program: &'p FjProgram, options: FjAnalysisOptions) -> Self {
        let this_sym = program
            .interner()
            .lookup("this")
            .expect("'this' interned by parser");
        FjMachine {
            program,
            options,
            this_sym,
            method_entry_envs: Vec::new(),
            obj_envs: Vec::new(),
            call_targets: HashMap::new(),
            halt_classes: BTreeSet::new(),
        }
    }

    fn tick(&self, label: Label, time: &CallString, is_invoke: bool) -> CallString {
        match self.options.policy {
            TickPolicy::EveryStatement => time.push(label, self.options.k),
            TickPolicy::OnInvocation if is_invoke => time.push(label, self.options.k),
            TickPolicy::OnInvocation => time.clone(),
        }
    }

    /// Reads a variable split against the configuration's baseline
    /// ([`DeltaFlow`]): the full flow plus what arrived since the last
    /// evaluation.
    fn read_var(
        &self,
        benv: &FjBEnvA,
        v: Symbol,
        store: &mut TrackedStore<'_, FjAddrA, FjAVal>,
    ) -> DeltaFlow {
        match benv.get(v) {
            Some(addr) => store.read_with_delta(addr),
            None => DeltaFlow::empty(),
        }
    }

    /// Joins an id-level flow into the destination variable `lhs`.
    fn write_flow(
        &self,
        benv: &FjBEnvA,
        lhs: Symbol,
        values: &Flow,
        store: &mut TrackedStore<'_, FjAddrA, FjAVal>,
    ) {
        if let Some(addr) = benv.get(lhs) {
            store.join_flow(addr, values);
        }
    }

    /// Joins `values` into the destination variable `lhs`.
    fn write_var(
        &self,
        benv: &FjBEnvA,
        lhs: Symbol,
        values: impl IntoIterator<Item = FjAVal>,
        store: &mut TrackedStore<'_, FjAddrA, FjAVal>,
    ) {
        if let Some(addr) = benv.get(lhs) {
            store.join(addr, values);
        }
    }
}

impl<'p> AbstractMachine for FjMachine<'p> {
    type Config = FjConfig;
    type Addr = FjAddrA;
    type Val = FjAVal;

    fn seed(&mut self, store: &mut TrackedStore<'_, FjAddrA, FjAVal>) {
        let entry = self.program.entry();
        let t0 = CallString::empty();
        let this_addr = FjAddrA {
            slot: FjSlot::Var(self.this_sym),
            time: t0.clone(),
        };
        store.join(
            &this_addr,
            [FjAVal::Obj {
                class: self.program.method(entry).owner,
                fields: FjBEnvA::empty(),
            }],
        );
        let halt_addr = FjAddrA {
            slot: FjSlot::Kont(entry),
            time: t0,
        };
        store.join(&halt_addr, [FjAVal::HaltKont]);
    }

    fn initial(&self) -> FjConfig {
        let entry = self.program.entry();
        let t0 = CallString::empty();
        let main = self.program.method(entry);
        let mut bindings = vec![(
            self.this_sym,
            FjAddrA {
                slot: FjSlot::Var(self.this_sym),
                time: t0.clone(),
            },
        )];
        for &(_, l) in &main.locals {
            bindings.push((
                l,
                FjAddrA {
                    slot: FjSlot::Var(l),
                    time: t0.clone(),
                },
            ));
        }
        FjConfig {
            stmt: self.program.entry_stmt(),
            benv: FjBEnvA::empty().extend(bindings),
            kont: FjAddrA {
                slot: FjSlot::Kont(entry),
                time: t0.clone(),
            },
            time: t0,
        }
    }

    fn step(
        &mut self,
        config: &FjConfig,
        store: &mut TrackedStore<'_, FjAddrA, FjAVal>,
        out: &mut Vec<FjConfig>,
    ) {
        let Some(stmt) = self.program.stmt(config.stmt) else {
            return;
        };
        let label = stmt.label;
        match &stmt.kind {
            FjStmtKind::Assign { lhs, rhs } => {
                let t_new = self.tick(label, &config.time, matches!(rhs, FjExpr::Invoke { .. }));
                let succ = || FjConfig {
                    stmt: self.program.succ(config.stmt),
                    benv: config.benv.clone(),
                    kont: config.kont.clone(),
                    time: t_new.clone(),
                };
                match rhs {
                    FjExpr::Var(v2) => {
                        let d = self.read_var(&config.benv, *v2, store);
                        if store.first_visit() || d.has_new() {
                            self.write_flow(&config.benv, *lhs, &d.new, store);
                        }
                        out.push(succ());
                    }
                    FjExpr::FieldRead { object, field } => {
                        let objs = self.read_var(&config.benv, *object, store);
                        let first = store.first_visit();
                        // Only the new part is ever written: the full
                        // cell contents already reached `lhs` on the
                        // evaluation that first saw each object.
                        let mut result_new_ids: Vec<u32> = Vec::new();
                        for oid in objs.all.iter() {
                            let faddr = match store.val(oid) {
                                FjAVal::Obj { fields, .. } => fields.get(*field).cloned(),
                                _ => None,
                            };
                            if let Some(faddr) = faddr {
                                // A new object contributes its full
                                // field cell; an old object only the
                                // cell's growth.
                                let cell = store.read_with_delta(&faddr);
                                if objs.is_new(oid) {
                                    result_new_ids.extend(cell.all.iter());
                                } else {
                                    result_new_ids.extend(cell.new.iter());
                                }
                            }
                        }
                        if first || !result_new_ids.is_empty() {
                            self.write_flow(
                                &config.benv,
                                *lhs,
                                &Flow::from_ids(result_new_ids),
                                store,
                            );
                        }
                        out.push(succ());
                    }
                    FjExpr::Invoke {
                        receiver,
                        method,
                        args,
                    } => {
                        let receivers = self.read_var(&config.benv, *receiver, store);
                        let arg_sets: Vec<DeltaFlow> = args
                            .iter()
                            .map(|&a| self.read_var(&config.benv, a, store))
                            .collect();
                        for rid in receivers.all.iter() {
                            let FjAVal::Obj { class, .. } = store.val(rid) else {
                                continue;
                            };
                            let Some(mid) = self.program.lookup_method(*class, *method) else {
                                continue;
                            };
                            self.call_targets
                                .entry(config.stmt)
                                .or_default()
                                .insert(mid);
                            let target = self.program.method(mid);
                            if target.params.len() != arg_sets.len() {
                                continue;
                            }
                            if !receivers.is_new(rid) {
                                // Semi-naive: this receiver was fully
                                // invoked on a previous evaluation; the
                                // continuation and callee environment
                                // exist, only argument growth is left.
                                for ((_, p), values) in target.params.iter().zip(&arg_sets) {
                                    if values.has_new() {
                                        store.join_flow(
                                            &FjAddrA {
                                                slot: FjSlot::Var(*p),
                                                time: t_new.clone(),
                                            },
                                            &values.new,
                                        );
                                    }
                                }
                                store.note_delta_apply();
                                continue;
                            }
                            let kont_val = FjAVal::Kont {
                                var: *lhs,
                                next: self.program.succ(config.stmt),
                                benv: config.benv.clone(),
                                kont: config.kont.clone(),
                                time: match self.options.policy {
                                    TickPolicy::OnInvocation => Some(config.time.clone()),
                                    TickPolicy::EveryStatement => None,
                                },
                            };
                            let kont_addr = FjAddrA {
                                slot: FjSlot::Kont(mid),
                                time: t_new.clone(),
                            };
                            store.join(&kont_addr, [kont_val]);

                            // β̂′ = [this ↦ β̂(v₀)], then params and locals.
                            let Some(recv_addr) = config.benv.get(*receiver) else {
                                continue;
                            };
                            let mut bindings = vec![(self.this_sym, recv_addr.clone())];
                            for ((_, p), values) in target.params.iter().zip(&arg_sets) {
                                let a = FjAddrA {
                                    slot: FjSlot::Var(*p),
                                    time: t_new.clone(),
                                };
                                store.join_flow(&a, &values.all);
                                bindings.push((*p, a));
                            }
                            for &(_, l) in &target.locals {
                                bindings.push((
                                    l,
                                    FjAddrA {
                                        slot: FjSlot::Var(l),
                                        time: t_new.clone(),
                                    },
                                ));
                            }
                            let callee = FjBEnvA::empty().extend(bindings);
                            self.method_entry_envs.push((mid, callee.clone()));
                            out.push(FjConfig {
                                stmt: StmtId {
                                    method: mid,
                                    index: 0,
                                },
                                benv: callee,
                                kont: kont_addr,
                                time: t_new.clone(),
                            });
                        }
                    }
                    FjExpr::New { class, args } => {
                        let Some(cid) = self.program.class_by_name(*class) else {
                            out.push(succ());
                            return;
                        };
                        let field_list = self.program.all_fields(cid);
                        if field_list.len() != args.len() {
                            out.push(succ());
                            return;
                        }
                        if store.first_visit() {
                            let mut record = Vec::with_capacity(field_list.len());
                            for ((_, f), &arg) in field_list.iter().zip(args) {
                                let values = self.read_var(&config.benv, arg, store);
                                let a = FjAddrA {
                                    slot: FjSlot::Var(*f),
                                    time: t_new.clone(),
                                };
                                store.join_flow(&a, &values.all);
                                record.push((*f, a));
                            }
                            let fields = FjBEnvA::empty().extend(record);
                            self.obj_envs.push((cid, fields.clone()));
                            self.write_var(
                                &config.benv,
                                *lhs,
                                [FjAVal::Obj { class: cid, fields }],
                                store,
                            );
                        } else {
                            // Semi-naive: the object record and its
                            // write to `lhs` are deterministic and
                            // already in the store; only the argument
                            // growth flows into the field cells.
                            for ((_, f), &arg) in field_list.iter().zip(args) {
                                let values = self.read_var(&config.benv, arg, store);
                                if values.has_new() {
                                    store.join_flow(
                                        &FjAddrA {
                                            slot: FjSlot::Var(*f),
                                            time: t_new.clone(),
                                        },
                                        &values.new,
                                    );
                                }
                            }
                            store.note_delta_apply();
                        }
                        out.push(succ());
                    }
                    FjExpr::Cast { class, var } => {
                        let d = self.read_var(&config.benv, *var, store);
                        let first = store.first_visit();
                        let kept = if self.options.cast_filtering {
                            match self.program.class_by_name(*class) {
                                Some(target) => Flow::from_ids(
                                    d.new
                                        .iter()
                                        .filter(|&id| match store.val(id) {
                                            FjAVal::Obj { class: c, .. } => {
                                                self.program.is_subclass(*c, target)
                                            }
                                            _ => true,
                                        })
                                        .collect(),
                                ),
                                None => d.new,
                            }
                        } else {
                            d.new
                        };
                        if first || !kept.is_empty() {
                            self.write_flow(&config.benv, *lhs, &kept, store);
                        }
                        out.push(succ());
                    }
                }
            }
            FjStmtKind::Return { var } => {
                let d = self.read_var(&config.benv, *var, store);
                let konts = store.read_with_delta(&config.kont);
                for kid in konts.all.iter() {
                    let is_new_k = konts.is_new(kid);
                    match store.val(kid).clone() {
                        FjAVal::HaltKont => {
                            // A new halt continuation records the full
                            // return flow; a re-observed one only the
                            // growth.
                            let src = if is_new_k { &d.all } else { &d.new };
                            for vid in src.iter() {
                                if let FjAVal::Obj { class, .. } = store.val(vid) {
                                    self.halt_classes.insert(*class);
                                }
                            }
                        }
                        FjAVal::Kont {
                            var: v2,
                            next,
                            benv,
                            kont,
                            time,
                        } => {
                            if !is_new_k {
                                // Semi-naive: the resume configuration
                                // was pushed when this continuation was
                                // first observed; only the return-value
                                // growth is left to deliver.
                                if d.has_new() {
                                    if let Some(addr) = benv.get(v2) {
                                        store.join_flow(addr, &d.new);
                                    }
                                }
                                store.note_delta_apply();
                                continue;
                            }
                            if let Some(addr) = benv.get(v2) {
                                store.join_flow(addr, &d.all);
                            }
                            let t_new = match (self.options.policy, &time) {
                                (TickPolicy::OnInvocation, Some(t)) => t.clone(),
                                _ => self.tick(label, &config.time, false),
                            };
                            out.push(FjConfig {
                                stmt: next,
                                benv,
                                kont,
                                time: t_new,
                            });
                        }
                        FjAVal::Obj { .. } => {}
                    }
                }
            }
        }
    }
}

impl<'p> cfa_core::parallel::ParallelMachine for FjMachine<'p> {
    fn fork(&self) -> Self {
        FjMachine::new(self.program, self.options)
    }

    fn absorb(&mut self, worker: Self) {
        self.method_entry_envs.extend(worker.method_entry_envs);
        self.obj_envs.extend(worker.obj_envs);
        for (stmt, targets) in worker.call_targets {
            self.call_targets.entry(stmt).or_default().extend(targets);
        }
        self.halt_classes.extend(worker.halt_classes);
    }
}

// ---------------------------------------------------------------------
// Reference (pre-interning) semantics — the differential oracle
// ---------------------------------------------------------------------

impl<'p> FjMachine<'p> {
    /// The original value-level variable read, kept for
    /// [`ReferenceMachine`].
    fn read_var_ref(
        &self,
        benv: &FjBEnvA,
        v: Symbol,
        store: &mut RefTrackedStore<'_, FjAddrA, FjAVal>,
    ) -> FlowSet<FjAVal> {
        match benv.get(v) {
            Some(addr) => store.read(&addr.clone()),
            None => FlowSet::new(),
        }
    }

    /// The original value-level variable write, kept for
    /// [`ReferenceMachine`].
    fn write_var_ref(
        &self,
        benv: &FjBEnvA,
        lhs: Symbol,
        values: impl IntoIterator<Item = FjAVal>,
        store: &mut RefTrackedStore<'_, FjAddrA, FjAVal>,
    ) {
        if let Some(addr) = benv.get(lhs) {
            store.join(addr.clone(), values);
        }
    }
}

impl<'p> ReferenceMachine for FjMachine<'p> {
    type Config = FjConfig;
    type Addr = FjAddrA;
    type Val = FjAVal;

    fn seed(&mut self, store: &mut RefTrackedStore<'_, FjAddrA, FjAVal>) {
        let entry = self.program.entry();
        let t0 = CallString::empty();
        let this_addr = FjAddrA {
            slot: FjSlot::Var(self.this_sym),
            time: t0.clone(),
        };
        store.join(
            this_addr,
            [FjAVal::Obj {
                class: self.program.method(entry).owner,
                fields: FjBEnvA::empty(),
            }],
        );
        let halt_addr = FjAddrA {
            slot: FjSlot::Kont(entry),
            time: t0,
        };
        store.join(halt_addr, [FjAVal::HaltKont]);
    }

    fn initial(&self) -> FjConfig {
        AbstractMachine::initial(self)
    }

    fn step(
        &mut self,
        config: &FjConfig,
        store: &mut RefTrackedStore<'_, FjAddrA, FjAVal>,
        out: &mut Vec<FjConfig>,
    ) {
        let Some(stmt) = self.program.stmt(config.stmt) else {
            return;
        };
        let label = stmt.label;
        match &stmt.kind {
            FjStmtKind::Assign { lhs, rhs } => {
                let t_new = self.tick(label, &config.time, matches!(rhs, FjExpr::Invoke { .. }));
                let succ = || FjConfig {
                    stmt: self.program.succ(config.stmt),
                    benv: config.benv.clone(),
                    kont: config.kont.clone(),
                    time: t_new.clone(),
                };
                match rhs {
                    FjExpr::Var(v2) => {
                        let d = self.read_var_ref(&config.benv, *v2, store);
                        self.write_var_ref(&config.benv, *lhs, d, store);
                        out.push(succ());
                    }
                    FjExpr::FieldRead { object, field } => {
                        let objs = self.read_var_ref(&config.benv, *object, store);
                        let mut result = FlowSet::new();
                        for o in &objs {
                            if let FjAVal::Obj { fields, .. } = o {
                                if let Some(faddr) = fields.get(*field) {
                                    result.extend(store.read(&faddr.clone()));
                                }
                            }
                        }
                        self.write_var_ref(&config.benv, *lhs, result, store);
                        out.push(succ());
                    }
                    FjExpr::Invoke {
                        receiver,
                        method,
                        args,
                    } => {
                        let receivers = self.read_var_ref(&config.benv, *receiver, store);
                        let arg_sets: Vec<FlowSet<FjAVal>> = args
                            .iter()
                            .map(|&a| self.read_var_ref(&config.benv, a, store))
                            .collect();
                        for r in &receivers {
                            let FjAVal::Obj { class, .. } = r else {
                                continue;
                            };
                            let Some(mid) = self.program.lookup_method(*class, *method) else {
                                continue;
                            };
                            self.call_targets
                                .entry(config.stmt)
                                .or_default()
                                .insert(mid);
                            let target = self.program.method(mid);
                            if target.params.len() != arg_sets.len() {
                                continue;
                            }
                            let kont_val = FjAVal::Kont {
                                var: *lhs,
                                next: self.program.succ(config.stmt),
                                benv: config.benv.clone(),
                                kont: config.kont.clone(),
                                time: match self.options.policy {
                                    TickPolicy::OnInvocation => Some(config.time.clone()),
                                    TickPolicy::EveryStatement => None,
                                },
                            };
                            let kont_addr = FjAddrA {
                                slot: FjSlot::Kont(mid),
                                time: t_new.clone(),
                            };
                            store.join(kont_addr.clone(), [kont_val]);
                            let Some(recv_addr) = config.benv.get(*receiver) else {
                                continue;
                            };
                            let mut bindings = vec![(self.this_sym, recv_addr.clone())];
                            for ((_, p), values) in target.params.iter().zip(&arg_sets) {
                                let a = FjAddrA {
                                    slot: FjSlot::Var(*p),
                                    time: t_new.clone(),
                                };
                                store.join(a.clone(), values.iter().cloned());
                                bindings.push((*p, a));
                            }
                            for &(_, l) in &target.locals {
                                bindings.push((
                                    l,
                                    FjAddrA {
                                        slot: FjSlot::Var(l),
                                        time: t_new.clone(),
                                    },
                                ));
                            }
                            let callee = FjBEnvA::empty().extend(bindings);
                            self.method_entry_envs.push((mid, callee.clone()));
                            out.push(FjConfig {
                                stmt: StmtId {
                                    method: mid,
                                    index: 0,
                                },
                                benv: callee,
                                kont: kont_addr,
                                time: t_new.clone(),
                            });
                        }
                    }
                    FjExpr::New { class, args } => {
                        let Some(cid) = self.program.class_by_name(*class) else {
                            out.push(succ());
                            return;
                        };
                        let field_list = self.program.all_fields(cid);
                        if field_list.len() != args.len() {
                            out.push(succ());
                            return;
                        }
                        let mut record = Vec::with_capacity(field_list.len());
                        for ((_, f), &arg) in field_list.iter().zip(args) {
                            let values = self.read_var_ref(&config.benv, arg, store);
                            let a = FjAddrA {
                                slot: FjSlot::Var(*f),
                                time: t_new.clone(),
                            };
                            store.join(a.clone(), values);
                            record.push((*f, a));
                        }
                        let fields = FjBEnvA::empty().extend(record);
                        self.obj_envs.push((cid, fields.clone()));
                        self.write_var_ref(
                            &config.benv,
                            *lhs,
                            [FjAVal::Obj { class: cid, fields }],
                            store,
                        );
                        out.push(succ());
                    }
                    FjExpr::Cast { class, var } => {
                        let mut d = self.read_var_ref(&config.benv, *var, store);
                        if self.options.cast_filtering {
                            if let Some(target) = self.program.class_by_name(*class) {
                                d.retain(|v| match v {
                                    FjAVal::Obj { class: c, .. } => {
                                        self.program.is_subclass(*c, target)
                                    }
                                    _ => true,
                                });
                            }
                        }
                        self.write_var_ref(&config.benv, *lhs, d, store);
                        out.push(succ());
                    }
                }
            }
            FjStmtKind::Return { var } => {
                let d = self.read_var_ref(&config.benv, *var, store);
                let konts = store.read(&config.kont);
                for k in &konts {
                    match k {
                        FjAVal::HaltKont => {
                            for v in &d {
                                if let FjAVal::Obj { class, .. } = v {
                                    self.halt_classes.insert(*class);
                                }
                            }
                        }
                        FjAVal::Kont {
                            var: v2,
                            next,
                            benv,
                            kont,
                            time,
                        } => {
                            if let Some(addr) = benv.get(*v2) {
                                store.join(addr.clone(), d.iter().cloned());
                            }
                            let t_new = match (self.options.policy, time) {
                                (TickPolicy::OnInvocation, Some(t)) => t.clone(),
                                _ => self.tick(label, &config.time, false),
                            };
                            out.push(FjConfig {
                                stmt: *next,
                                benv: benv.clone(),
                                kont: kont.clone(),
                                time: t_new,
                            });
                        }
                        FjAVal::Obj { .. } => {}
                    }
                }
            }
        }
    }
}

/// Summary metrics for a Featherweight Java analysis run.
#[derive(Clone, Debug)]
pub struct FjMetrics {
    /// Analysis name.
    pub analysis: String,
    /// Completion status.
    pub status: Status,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Configuration evaluations.
    pub iterations: u64,
    /// Distinct configurations.
    pub config_count: usize,
    /// Bound abstract addresses.
    pub store_entries: usize,
    /// Total `(address, value)` facts.
    pub store_facts: usize,
    /// Distinct entry environments per method (Figure 1's env count).
    pub method_entry_env_counts: BTreeMap<MethodId, usize>,
    /// Distinct abstract objects per class.
    pub obj_env_counts: BTreeMap<ClassId, usize>,
    /// Call targets per invocation statement.
    pub call_targets: BTreeMap<StmtId, BTreeSet<MethodId>>,
    /// Distinct abstract times across all reached configurations. In the
    /// OO semantics `B̂Env ≅ T̂ime` (§4.4), so this is the OO-side
    /// abstract-environment count the Figure 1 experiment reports
    /// (`O(N+M)` for the paradox program).
    pub time_count: usize,
    /// Invocation sites with exactly one target (monomorphic —
    /// devirtualizable, the OO analog of the inlining metric).
    pub monomorphic_calls: usize,
    /// Reachable invocation sites.
    pub reachable_calls: usize,
    /// Classes of values returned from `main`.
    pub halt_classes: BTreeSet<ClassId>,
}

impl FjMetrics {
    /// Total abstract environments across all methods.
    pub fn total_method_envs(&self) -> usize {
        self.method_entry_env_counts.values().sum()
    }

    /// Entry-environment count for one method.
    pub fn method_env_count(&self, m: MethodId) -> usize {
        self.method_entry_env_counts.get(&m).copied().unwrap_or(0)
    }
}

/// The full result of a Featherweight Java k-CFA run.
#[derive(Debug)]
pub struct FjResult {
    /// Raw fixpoint data.
    pub fixpoint: FixpointResult<FjConfig, FjAddrA, FjAVal>,
    /// Summary metrics.
    pub metrics: FjMetrics,
}

/// Runs k-CFA for Featherweight Java.
pub fn analyze_fj(
    program: &FjProgram,
    options: FjAnalysisOptions,
    limits: EngineLimits,
) -> FjResult {
    let mut machine = FjMachine::new(program, options);
    let fixpoint = run_fixpoint(&mut machine, limits);
    let reachable_calls = machine.call_targets.len();
    let monomorphic_calls = machine
        .call_targets
        .values()
        .filter(|targets| targets.len() == 1)
        .count();
    let time_count = {
        let mut times: BTreeSet<&CallString> = BTreeSet::new();
        for cfg in &fixpoint.configs {
            times.insert(&cfg.time);
        }
        times.len()
    };
    let metrics = FjMetrics {
        analysis: format!(
            "FJ k-CFA(k={}, {:?}{})",
            options.k,
            options.policy,
            if options.cast_filtering {
                ", cast-filtered"
            } else {
                ""
            }
        ),
        status: fixpoint.status.clone(),
        elapsed: fixpoint.elapsed,
        iterations: fixpoint.iterations,
        config_count: fixpoint.config_count(),
        store_entries: fixpoint.store.len(),
        store_facts: fixpoint.store.fact_count(),
        method_entry_env_counts: cfa_core::results::distinct_counts(&machine.method_entry_envs),
        obj_env_counts: cfa_core::results::distinct_counts(&machine.obj_envs),
        call_targets: machine.call_targets.into_iter().collect(),
        time_count,
        monomorphic_calls,
        reachable_calls,
        halt_classes: machine.halt_classes,
    };
    FjResult { fixpoint, metrics }
}

// Re-export for soundness checking against the concrete machine.
pub use crate::concrete::FjSlot as Slot;

/// Abstraction map on concrete addresses (for soundness tests).
pub fn alpha_addr(addr: &ConcAddr, times: &cfa_concrete::ctx::CtxTable, k: usize) -> FjAddrA {
    FjAddrA {
        slot: addr.slot,
        time: CallString::from_labels(times.first_k(addr.ctx, k), k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fj;

    fn analyze(src: &str, k: usize) -> FjResult {
        let p = parse_fj(src).unwrap();
        analyze_fj(&p, FjAnalysisOptions::paper(k), EngineLimits::default())
    }

    const DISPATCH: &str = "
        class A extends Object {
          A() { super(); }
          Object who() { Object o; o = new A(); return o; }
        }
        class B extends A {
          B() { super(); }
          Object who() { Object o; o = new B(); return o; }
        }
        class Main extends Object {
          Main() { super(); }
          Object main() {
            A x;
            x = new B();
            return x.who();
          }
        }";

    #[test]
    fn analyzes_minimal_program() {
        let r = analyze(
            "class Main extends Object {
               Main() { super(); }
               Object main() { Object o; o = new Object(); return o; }
             }",
            1,
        );
        assert!(r.metrics.status.is_complete());
        assert_eq!(r.metrics.halt_classes.len(), 1);
    }

    #[test]
    fn dispatch_resolves_precisely() {
        let r = analyze(DISPATCH, 1);
        // x can only be a B, so x.who() has exactly one target.
        assert_eq!(r.metrics.monomorphic_calls, r.metrics.reachable_calls);
        assert!(r.metrics.status.is_complete());
    }

    #[test]
    fn polymorphic_receiver_gets_two_targets() {
        let r = analyze(
            "class A extends Object {
               A() { super(); }
               Object who() { Object o; o = new A(); return o; }
             }
             class B extends A {
               B() { super(); }
               Object who() { Object o; o = new B(); return o; }
             }
             class Main extends Object {
               Main() { super(); }
               A pick(A one, A two) { return two; }
               Object main() {
                 A x;
                 x = this.pick(new A(), new B());
                 A y;
                 y = this.pick(new B(), new A());
                 return x.who();
               }
             }",
            0,
        );
        // Under 0CFA both call sites merge into `two`, so x.who() is
        // polymorphic.
        let max_targets = r
            .metrics
            .call_targets
            .values()
            .map(BTreeSet::len)
            .max()
            .unwrap();
        assert_eq!(max_targets, 2);
    }

    #[test]
    fn field_flow_is_tracked() {
        let p = parse_fj(
            "class Box extends Object {
               Object item;
               Box(Object item0) { super(); this.item = item0; }
               Object get() { return this.item; }
             }
             class Marker extends Object { Marker() { super(); } }
             class Main extends Object {
               Main() { super(); }
               Object main() {
                 Box b;
                 b = new Box(new Marker());
                 return b.get();
               }
             }",
        )
        .unwrap();
        let r = analyze_fj(&p, FjAnalysisOptions::paper(1), EngineLimits::default());
        let names: Vec<&str> = r
            .metrics
            .halt_classes
            .iter()
            .map(|&c| p.name(p.class(c).name))
            .collect();
        assert_eq!(names, vec!["Marker"]);
    }

    #[test]
    fn recursion_terminates() {
        let r = analyze(
            "class Main extends Object {
               Main() { super(); }
               Object main() { return this.main(); }
             }",
            1,
        );
        assert!(r.metrics.status.is_complete());
        // main never returns a value, so nothing reaches halt.
        assert!(r.metrics.halt_classes.is_empty());
    }

    #[test]
    fn oo_policy_restores_caller_context() {
        let p = parse_fj(DISPATCH).unwrap();
        let paper = analyze_fj(&p, FjAnalysisOptions::paper(1), EngineLimits::default());
        let oo = analyze_fj(&p, FjAnalysisOptions::oo(1), EngineLimits::default());
        assert!(paper.metrics.status.is_complete());
        assert!(oo.metrics.status.is_complete());
        // Both resolve the single dispatch site precisely.
        assert_eq!(oo.metrics.monomorphic_calls, oo.metrics.reachable_calls);
    }

    #[test]
    fn cast_filtering_prunes_impossible_classes() {
        let src = "
            class A extends Object {
              A() { super(); }
            }
            class B extends Object {
              B() { super(); }
            }
            class Main extends Object {
              Main() { super(); }
              Object pick(Object one, Object two) { return two; }
              Object main() {
                Object x;
                x = this.pick(new A(), new B());
                Object x2;
                x2 = this.pick(new B(), new A());
                B y;
                y = (B) x;
                return y;
              }
            }";
        let p = parse_fj(src).unwrap();
        let unfiltered = analyze_fj(&p, FjAnalysisOptions::paper(0), EngineLimits::default());
        let filtered = analyze_fj(
            &p,
            FjAnalysisOptions {
                cast_filtering: true,
                ..FjAnalysisOptions::paper(0)
            },
            EngineLimits::default(),
        );
        assert!(unfiltered.metrics.halt_classes.len() >= 2);
        assert_eq!(filtered.metrics.halt_classes.len(), 1);
    }

    #[test]
    fn store_and_config_counts_reported() {
        let r = analyze(DISPATCH, 1);
        assert!(r.metrics.store_entries > 0);
        assert!(r.metrics.config_count > 0);
        assert!(r.metrics.store_facts >= r.metrics.store_entries);
    }

    #[test]
    fn method_env_counts_populate() {
        let r = analyze(DISPATCH, 1);
        assert!(r.metrics.total_method_envs() >= 1);
    }
}

//! Tuple storage.
//!
//! A [`Database`] holds one tuple set per declared relation. Tuples are
//! stored in insertion order (which the semi-naive evaluator exploits:
//! "the delta" is simply a suffix of each relation's tuple vector), with a
//! hash set for deduplication and per-column postings lists for joins.

use crate::pool::Const;
use crate::schema::{RelId, Schema};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// One relation's tuples plus indexes.
#[derive(Clone, Debug, Default)]
struct RelationData {
    /// Tuples in insertion order. `Rc` so the dedup set shares storage.
    tuples: Vec<Rc<[Const]>>,
    /// Deduplication set.
    set: HashSet<Rc<[Const]>>,
    /// `index[col][constant]` = positions of tuples with `constant` at `col`.
    index: Vec<HashMap<Const, Vec<u32>>>,
}

impl RelationData {
    fn with_arity(arity: usize) -> Self {
        RelationData {
            tuples: Vec::new(),
            set: HashSet::new(),
            index: vec![HashMap::new(); arity],
        }
    }

    fn insert(&mut self, tuple: Rc<[Const]>) -> bool {
        if self.set.contains(&tuple) {
            return false;
        }
        let pos = self.tuples.len() as u32;
        for (col, &c) in tuple.iter().enumerate() {
            self.index[col].entry(c).or_default().push(pos);
        }
        self.set.insert(Rc::clone(&tuple));
        self.tuples.push(tuple);
        true
    }
}

/// A set of facts per relation, matching a [`Schema`].
///
/// # Examples
///
/// ```
/// use cfa_datalog::pool::ConstPool;
/// use cfa_datalog::schema::Schema;
/// use cfa_datalog::db::Database;
///
/// let mut schema = Schema::new();
/// let edge = schema.declare("edge", 2);
/// let mut pool = ConstPool::new();
/// let (a, b) = (pool.intern("a"), pool.intern("b"));
/// let mut db = Database::new(&schema);
/// assert!(db.insert(edge, &[a, b]));
/// assert!(!db.insert(edge, &[a, b])); // duplicate
/// assert_eq!(db.count(edge), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Database {
    rels: Vec<RelationData>,
    arities: Vec<usize>,
}

impl Database {
    /// An empty database for `schema`.
    pub fn new(schema: &Schema) -> Self {
        Database {
            rels: schema
                .rel_ids()
                .map(|r| RelationData::with_arity(schema.arity(r)))
                .collect(),
            arities: schema.rel_ids().map(|r| schema.arity(r)).collect(),
        }
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's length differs from the relation's arity.
    pub fn insert(&mut self, rel: RelId, tuple: &[Const]) -> bool {
        assert_eq!(
            tuple.len(),
            self.arities[rel.index()],
            "tuple arity mismatch for relation index {}",
            rel.index()
        );
        self.rels[rel.index()].insert(Rc::from(tuple))
    }

    /// Number of tuples in `rel`.
    pub fn count(&self, rel: RelId) -> usize {
        self.rels[rel.index()].tuples.len()
    }

    /// Total tuples across all relations.
    pub fn total_facts(&self) -> usize {
        self.rels.iter().map(|r| r.tuples.len()).sum()
    }

    /// Whether `rel` contains `tuple`.
    pub fn contains(&self, rel: RelId, tuple: &[Const]) -> bool {
        self.rels[rel.index()].set.contains(tuple)
    }

    /// Iterates over `rel`'s tuples in insertion order.
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &[Const]> {
        self.rels[rel.index()].tuples.iter().map(|t| &**t)
    }

    /// Tuple at `pos` in `rel`.
    pub(crate) fn tuple_at(&self, rel: RelId, pos: u32) -> &[Const] {
        &self.rels[rel.index()].tuples[pos as usize]
    }

    /// Positions of tuples in `rel` whose column `col` equals `value`, or
    /// an empty slice.
    pub(crate) fn postings(&self, rel: RelId, col: usize, value: Const) -> &[u32] {
        self.rels[rel.index()].index[col]
            .get(&value)
            .map(|v| &v[..])
            .unwrap_or(&[])
    }

    /// A snapshot of per-relation sizes, used to delimit deltas.
    pub(crate) fn sizes(&self) -> Vec<usize> {
        self.rels.iter().map(|r| r.tuples.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ConstPool;

    fn setup() -> (Schema, RelId, ConstPool, Database) {
        let mut schema = Schema::new();
        let edge = schema.declare("edge", 2);
        let pool = ConstPool::new();
        let db = Database::new(&schema);
        (schema, edge, pool, db)
    }

    #[test]
    fn insert_dedups() {
        let (_, edge, mut pool, mut db) = setup();
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert!(db.insert(edge, &[a, b]));
        assert!(!db.insert(edge, &[a, b]));
        assert!(db.insert(edge, &[b, a]));
        assert_eq!(db.count(edge), 2);
        assert_eq!(db.total_facts(), 2);
    }

    #[test]
    fn contains_reflects_inserts() {
        let (_, edge, mut pool, mut db) = setup();
        let a = pool.intern("a");
        let b = pool.intern("b");
        db.insert(edge, &[a, b]);
        assert!(db.contains(edge, &[a, b]));
        assert!(!db.contains(edge, &[b, a]));
    }

    #[test]
    fn postings_index_tracks_columns() {
        let (_, edge, mut pool, mut db) = setup();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let c = pool.intern("c");
        db.insert(edge, &[a, b]);
        db.insert(edge, &[a, c]);
        db.insert(edge, &[b, c]);
        assert_eq!(db.postings(edge, 0, a).len(), 2);
        assert_eq!(db.postings(edge, 1, c).len(), 2);
        assert_eq!(db.postings(edge, 0, c).len(), 0);
    }

    #[test]
    fn tuples_iterate_in_insertion_order() {
        let (_, edge, mut pool, mut db) = setup();
        let a = pool.intern("a");
        let b = pool.intern("b");
        db.insert(edge, &[b, a]);
        db.insert(edge, &[a, b]);
        let all: Vec<Vec<Const>> = db.tuples(edge).map(|t| t.to_vec()).collect();
        assert_eq!(all, vec![vec![b, a], vec![a, b]]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn insert_wrong_arity_panics() {
        let (_, edge, mut pool, mut db) = setup();
        let a = pool.intern("a");
        db.insert(edge, &[a]);
    }
}

//! Rules: heads, bodies, and validation.
//!
//! Rules are authored with named variables ([`Term::var`]) and compiled
//! against a [`Schema`] into an internal form with dense variable indices.
//! Compilation enforces the two classic well-formedness conditions:
//!
//! * **arity** — every atom has exactly as many terms as its relation's
//!   declared arity;
//! * **range restriction** — every head variable also occurs in the body
//!   (so the rule can only derive finitely many facts).

use crate::pool::Const;
use crate::schema::{RelId, Schema};
use std::collections::HashMap;
use std::fmt;

/// A term in an atom: a named variable or a constant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A rule-scoped variable, identified by name.
    Var(String),
    /// An interned constant.
    Const(Const),
}

impl Term {
    /// A variable term named `name`.
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_owned())
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Term {
        Term::Const(c)
    }
}

/// An atom `rel(t₁, …, tₙ)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// The relation.
    pub rel: RelId,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(rel: RelId, terms: Vec<Term>) -> Atom {
        Atom { rel, terms }
    }
}

/// Errors detected while compiling a rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuleError {
    /// An atom's term count does not match the relation's declared arity.
    ArityMismatch {
        /// The offending relation's name.
        relation: String,
        /// Declared arity.
        declared: usize,
        /// Number of terms supplied.
        supplied: usize,
    },
    /// A head variable does not occur in the body.
    UnboundHeadVar {
        /// The variable's name.
        variable: String,
    },
    /// The rule has an empty body (facts go in the database, not rules).
    EmptyBody,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::ArityMismatch { relation, declared, supplied } => write!(
                f,
                "relation `{relation}` declared with arity {declared} but used with {supplied} terms"
            ),
            RuleError::UnboundHeadVar { variable } => {
                write!(f, "head variable `{variable}` does not occur in the rule body")
            }
            RuleError::EmptyBody => write!(f, "rule body is empty"),
        }
    }
}

impl std::error::Error for RuleError {}

/// A compiled term: variables are dense per-rule indices.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum CTerm {
    Var(u32),
    Const(Const),
}

/// A compiled atom.
#[derive(Clone, Debug)]
pub(crate) struct CAtom {
    pub rel: RelId,
    pub terms: Vec<CTerm>,
}

/// A compiled rule, ready for evaluation.
#[derive(Clone, Debug)]
pub struct Rule {
    pub(crate) head: CAtom,
    pub(crate) body: Vec<CAtom>,
    pub(crate) var_count: usize,
    /// Original variable names (debugging / display).
    pub(crate) var_names: Vec<String>,
}

impl Rule {
    /// Compiles `head :- body` against `schema`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuleError`] on arity mismatch, an unbound head
    /// variable, or an empty body.
    pub fn compile(schema: &Schema, head: Atom, body: Vec<Atom>) -> Result<Rule, RuleError> {
        if body.is_empty() {
            return Err(RuleError::EmptyBody);
        }
        let mut vars: HashMap<String, u32> = HashMap::new();
        let mut var_names: Vec<String> = Vec::new();
        let mut compile_atom = |atom: &Atom, bind: bool| -> Result<CAtom, RuleError> {
            let declared = schema.arity(atom.rel);
            if atom.terms.len() != declared {
                return Err(RuleError::ArityMismatch {
                    relation: schema.name(atom.rel).to_owned(),
                    declared,
                    supplied: atom.terms.len(),
                });
            }
            let mut terms = Vec::with_capacity(atom.terms.len());
            for t in &atom.terms {
                match t {
                    Term::Const(c) => terms.push(CTerm::Const(*c)),
                    Term::Var(name) => match vars.get(name) {
                        Some(&i) => terms.push(CTerm::Var(i)),
                        None if bind => {
                            let i = vars.len() as u32;
                            vars.insert(name.clone(), i);
                            var_names.push(name.clone());
                            terms.push(CTerm::Var(i));
                        }
                        None => {
                            return Err(RuleError::UnboundHeadVar {
                                variable: name.clone(),
                            })
                        }
                    },
                }
            }
            Ok(CAtom {
                rel: atom.rel,
                terms,
            })
        };
        let cbody: Vec<CAtom> = body
            .iter()
            .map(|a| compile_atom(a, true))
            .collect::<Result<_, _>>()?;
        let chead = compile_atom(&head, false)?;
        Ok(Rule {
            head: chead,
            body: cbody,
            var_count: vars.len(),
            var_names,
        })
    }

    /// The head relation.
    pub fn head_rel(&self) -> RelId {
        self.head.rel
    }

    /// The body relations, in order.
    pub fn body_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.body.iter().map(|a| a.rel)
    }

    /// Renders the rule with the schema's relation names.
    pub fn display(&self, schema: &Schema) -> String {
        let atom = |a: &CAtom| {
            let terms: Vec<String> = a
                .terms
                .iter()
                .map(|t| match t {
                    CTerm::Var(i) => self.var_names[*i as usize].clone(),
                    CTerm::Const(c) => format!("#{}", c.index()),
                })
                .collect();
            format!("{}({})", schema.name(a.rel), terms.join(", "))
        };
        let body: Vec<String> = self.body.iter().map(&atom).collect();
        format!("{} :- {}.", atom(&self.head), body.join(", "))
    }
}

#[cfg(test)]
impl Const {
    /// Builds a constant directly from an index — test-only helper.
    pub(crate) fn from_test(i: u32) -> Const {
        // Safety of meaning: tests pair these with pools that interned at
        // least `i + 1` names, or never resolve names at all.
        let mut pool = crate::pool::ConstPool::new();
        let mut last = pool.intern("0");
        for n in 1..=i {
            last = pool.intern(&n.to_string());
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rel_schema() -> (Schema, RelId, RelId) {
        let mut s = Schema::new();
        let edge = s.declare("edge", 2);
        let path = s.declare("path", 2);
        (s, edge, path)
    }

    #[test]
    fn compiles_transitive_rule() {
        let (s, edge, path) = two_rel_schema();
        let r = Rule::compile(
            &s,
            Atom::new(path, vec![Term::var("x"), Term::var("z")]),
            vec![
                Atom::new(path, vec![Term::var("x"), Term::var("y")]),
                Atom::new(edge, vec![Term::var("y"), Term::var("z")]),
            ],
        )
        .unwrap();
        assert_eq!(r.var_count, 3);
        assert_eq!(r.head_rel(), path);
        assert_eq!(r.body_rels().count(), 2);
        assert!(r.display(&s).contains(":-"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let (s, edge, path) = two_rel_schema();
        let err = Rule::compile(
            &s,
            Atom::new(path, vec![Term::var("x"), Term::var("y")]),
            vec![Atom::new(edge, vec![Term::var("x")])],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RuleError::ArityMismatch {
                supplied: 1,
                declared: 2,
                ..
            }
        ));
        assert!(err.to_string().contains("edge"));
    }

    #[test]
    fn rejects_unbound_head_variable() {
        let (s, edge, path) = two_rel_schema();
        let err = Rule::compile(
            &s,
            Atom::new(path, vec![Term::var("x"), Term::var("w")]),
            vec![Atom::new(edge, vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap_err();
        assert_eq!(
            err,
            RuleError::UnboundHeadVar {
                variable: "w".to_owned()
            }
        );
    }

    #[test]
    fn rejects_empty_body() {
        let (s, _, path) = two_rel_schema();
        let err = Rule::compile(
            &s,
            Atom::new(path, vec![Term::var("x"), Term::var("y")]),
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, RuleError::EmptyBody);
    }

    #[test]
    fn constants_allowed_in_head_and_body() {
        let mut s = Schema::new();
        let edge = s.declare("edge", 2);
        let hub = s.declare("hub", 1);
        let c = Const::from_test(7);
        let r = Rule::compile(
            &s,
            Atom::new(hub, vec![Term::var("x")]),
            vec![Atom::new(edge, vec![Term::var("x"), Term::Const(c)])],
        )
        .unwrap();
        assert_eq!(r.var_count, 1);
    }
}

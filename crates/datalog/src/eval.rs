//! Fixpoint evaluation: semi-naive (production) and naive (reference).
//!
//! Both evaluators compute the minimal model of a positive Datalog
//! program. The semi-naive evaluator is the one analyses should use: each
//! round only re-derives conclusions that depend on at least one fact
//! discovered in the previous round. Because [`Database`] stores tuples in
//! insertion order, "the delta" is just a suffix of each relation's tuple
//! vector — no shadow relations are needed.
//!
//! The naive evaluator recomputes every rule over full relations each
//! round; it exists as an executable specification that tests
//! differentially compare against (`semi_naive(db) == naive(db)`).

use crate::db::Database;
use crate::pool::Const;
use crate::rule::{CAtom, CTerm, Rule};
use std::time::{Duration, Instant};

/// Statistics from a fixpoint run.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Number of rounds until the fixpoint.
    pub rounds: usize,
    /// Facts derived (inserted) by rules, excluding initial facts.
    pub derived: usize,
    /// Total rule firings attempted (rule × delta-position × round).
    pub firings: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// How an atom's candidate tuples are windowed during a join.
#[derive(Copy, Clone, Debug)]
struct Window {
    lo: usize,
    hi: usize,
}

/// Joins `rule`'s body under the given per-atom windows, appending every
/// derived head tuple to `out`.
fn apply_rule(db: &Database, rule: &Rule, windows: &[Window], out: &mut Vec<Vec<Const>>) {
    let mut bindings: Vec<Option<Const>> = vec![None; rule.var_count];
    join_from(db, rule, windows, 0, &mut bindings, out);
}

/// Recursive nested-loop join with index probing, atom `depth` onward.
fn join_from(
    db: &Database,
    rule: &Rule,
    windows: &[Window],
    depth: usize,
    bindings: &mut Vec<Option<Const>>,
    out: &mut Vec<Vec<Const>>,
) {
    if depth == rule.body.len() {
        let head: Vec<Const> =
            rule.head
                .terms
                .iter()
                .map(|t| match t {
                    CTerm::Const(c) => *c,
                    CTerm::Var(i) => bindings[*i as usize]
                        .expect("range restriction guarantees head vars are bound"),
                })
                .collect();
        out.push(head);
        return;
    }
    let atom = &rule.body[depth];
    let window = windows[depth];
    if window.lo >= window.hi {
        return;
    }

    // Pick the bound column with the fewest postings to drive the scan.
    let mut best: Option<(usize, Const, usize)> = None;
    for (col, term) in atom.terms.iter().enumerate() {
        let value = match term {
            CTerm::Const(c) => Some(*c),
            CTerm::Var(i) => bindings[*i as usize],
        };
        if let Some(v) = value {
            let len = db.postings(atom.rel, col, v).len();
            if best.is_none_or(|(_, _, best_len)| len < best_len) {
                best = Some((col, v, len));
            }
        }
    }

    match best {
        Some((col, value, _)) => {
            let postings = db.postings(atom.rel, col, value);
            // Postings are sorted by construction (appended in insertion
            // order), so binary-search the window bounds.
            let start = postings.partition_point(|&p| (p as usize) < window.lo);
            for &pos in &postings[start..] {
                if pos as usize >= window.hi {
                    break;
                }
                let tuple = db.tuple_at(atom.rel, pos);
                try_match(db, rule, windows, depth, atom, tuple, bindings, out);
            }
        }
        None => {
            for pos in window.lo..window.hi {
                let tuple = db.tuple_at(atom.rel, pos as u32);
                try_match(db, rule, windows, depth, atom, tuple, bindings, out);
            }
        }
    }
}

/// Unifies `tuple` against `atom` under `bindings`; recurses on success.
#[allow(clippy::too_many_arguments)]
fn try_match(
    db: &Database,
    rule: &Rule,
    windows: &[Window],
    depth: usize,
    atom: &CAtom,
    tuple: &[Const],
    bindings: &mut Vec<Option<Const>>,
    out: &mut Vec<Vec<Const>>,
) {
    let mut newly_bound: Vec<u32> = Vec::new();
    let mut ok = true;
    for (term, &value) in atom.terms.iter().zip(tuple) {
        match term {
            CTerm::Const(c) => {
                if *c != value {
                    ok = false;
                    break;
                }
            }
            CTerm::Var(i) => match bindings[*i as usize] {
                Some(bound) => {
                    if bound != value {
                        ok = false;
                        break;
                    }
                }
                None => {
                    bindings[*i as usize] = Some(value);
                    newly_bound.push(*i);
                }
            },
        }
    }
    if ok {
        join_from(db, rule, windows, depth + 1, bindings, out);
    }
    for i in newly_bound {
        bindings[i as usize] = None;
    }
}

/// Runs semi-naive evaluation of `rules` over `db` to the fixpoint.
///
/// Initial facts already in `db` form the first delta. On return, `db`
/// contains the minimal model.
pub fn semi_naive(rules: &[Rule], db: &mut Database) -> EvalStats {
    let start_time = Instant::now();
    let mut stats = EvalStats::default();
    // Per-relation delta window: [delta_lo, delta_hi).
    let mut delta_lo: Vec<usize> = db.sizes().iter().map(|_| 0).collect();
    let mut delta_hi: Vec<usize> = db.sizes();

    loop {
        let mut derived: Vec<(crate::schema::RelId, Vec<Const>)> = Vec::new();
        let mut scratch: Vec<Vec<Const>> = Vec::new();
        for rule in rules {
            for dpos in 0..rule.body.len() {
                // Skip if the delta atom's relation gained nothing.
                let drel = rule.body[dpos].rel.index();
                if delta_lo[drel] >= delta_hi[drel] {
                    continue;
                }
                stats.firings += 1;
                let windows: Vec<Window> = rule
                    .body
                    .iter()
                    .enumerate()
                    .map(|(i, atom)| {
                        let r = atom.rel.index();
                        match i.cmp(&dpos) {
                            // Atoms before the delta position see old + delta.
                            std::cmp::Ordering::Less => Window {
                                lo: 0,
                                hi: delta_hi[r],
                            },
                            // The delta atom sees only the delta.
                            std::cmp::Ordering::Equal => Window {
                                lo: delta_lo[r],
                                hi: delta_hi[r],
                            },
                            // Atoms after see only old facts (avoids
                            // deriving the same conclusion from two deltas
                            // twice).
                            std::cmp::Ordering::Greater => Window {
                                lo: 0,
                                hi: delta_lo[r],
                            },
                        }
                    })
                    .collect();
                scratch.clear();
                apply_rule(db, rule, &windows, &mut scratch);
                for tuple in scratch.drain(..) {
                    derived.push((rule.head.rel, tuple));
                }
            }
        }
        stats.rounds += 1;
        // Advance windows: current delta becomes old; inserts become the
        // next delta.
        for (lo, hi) in delta_lo.iter_mut().zip(&delta_hi) {
            *lo = *hi;
        }
        let mut grew = false;
        for (rel, tuple) in derived {
            if db.insert(rel, &tuple) {
                stats.derived += 1;
                grew = true;
            }
        }
        delta_hi = db.sizes();
        if !grew {
            break;
        }
    }
    stats.elapsed = start_time.elapsed();
    stats
}

/// Runs naive evaluation: every rule over full relations, round after
/// round, until nothing new is derived. Reference implementation for
/// differential tests.
pub fn naive(rules: &[Rule], db: &mut Database) -> EvalStats {
    let start_time = Instant::now();
    let mut stats = EvalStats::default();
    loop {
        let sizes = db.sizes();
        let mut derived: Vec<(crate::schema::RelId, Vec<Const>)> = Vec::new();
        let mut scratch: Vec<Vec<Const>> = Vec::new();
        for rule in rules {
            stats.firings += 1;
            let windows: Vec<Window> = rule
                .body
                .iter()
                .map(|atom| Window {
                    lo: 0,
                    hi: sizes[atom.rel.index()],
                })
                .collect();
            scratch.clear();
            apply_rule(db, rule, &windows, &mut scratch);
            for tuple in scratch.drain(..) {
                derived.push((rule.head.rel, tuple));
            }
        }
        stats.rounds += 1;
        let mut grew = false;
        for (rel, tuple) in derived {
            if db.insert(rel, &tuple) {
                stats.derived += 1;
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    stats.elapsed = start_time.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ConstPool;
    use crate::rule::{Atom, Term};
    use crate::schema::Schema;

    /// path(x, y) :- edge(x, y).
    /// path(x, z) :- path(x, y), edge(y, z).
    fn tc_setup() -> (
        Schema,
        crate::schema::RelId,
        crate::schema::RelId,
        Vec<Rule>,
    ) {
        let mut schema = Schema::new();
        let edge = schema.declare("edge", 2);
        let path = schema.declare("path", 2);
        let r1 = Rule::compile(
            &schema,
            Atom::new(path, vec![Term::var("x"), Term::var("y")]),
            vec![Atom::new(edge, vec![Term::var("x"), Term::var("y")])],
        )
        .unwrap();
        let r2 = Rule::compile(
            &schema,
            Atom::new(path, vec![Term::var("x"), Term::var("z")]),
            vec![
                Atom::new(path, vec![Term::var("x"), Term::var("y")]),
                Atom::new(edge, vec![Term::var("y"), Term::var("z")]),
            ],
        )
        .unwrap();
        (schema, edge, path, vec![r1, r2])
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let (schema, edge, path, rules) = tc_setup();
        let mut pool = ConstPool::new();
        let nodes: Vec<_> = (0..5).map(|i| pool.intern(&format!("n{i}"))).collect();
        let mut db = Database::new(&schema);
        for w in nodes.windows(2) {
            db.insert(edge, &[w[0], w[1]]);
        }
        let stats = semi_naive(&rules, &mut db);
        // A 5-node chain has 4+3+2+1 = 10 paths.
        assert_eq!(db.count(path), 10);
        assert!(stats.rounds >= 4, "chain needs one round per path length");
        assert!(db.contains(path, &[nodes[0], nodes[4]]));
        assert!(!db.contains(path, &[nodes[4], nodes[0]]));
    }

    #[test]
    fn cycle_saturates() {
        let (schema, edge, path, rules) = tc_setup();
        let mut pool = ConstPool::new();
        let nodes: Vec<_> = (0..4).map(|i| pool.intern(&format!("n{i}"))).collect();
        let mut db = Database::new(&schema);
        for i in 0..4 {
            db.insert(edge, &[nodes[i], nodes[(i + 1) % 4]]);
        }
        semi_naive(&rules, &mut db);
        // Every node reaches every node: 16 paths.
        assert_eq!(db.count(path), 16);
    }

    #[test]
    fn naive_and_semi_naive_agree_on_random_graph() {
        use rand::{Rng, SeedableRng};
        let (schema, edge, path, rules) = tc_setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut pool = ConstPool::new();
        let nodes: Vec<_> = (0..12).map(|i| pool.intern(&format!("n{i}"))).collect();
        let mut db1 = Database::new(&schema);
        let mut db2 = Database::new(&schema);
        for _ in 0..30 {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let b = nodes[rng.gen_range(0..nodes.len())];
            db1.insert(edge, &[a, b]);
            db2.insert(edge, &[a, b]);
        }
        semi_naive(&rules, &mut db1);
        naive(&rules, &mut db2);
        assert_eq!(db1.count(path), db2.count(path));
        for t in db1.tuples(path) {
            assert!(db2.contains(path, t));
        }
    }

    #[test]
    fn constants_in_rules_filter() {
        let mut schema = Schema::new();
        let edge = schema.declare("edge", 2);
        let from_a = schema.declare("from_a", 1);
        let mut pool = ConstPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let c = pool.intern("c");
        let rule = Rule::compile(
            &schema,
            Atom::new(from_a, vec![Term::var("y")]),
            vec![Atom::new(edge, vec![Term::Const(a), Term::var("y")])],
        )
        .unwrap();
        let mut db = Database::new(&schema);
        db.insert(edge, &[a, b]);
        db.insert(edge, &[b, c]);
        semi_naive(&[rule], &mut db);
        assert_eq!(db.count(from_a), 1);
        assert!(db.contains(from_a, &[b]));
    }

    #[test]
    fn repeated_variable_in_atom_requires_equality() {
        let mut schema = Schema::new();
        let edge = schema.declare("edge", 2);
        let self_loop = schema.declare("self_loop", 1);
        let mut pool = ConstPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let rule = Rule::compile(
            &schema,
            Atom::new(self_loop, vec![Term::var("x")]),
            vec![Atom::new(edge, vec![Term::var("x"), Term::var("x")])],
        )
        .unwrap();
        let mut db = Database::new(&schema);
        db.insert(edge, &[a, a]);
        db.insert(edge, &[a, b]);
        semi_naive(&[rule], &mut db);
        assert_eq!(db.count(self_loop), 1);
        assert!(db.contains(self_loop, &[a]));
    }

    #[test]
    fn empty_database_reaches_fixpoint_immediately() {
        let (schema, _, path, rules) = tc_setup();
        let mut db = Database::new(&schema);
        let stats = semi_naive(&rules, &mut db);
        assert_eq!(db.count(path), 0);
        assert_eq!(stats.derived, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn stats_count_derived_facts() {
        let (schema, edge, path, rules) = tc_setup();
        let mut pool = ConstPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let c = pool.intern("c");
        let mut db = Database::new(&schema);
        db.insert(edge, &[a, b]);
        db.insert(edge, &[b, c]);
        let stats = semi_naive(&rules, &mut db);
        // path gains ab, bc, ac.
        assert_eq!(stats.derived, 3);
        assert_eq!(db.count(path), 3);
        assert!(db.contains(path, &[a, c]));
    }
}

//! Interned Datalog constants.
//!
//! Every value that can appear in a tuple — a class name, a statement id,
//! a context — is interned into a [`Const`], a small `Copy` integer. The
//! [`ConstPool`] remembers a display name for each constant so results can
//! be rendered back for humans.
//!
//! # Examples
//!
//! ```
//! use cfa_datalog::pool::ConstPool;
//!
//! let mut pool = ConstPool::new();
//! let a = pool.intern("alice");
//! let b = pool.intern("bob");
//! assert_ne!(a, b);
//! assert_eq!(pool.intern("alice"), a);
//! assert_eq!(pool.name(a), "alice");
//! ```

use std::collections::HashMap;
use std::fmt;

/// An interned Datalog constant.
///
/// Constants are cheap to copy, compare, and hash; they are only
/// meaningful relative to the [`ConstPool`] that produced them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Const(u32);

impl Const {
    /// The raw index of this constant in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Const({})", self.0)
    }
}

/// A deduplicating store of constant names.
///
/// See the [module documentation](self) for an example.
#[derive(Default, Clone, Debug)]
pub struct ConstPool {
    names: Vec<String>,
    map: HashMap<String, Const>,
}

impl ConstPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the same constant for equal names.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` constants are interned.
    pub fn intern(&mut self, name: &str) -> Const {
        if let Some(&c) = self.map.get(name) {
            return c;
        }
        let c = Const(u32::try_from(self.names.len()).expect("constant pool overflow"));
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), c);
        c
    }

    /// The display name of `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` did not come from this pool.
    pub fn name(&self, c: Const) -> &str {
        &self.names[c.index()]
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Const> {
        self.map.get(name).copied()
    }

    /// Number of interned constants.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = ConstPool::new();
        let a = pool.intern("a");
        assert_eq!(pool.intern("a"), a);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_constants() {
        let mut pool = ConstPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert_ne!(a, b);
        assert_eq!(pool.name(a), "a");
        assert_eq!(pool.name(b), "b");
    }

    #[test]
    fn lookup_finds_only_interned() {
        let mut pool = ConstPool::new();
        let a = pool.intern("a");
        assert_eq!(pool.lookup("a"), Some(a));
        assert_eq!(pool.lookup("b"), None);
    }

    #[test]
    fn empty_pool_reports_empty() {
        let pool = ConstPool::new();
        assert!(pool.is_empty());
        assert_eq!(pool.len(), 0);
    }
}

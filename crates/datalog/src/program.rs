//! A convenience builder tying schema, rules, and evaluation together.
//!
//! [`DatalogProgram`] is the API the analysis encodings use: declare
//! relations, add rules, then [`DatalogProgram::run`] over a database of
//! input facts.

use crate::db::Database;
use crate::eval::{naive, semi_naive, EvalStats};
use crate::rule::{Atom, Rule, RuleError, Term};
use crate::schema::{RelId, Schema};

/// A positive Datalog program: a schema plus compiled rules.
///
/// # Examples
///
/// ```
/// use cfa_datalog::{DatalogProgram, Term};
/// use cfa_datalog::pool::ConstPool;
///
/// # fn main() -> Result<(), cfa_datalog::rule::RuleError> {
/// let mut program = DatalogProgram::new();
/// let edge = program.relation("edge", 2);
/// let path = program.relation("path", 2);
/// program.rule(path, vec![Term::var("x"), Term::var("y")],
///              vec![(edge, vec![Term::var("x"), Term::var("y")])])?;
/// program.rule(path, vec![Term::var("x"), Term::var("z")],
///              vec![(path, vec![Term::var("x"), Term::var("y")]),
///                   (edge, vec![Term::var("y"), Term::var("z")])])?;
///
/// let mut pool = ConstPool::new();
/// let (a, b, c) = (pool.intern("a"), pool.intern("b"), pool.intern("c"));
/// let mut db = program.database();
/// db.insert(edge, &[a, b]);
/// db.insert(edge, &[b, c]);
/// program.run(&mut db);
/// assert!(db.contains(path, &[a, c]));
/// # Ok(())
/// # }
/// ```
#[derive(Default, Debug)]
pub struct DatalogProgram {
    schema: Schema,
    rules: Vec<Rule>,
}

impl DatalogProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or re-uses) a relation.
    pub fn relation(&mut self, name: &str, arity: usize) -> RelId {
        self.schema.declare(name, arity)
    }

    /// Adds the rule `head(head_terms) :- body`, where each body entry is
    /// `(relation, terms)`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuleError`] if an atom's arity mismatches its
    /// declaration, a head variable is unbound, or the body is empty.
    pub fn rule(
        &mut self,
        head: RelId,
        head_terms: Vec<Term>,
        body: Vec<(RelId, Vec<Term>)>,
    ) -> Result<(), RuleError> {
        let body_atoms: Vec<Atom> = body
            .into_iter()
            .map(|(rel, terms)| Atom::new(rel, terms))
            .collect();
        let rule = Rule::compile(&self.schema, Atom::new(head, head_terms), body_atoms)?;
        self.rules.push(rule);
        Ok(())
    }

    /// An empty database matching this program's schema.
    pub fn database(&self) -> Database {
        Database::new(&self.schema)
    }

    /// The program's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The compiled rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Runs semi-naive evaluation over `db` to the fixpoint.
    pub fn run(&self, db: &mut Database) -> EvalStats {
        semi_naive(&self.rules, db)
    }

    /// Runs the naive reference evaluator (for differential testing).
    pub fn run_naive(&self, db: &mut Database) -> EvalStats {
        naive(&self.rules, db)
    }

    /// Renders all rules for debugging.
    pub fn display_rules(&self) -> String {
        self.rules
            .iter()
            .map(|r| r.display(&self.schema))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ConstPool;
    use crate::rule::RuleError;

    #[test]
    fn builder_compiles_and_runs() {
        let mut program = DatalogProgram::new();
        let edge = program.relation("edge", 2);
        let two_hop = program.relation("two_hop", 2);
        program
            .rule(
                two_hop,
                vec![Term::var("x"), Term::var("z")],
                vec![
                    (edge, vec![Term::var("x"), Term::var("y")]),
                    (edge, vec![Term::var("y"), Term::var("z")]),
                ],
            )
            .unwrap();
        let mut pool = ConstPool::new();
        let (a, b, c) = (pool.intern("a"), pool.intern("b"), pool.intern("c"));
        let mut db = program.database();
        db.insert(edge, &[a, b]);
        db.insert(edge, &[b, c]);
        let stats = program.run(&mut db);
        assert!(db.contains(two_hop, &[a, c]));
        assert_eq!(db.count(two_hop), 1);
        assert_eq!(stats.derived, 1);
    }

    #[test]
    fn rule_errors_propagate() {
        let mut program = DatalogProgram::new();
        let edge = program.relation("edge", 2);
        let bad = program.rule(edge, vec![Term::var("x"), Term::var("x")], vec![]);
        assert_eq!(bad.unwrap_err(), RuleError::EmptyBody);
    }

    #[test]
    fn display_rules_mentions_relations() {
        let mut program = DatalogProgram::new();
        let edge = program.relation("edge", 2);
        let path = program.relation("path", 2);
        program
            .rule(
                path,
                vec![Term::var("x"), Term::var("y")],
                vec![(edge, vec![Term::var("x"), Term::var("y")])],
            )
            .unwrap();
        let text = program.display_rules();
        assert!(text.contains("path(x, y) :- edge(x, y)."));
    }
}

//! Relation declarations.
//!
//! A [`Schema`] names the relations of a Datalog program and fixes their
//! arities. Rules and databases are checked against it, so arity errors
//! surface at construction time rather than as silent empty joins.

use std::collections::HashMap;
use std::fmt;

/// An interned relation id.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(u32);

impl RelId {
    /// The raw index of this relation in its schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelId({})", self.0)
    }
}

/// The declared relations of a program: name and arity per relation.
///
/// # Examples
///
/// ```
/// use cfa_datalog::schema::Schema;
///
/// let mut schema = Schema::new();
/// let edge = schema.declare("edge", 2);
/// assert_eq!(schema.arity(edge), 2);
/// assert_eq!(schema.name(edge), "edge");
/// ```
#[derive(Default, Clone, Debug)]
pub struct Schema {
    names: Vec<String>,
    arities: Vec<usize>,
    map: HashMap<String, RelId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation, or returns the existing id if `name` was
    /// already declared with the same arity.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously declared with a different arity —
    /// that is always a programming error in the analysis encoding.
    pub fn declare(&mut self, name: &str, arity: usize) -> RelId {
        if let Some(&id) = self.map.get(name) {
            assert_eq!(
                self.arities[id.index()],
                arity,
                "relation `{name}` re-declared with different arity"
            );
            return id;
        }
        let id = RelId(u32::try_from(self.names.len()).expect("schema overflow"));
        self.names.push(name.to_owned());
        self.arities.push(arity);
        self.map.insert(name.to_owned(), id);
        id
    }

    /// The arity of `rel`.
    pub fn arity(&self, rel: RelId) -> usize {
        self.arities[rel.index()]
    }

    /// The name of `rel`.
    pub fn name(&self, rel: RelId) -> &str {
        &self.names[rel.index()]
    }

    /// Looks up a declared relation by name.
    pub fn lookup(&self, name: &str) -> Option<RelId> {
        self.map.get(name).copied()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all relation ids in declaration order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.names.len() as u32).map(RelId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_query() {
        let mut s = Schema::new();
        let edge = s.declare("edge", 2);
        let node = s.declare("node", 1);
        assert_eq!(s.arity(edge), 2);
        assert_eq!(s.arity(node), 1);
        assert_eq!(s.name(node), "node");
        assert_eq!(s.lookup("edge"), Some(edge));
        assert_eq!(s.lookup("missing"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn redeclare_same_arity_is_idempotent() {
        let mut s = Schema::new();
        let a = s.declare("r", 3);
        let b = s.declare("r", 3);
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn redeclare_different_arity_panics() {
        let mut s = Schema::new();
        s.declare("r", 3);
        s.declare("r", 2);
    }

    #[test]
    fn rel_ids_cover_all() {
        let mut s = Schema::new();
        s.declare("a", 1);
        s.declare("b", 2);
        assert_eq!(s.rel_ids().count(), 2);
    }
}

//! A small semi-naive Datalog engine.
//!
//! The paper's §1 observes that object-oriented k-CFA is *provably*
//! polynomial because "Bravenboer and Smaragdakis express the algorithm in
//! Datalog, which is a language that can only express polynomial-time
//! algorithms". This crate makes that argument executable: it provides a
//! positive-Datalog engine (bottom-up, semi-naive, with index-driven
//! joins), and `cfa-fj::datalog` encodes the Featherweight Java points-to
//! analysis in it. Because every Datalog program saturates in time
//! polynomial in the number of constants, the encoding doubles as a
//! machine-checked witness of the paper's polynomiality claim for the OO
//! side of the paradox.
//!
//! # Architecture
//!
//! * [`pool`] — interned constants ([`pool::Const`]);
//! * [`schema`] — relation declarations (name + arity);
//! * [`rule`] — rule authoring and compilation (named variables,
//!   arity/range-restriction validation);
//! * [`db`] — tuple storage with per-column postings lists; tuples are
//!   kept in insertion order so the semi-naive delta is a vector suffix;
//! * [`eval`] — the semi-naive evaluator plus a naive reference
//!   implementation used for differential testing;
//! * [`program`] — the [`DatalogProgram`] builder façade.
//!
//! # Examples
//!
//! Transitive closure:
//!
//! ```
//! use cfa_datalog::{DatalogProgram, Term};
//! use cfa_datalog::pool::ConstPool;
//!
//! # fn main() -> Result<(), cfa_datalog::rule::RuleError> {
//! let mut program = DatalogProgram::new();
//! let edge = program.relation("edge", 2);
//! let path = program.relation("path", 2);
//! program.rule(path, vec![Term::var("x"), Term::var("y")],
//!              vec![(edge, vec![Term::var("x"), Term::var("y")])])?;
//! program.rule(path, vec![Term::var("x"), Term::var("z")],
//!              vec![(path, vec![Term::var("x"), Term::var("y")]),
//!                   (edge, vec![Term::var("y"), Term::var("z")])])?;
//!
//! let mut pool = ConstPool::new();
//! let (a, b) = (pool.intern("a"), pool.intern("b"));
//! let mut db = program.database();
//! db.insert(edge, &[a, b]);
//! let stats = program.run(&mut db);
//! assert!(db.contains(path, &[a, b]));
//! assert_eq!(stats.derived, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod db;
pub mod eval;
pub mod pool;
pub mod program;
pub mod rule;
pub mod schema;

pub use db::Database;
pub use eval::{naive, semi_naive, EvalStats};
pub use pool::{Const, ConstPool};
pub use program::DatalogProgram;
pub use rule::{Atom, Rule, RuleError, Term};
pub use schema::{RelId, Schema};

//! Integration tests for the Datalog engine on classic programs.

use cfa_datalog::pool::ConstPool;
use cfa_datalog::{DatalogProgram, RelId, Term};

fn v(name: &str) -> Term {
    Term::var(name)
}

/// Builds the textbook same-generation program over `parent`.
///
/// sg(x, x) :- person(x).
/// sg(x, y) :- parent(x, px), sg(px, py), parent(y, py).
fn same_generation() -> (DatalogProgram, RelId, RelId, RelId) {
    let mut p = DatalogProgram::new();
    let person = p.relation("person", 1);
    let parent = p.relation("parent", 2);
    let sg = p.relation("sg", 2);
    p.rule(sg, vec![v("x"), v("x")], vec![(person, vec![v("x")])])
        .unwrap();
    p.rule(
        sg,
        vec![v("x"), v("y")],
        vec![
            (parent, vec![v("x"), v("px")]),
            (sg, vec![v("px"), v("py")]),
            (parent, vec![v("y"), v("py")]),
        ],
    )
    .unwrap();
    (p, person, parent, sg)
}

#[test]
fn same_generation_on_a_binary_tree() {
    let (program, person, parent, sg) = same_generation();
    let mut pool = ConstPool::new();
    // A perfect binary tree of depth 3: root r; children by path string.
    let names = ["r", "r0", "r1", "r00", "r01", "r10", "r11"];
    let consts: Vec<_> = names.iter().map(|n| pool.intern(n)).collect();
    let mut db = program.database();
    for (i, &c) in consts.iter().enumerate() {
        let _ = i;
        db.insert(person, &[c]);
    }
    for (child, par) in [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)] {
        db.insert(parent, &[consts[child], consts[par]]);
    }
    program.run(&mut db);
    // Same-generation pairs: the four leaves are mutually same-generation,
    // the two inner nodes likewise, and the root only with itself.
    assert!(db.contains(sg, &[consts[3], consts[6]]));
    assert!(db.contains(sg, &[consts[1], consts[2]]));
    assert!(!db.contains(sg, &[consts[0], consts[1]]));
    assert!(!db.contains(sg, &[consts[3], consts[1]]));
    // Reflexivity from the person rule.
    for &c in &consts {
        assert!(db.contains(sg, &[c, c]));
    }
    // 7 reflexive + 4·3 leaf pairs + 2·1 inner pairs.
    assert_eq!(db.count(sg), 7 + 12 + 2);
}

#[test]
fn nonlinear_transitive_closure_matches_linear() {
    // Non-linear variant: path(x,z) :- path(x,y), path(y,z).
    let mut linear = DatalogProgram::new();
    let edge_l = linear.relation("edge", 2);
    let path_l = linear.relation("path", 2);
    linear
        .rule(
            path_l,
            vec![v("x"), v("y")],
            vec![(edge_l, vec![v("x"), v("y")])],
        )
        .unwrap();
    linear
        .rule(
            path_l,
            vec![v("x"), v("z")],
            vec![
                (path_l, vec![v("x"), v("y")]),
                (edge_l, vec![v("y"), v("z")]),
            ],
        )
        .unwrap();

    let mut nonlinear = DatalogProgram::new();
    let edge_n = nonlinear.relation("edge", 2);
    let path_n = nonlinear.relation("path", 2);
    nonlinear
        .rule(
            path_n,
            vec![v("x"), v("y")],
            vec![(edge_n, vec![v("x"), v("y")])],
        )
        .unwrap();
    nonlinear
        .rule(
            path_n,
            vec![v("x"), v("z")],
            vec![
                (path_n, vec![v("x"), v("y")]),
                (path_n, vec![v("y"), v("z")]),
            ],
        )
        .unwrap();

    let mut pool = ConstPool::new();
    let nodes: Vec<_> = (0..10).map(|i| pool.intern(&format!("n{i}"))).collect();
    let edges: Vec<(usize, usize)> = vec![
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0),
        (3, 4),
        (4, 5),
        (6, 7),
        (8, 8),
    ];
    let mut db_l = linear.database();
    let mut db_n = nonlinear.database();
    for &(a, b) in &edges {
        db_l.insert(edge_l, &[nodes[a], nodes[b]]);
        db_n.insert(edge_n, &[nodes[a], nodes[b]]);
    }
    let stats_l = linear.run(&mut db_l);
    let stats_n = nonlinear.run(&mut db_n);
    assert_eq!(db_l.count(path_l), db_n.count(path_n));
    for t in db_l.tuples(path_l) {
        assert!(db_n.contains(path_n, t));
    }
    // The non-linear version squares path lengths per round, so it needs
    // no more rounds than the linear one.
    assert!(stats_n.rounds <= stats_l.rounds);
}

#[test]
fn mutual_recursion_between_relations() {
    // even(0). even(y) :- odd(x), succ(x, y). odd(y) :- even(x), succ(x, y).
    let mut p = DatalogProgram::new();
    let zero = p.relation("zero", 1);
    let succ = p.relation("succ", 2);
    let even = p.relation("even", 1);
    let odd = p.relation("odd", 1);
    p.rule(even, vec![v("x")], vec![(zero, vec![v("x")])])
        .unwrap();
    p.rule(
        even,
        vec![v("y")],
        vec![(odd, vec![v("x")]), (succ, vec![v("x"), v("y")])],
    )
    .unwrap();
    p.rule(
        odd,
        vec![v("y")],
        vec![(even, vec![v("x")]), (succ, vec![v("x"), v("y")])],
    )
    .unwrap();
    let mut pool = ConstPool::new();
    let nums: Vec<_> = (0..=8).map(|i| pool.intern(&i.to_string())).collect();
    let mut db = p.database();
    db.insert(zero, &[nums[0]]);
    for w in nums.windows(2) {
        db.insert(succ, &[w[0], w[1]]);
    }
    p.run(&mut db);
    for (i, &num) in nums.iter().enumerate().take(9) {
        assert_eq!(db.contains(even, &[num]), i % 2 == 0, "evenness of {i}");
        assert_eq!(db.contains(odd, &[num]), i % 2 == 1, "oddness of {i}");
    }
}

#[test]
fn join_on_three_way_chain_with_shared_variables() {
    // triangle(x, y, z) :- edge(x, y), edge(y, z), edge(z, x).
    let mut p = DatalogProgram::new();
    let edge = p.relation("edge", 2);
    let triangle = p.relation("triangle", 3);
    p.rule(
        triangle,
        vec![v("x"), v("y"), v("z")],
        vec![
            (edge, vec![v("x"), v("y")]),
            (edge, vec![v("y"), v("z")]),
            (edge, vec![v("z"), v("x")]),
        ],
    )
    .unwrap();
    let mut pool = ConstPool::new();
    let n: Vec<_> = (0..5).map(|i| pool.intern(&format!("n{i}"))).collect();
    let mut db = p.database();
    // One triangle 0-1-2 plus noise.
    for &(a, b) in &[(0, 1), (1, 2), (2, 0), (3, 4), (0, 3)] {
        db.insert(edge, &[n[a], n[b]]);
    }
    p.run(&mut db);
    // The triangle appears in all three rotations.
    assert_eq!(db.count(triangle), 3);
    assert!(db.contains(triangle, &[n[0], n[1], n[2]]));
    assert!(db.contains(triangle, &[n[1], n[2], n[0]]));
    assert!(db.contains(triangle, &[n[2], n[0], n[1]]));
}

#[test]
fn derived_facts_can_feed_edb_relations() {
    // Rules may derive into "input" relations; the engine does not
    // distinguish EDB from IDB.
    let mut p = DatalogProgram::new();
    let edge = p.relation("edge", 2);
    let sym = p.relation("edge_sym_marker", 0);
    let _ = sym;
    p.rule(
        edge,
        vec![v("y"), v("x")],
        vec![(edge, vec![v("x"), v("y")])],
    )
    .unwrap();
    let mut pool = ConstPool::new();
    let a = pool.intern("a");
    let b = pool.intern("b");
    let mut db = p.database();
    db.insert(edge, &[a, b]);
    p.run(&mut db);
    assert!(db.contains(edge, &[b, a]));
    assert_eq!(db.count(edge), 2);
}

#[test]
fn zero_arity_relations_work_as_flags() {
    // reachable_flag() :- edge(x, y). (existential check)
    let mut p = DatalogProgram::new();
    let edge = p.relation("edge", 2);
    let flag = p.relation("flag", 0);
    p.rule(flag, vec![], vec![(edge, vec![v("x"), v("y")])])
        .unwrap();
    let mut pool = ConstPool::new();
    let a = pool.intern("a");
    let mut db = p.database();
    let stats0 = p.run(&mut db);
    assert_eq!(db.count(flag), 0);
    assert_eq!(stats0.derived, 0);
    db.insert(edge, &[a, a]);
    p.run(&mut db);
    assert_eq!(db.count(flag), 1);
    assert!(db.contains(flag, &[]));
}

#[test]
fn saturation_is_idempotent() {
    let (program, person, parent, sg) = same_generation();
    let mut pool = ConstPool::new();
    let a = pool.intern("a");
    let b = pool.intern("b");
    let r = pool.intern("r");
    let mut db = program.database();
    db.insert(person, &[a]);
    db.insert(person, &[b]);
    db.insert(person, &[r]);
    db.insert(parent, &[a, r]);
    db.insert(parent, &[b, r]);
    program.run(&mut db);
    let first = db.count(sg);
    let stats = program.run(&mut db);
    assert_eq!(db.count(sg), first, "re-running at fixpoint must not grow");
    assert_eq!(stats.derived, 0);
}

#[test]
fn four_way_join_with_shared_keys() {
    // square(a, b, c, d) :- edge(a, b), edge(b, c), edge(c, d), edge(d, a).
    let mut p = DatalogProgram::new();
    let edge = p.relation("edge", 2);
    let square = p.relation("square", 4);
    p.rule(
        square,
        vec![v("a"), v("b"), v("c"), v("d")],
        vec![
            (edge, vec![v("a"), v("b")]),
            (edge, vec![v("b"), v("c")]),
            (edge, vec![v("c"), v("d")]),
            (edge, vec![v("d"), v("a")]),
        ],
    )
    .unwrap();
    let mut pool = ConstPool::new();
    let n: Vec<_> = (0..6).map(|i| pool.intern(&format!("n{i}"))).collect();
    let mut db = p.database();
    for &(a, b) in &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)] {
        db.insert(edge, &[n[a], n[b]]);
    }
    p.run(&mut db);
    // One 4-cycle, four rotations. (Self-overlapping degenerate squares
    // like a-b-a-b would need repeated edges, absent here.)
    assert_eq!(db.count(square), 4);
    assert!(db.contains(square, &[n[0], n[1], n[2], n[3]]));
}

#[test]
fn incremental_reruns_reach_the_same_fixpoint() {
    // Running, inserting more facts, and re-running must equal running
    // once with all facts (semi-naive restarts treat the whole database
    // as the first delta).
    let mut p = DatalogProgram::new();
    let edge = p.relation("edge", 2);
    let path = p.relation("path", 2);
    p.rule(
        path,
        vec![v("x"), v("y")],
        vec![(edge, vec![v("x"), v("y")])],
    )
    .unwrap();
    p.rule(
        path,
        vec![v("x"), v("z")],
        vec![(path, vec![v("x"), v("y")]), (edge, vec![v("y"), v("z")])],
    )
    .unwrap();
    let mut pool = ConstPool::new();
    let n: Vec<_> = (0..5).map(|i| pool.intern(&format!("n{i}"))).collect();

    let mut incremental = p.database();
    incremental.insert(edge, &[n[0], n[1]]);
    incremental.insert(edge, &[n[1], n[2]]);
    p.run(&mut incremental);
    incremental.insert(edge, &[n[2], n[3]]);
    incremental.insert(edge, &[n[3], n[4]]);
    p.run(&mut incremental);

    let mut oneshot = p.database();
    for w in n.windows(2) {
        oneshot.insert(edge, &[w[0], w[1]]);
    }
    p.run(&mut oneshot);

    assert_eq!(incremental.count(path), oneshot.count(path));
    for t in oneshot.tuples(path) {
        assert!(incremental.contains(path, t));
    }
}

#[test]
fn duplicate_rules_do_not_change_the_model() {
    let mut once = DatalogProgram::new();
    let e1 = once.relation("edge", 2);
    let p1 = once.relation("path", 2);
    once.rule(p1, vec![v("x"), v("y")], vec![(e1, vec![v("x"), v("y")])])
        .unwrap();

    let mut twice = DatalogProgram::new();
    let e2 = twice.relation("edge", 2);
    let p2 = twice.relation("path", 2);
    for _ in 0..2 {
        twice
            .rule(p2, vec![v("x"), v("y")], vec![(e2, vec![v("x"), v("y")])])
            .unwrap();
    }

    let mut pool = ConstPool::new();
    let a = pool.intern("a");
    let b = pool.intern("b");
    let mut db1 = once.database();
    let mut db2 = twice.database();
    db1.insert(e1, &[a, b]);
    db2.insert(e2, &[a, b]);
    once.run(&mut db1);
    twice.run(&mut db2);
    assert_eq!(db1.count(p1), db2.count(p2));
}

#[test]
fn head_constants_restrict_derivation() {
    // labeled(x, "seen") :- edge(x, y).
    let mut p = DatalogProgram::new();
    let edge = p.relation("edge", 2);
    let labeled = p.relation("labeled", 2);
    let mut pool = ConstPool::new();
    let seen = pool.intern("seen");
    p.rule(
        labeled,
        vec![v("x"), Term::Const(seen)],
        vec![(edge, vec![v("x"), v("y")])],
    )
    .unwrap();
    let a = pool.intern("a");
    let b = pool.intern("b");
    let mut db = p.database();
    db.insert(edge, &[a, b]);
    p.run(&mut db);
    assert!(db.contains(labeled, &[a, seen]));
    assert_eq!(db.count(labeled), 1);
}

//! Property tests: the semi-naive evaluator agrees with the naive
//! reference evaluator and with an independent graph-reachability oracle.

use cfa_datalog::pool::ConstPool;
use cfa_datalog::{Database, DatalogProgram, RelId, Term};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn v(name: &str) -> Term {
    Term::var(name)
}

/// Transitive-closure program.
fn tc_program() -> (DatalogProgram, RelId, RelId) {
    let mut p = DatalogProgram::new();
    let edge = p.relation("edge", 2);
    let path = p.relation("path", 2);
    p.rule(
        path,
        vec![v("x"), v("y")],
        vec![(edge, vec![v("x"), v("y")])],
    )
    .unwrap();
    p.rule(
        path,
        vec![v("x"), v("z")],
        vec![(path, vec![v("x"), v("y")]), (edge, vec![v("y"), v("z")])],
    )
    .unwrap();
    (p, edge, path)
}

/// A richer mixed program: closure, symmetric closure, two-hop, endpoints.
fn mixed_program() -> (DatalogProgram, RelId, Vec<RelId>) {
    let mut p = DatalogProgram::new();
    let edge = p.relation("edge", 2);
    let path = p.relation("path", 2);
    let und = p.relation("undirected", 2);
    let hop2 = p.relation("two_hop", 2);
    let node = p.relation("node", 1);
    p.rule(
        path,
        vec![v("x"), v("y")],
        vec![(edge, vec![v("x"), v("y")])],
    )
    .unwrap();
    p.rule(
        path,
        vec![v("x"), v("z")],
        vec![(path, vec![v("x"), v("y")]), (path, vec![v("y"), v("z")])],
    )
    .unwrap();
    p.rule(
        und,
        vec![v("x"), v("y")],
        vec![(edge, vec![v("x"), v("y")])],
    )
    .unwrap();
    p.rule(
        und,
        vec![v("y"), v("x")],
        vec![(edge, vec![v("x"), v("y")])],
    )
    .unwrap();
    p.rule(
        hop2,
        vec![v("x"), v("z")],
        vec![(und, vec![v("x"), v("y")]), (und, vec![v("y"), v("z")])],
    )
    .unwrap();
    p.rule(node, vec![v("x")], vec![(edge, vec![v("x"), v("y")])])
        .unwrap();
    p.rule(node, vec![v("y")], vec![(edge, vec![v("x"), v("y")])])
        .unwrap();
    (p, edge, vec![path, und, hop2, node])
}

fn edges_strategy(nodes: usize, max_edges: usize) -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec(
        (0..nodes as u8).prop_flat_map(move |a| (Just(a), 0..nodes as u8)),
        0..max_edges,
    )
}

fn load(db: &mut Database, pool: &mut ConstPool, rel: RelId, edges: &[(u8, u8)]) {
    for &(a, b) in edges {
        let ca = pool.intern(&format!("n{a}"));
        let cb = pool.intern(&format!("n{b}"));
        db.insert(rel, &[ca, cb]);
    }
}

/// Independent oracle: reachability in ≥1 step by repeated squaring over a
/// boolean adjacency matrix.
fn reach_oracle(nodes: usize, edges: &[(u8, u8)]) -> BTreeSet<(u8, u8)> {
    let mut m = vec![vec![false; nodes]; nodes];
    for &(a, b) in edges {
        m[a as usize][b as usize] = true;
    }
    loop {
        let mut grew = false;
        for i in 0..nodes {
            for j in 0..nodes {
                if !m[i][j] {
                    let via = (0..nodes).any(|k| m[i][k] && m[k][j]);
                    if via {
                        m[i][j] = true;
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    let mut set = BTreeSet::new();
    for (i, row) in m.iter().enumerate() {
        for (j, &r) in row.iter().enumerate() {
            if r {
                set.insert((i as u8, j as u8));
            }
        }
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transitive_closure_matches_matrix_oracle(edges in edges_strategy(8, 24)) {
        let (program, edge, path) = tc_program();
        let mut pool = ConstPool::new();
        let mut db = program.database();
        load(&mut db, &mut pool, edge, &edges);
        program.run(&mut db);
        let expected = reach_oracle(8, &edges);
        let mut got = BTreeSet::new();
        for t in db.tuples(path) {
            let a: u8 = pool.name(t[0])[1..].parse().unwrap();
            let b: u8 = pool.name(t[1])[1..].parse().unwrap();
            got.insert((a, b));
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn semi_naive_equals_naive_on_mixed_program(edges in edges_strategy(7, 20)) {
        let (program, edge, outputs) = mixed_program();
        let mut pool = ConstPool::new();
        let mut db_semi = program.database();
        let mut db_naive = program.database();
        load(&mut db_semi, &mut pool, edge, &edges);
        load(&mut db_naive, &mut pool, edge, &edges);
        program.run(&mut db_semi);
        program.run_naive(&mut db_naive);
        for rel in outputs {
            prop_assert_eq!(db_semi.count(rel), db_naive.count(rel));
            for t in db_semi.tuples(rel) {
                prop_assert!(db_naive.contains(rel, t));
            }
        }
    }

    #[test]
    fn fixpoint_is_monotone_in_inputs(edges in edges_strategy(6, 16)) {
        // Adding an edge can only grow the closure (Datalog is monotone).
        let (program, edge, path) = tc_program();
        let mut pool = ConstPool::new();
        let mut db_small = program.database();
        if edges.is_empty() {
            return Ok(());
        }
        load(&mut db_small, &mut pool, edge, &edges[..edges.len() - 1]);
        program.run(&mut db_small);
        let mut db_big = program.database();
        load(&mut db_big, &mut pool, edge, &edges);
        program.run(&mut db_big);
        for t in db_small.tuples(path) {
            prop_assert!(db_big.contains(path, t), "closure must be monotone");
        }
    }
}

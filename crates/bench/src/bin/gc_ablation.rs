//! Experiment E8 (extension) — abstract garbage collection (ΓCFA).
//!
//! The paper's §8 proposes carrying abstract GC across the
//! functional/OO bridge. This ablation applies ΓCFA to the naive
//! per-state-store k-CFA (§3.6) and measures the state-space reduction
//! on the worst-case family.
//!
//! Usage: `cargo run -p cfa-bench --bin gc_ablation --release`

use cfa_core::naive::{analyze_kcfa_naive_with, NaiveLimits};
use cfa_core::Status;
use std::time::Duration;

fn main() {
    println!("E8 / §8 extension — abstract GC on naive 1-CFA");
    println!(
        "{:>3} {:>6} {:>14} {:>14} {:>10}",
        "n", "Terms", "states", "states (GC)", "reduction"
    );
    let limits = NaiveLimits {
        max_states: 200_000,
        time_budget: Some(Duration::from_secs(15)),
    };
    for n in [1usize, 2, 3, 4] {
        let src = cfa_workloads::worst_case_source(n);
        let program = cfa_syntax::compile(&src).expect("compiles");
        let plain = analyze_kcfa_naive_with(&program, 1, limits, false);
        let gc = analyze_kcfa_naive_with(&program, 1, limits, true);
        let fmt = |r: &cfa_core::NaiveResult| {
            if r.status == Status::Completed {
                r.state_count.to_string()
            } else {
                format!(">{}", r.state_count)
            }
        };
        let reduction = if gc.state_count > 0 {
            format!("{:.1}x", plain.state_count as f64 / gc.state_count as f64)
        } else {
            "-".to_owned()
        };
        println!(
            "{n:>3} {:>6} {:>14} {:>14} {:>10}",
            program.term_count(),
            fmt(&plain),
            fmt(&gc),
            reduction
        );
        if plain.status == Status::Completed && gc.status == Status::Completed {
            assert_eq!(
                plain.halt_values, gc.halt_values,
                "GC must not change results"
            );
        }
    }
    println!();
    println!("Abstract GC collapses states that differ only in dead bindings;");
    println!("halt values are identical with and without collection.");
}

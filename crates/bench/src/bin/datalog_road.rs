//! Experiment E9 — the "Datalog road" (§1): OO k-CFA as a Datalog
//! program.
//!
//! Bravenboer and Smaragdakis's observation — that OO k-CFA is
//! expressible in Datalog and therefore polynomial — is the other half
//! of the paradox. This binary runs the Datalog encoding and the
//! worklist abstract machine side by side on the Figure 1 program family
//! and on random FJ programs, reporting fact counts (which grow
//! polynomially) and confirming the two implementations agree.
//!
//! Usage: `cargo run -p cfa-bench --bin datalog_road --release`

use cfa_core::engine::EngineLimits;
use cfa_fj::{
    analyze_fj, analyze_fj_datalog, parse_fj, FjAnalysisOptions, FjDatalogOptions, TickPolicy,
};
use cfa_workloads::gen_fj::{random_fj_program, FjGenConfig};
use std::time::Instant;

fn main() {
    println!("E9 / §1 — OO k-CFA on the Datalog road vs the abstract machine");
    println!(
        "{:>22} {:>3} {:>9} {:>9} {:>8} {:>11} {:>11} {:>7}",
        "program", "k", "EDB", "fixpoint", "rounds", "datalog", "machine", "agree"
    );

    let mut rows: Vec<(String, String)> = Vec::new();
    for (n, m) in [(2, 2), (4, 4), (8, 8), (12, 12), (16, 16)] {
        rows.push((
            format!("figure1 N={n} M={m}"),
            cfa_workloads::oo_program(n, m),
        ));
    }
    for seed in [7, 8, 9] {
        rows.push((
            format!("random seed={seed}"),
            random_fj_program(
                seed,
                FjGenConfig {
                    classes: 5,
                    main_statements: 10,
                },
            ),
        ));
    }

    for (name, src) in rows {
        let program = parse_fj(&src).expect("program parses");
        for k in [0, 1] {
            let t0 = Instant::now();
            let datalog = analyze_fj_datalog(&program, FjDatalogOptions::sensitive(k));
            let datalog_time = t0.elapsed();
            let machine = analyze_fj(
                &program,
                FjAnalysisOptions {
                    k,
                    policy: TickPolicy::OnInvocation,
                    cast_filtering: false,
                },
                EngineLimits::default(),
            );
            let agree = machine.metrics.call_targets == datalog.call_targets
                && machine.metrics.halt_classes == datalog.halt_classes;
            println!(
                "{name:>22} {k:>3} {:>9} {:>9} {:>8} {:>11} {:>11} {:>7}",
                datalog.edb_facts,
                datalog.total_facts,
                datalog.stats.rounds,
                format!("{:.1?}", datalog_time),
                format!("{:.1?}", machine.metrics.elapsed),
                if agree { "yes" } else { "NO" },
            );
            assert!(agree, "Datalog and machine must agree on {name} (k={k})");
        }
    }

    println!();
    println!("Fact counts grow linearly in N+M on the Figure 1 family — the");
    println!("polynomial bound the Datalog formulation guarantees by construction.");
}

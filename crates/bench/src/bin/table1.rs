//! Experiment E3 — the §6.1.1 worst-case scaling table.
//!
//! Reproduces:
//!
//! ```text
//! Terms   k = 1   m = 1   poly., k=1   k = 0
//!   69      ϵ       ϵ         ϵ          ϵ
//!  ...
//! 1743      ∞     51 m      ∞        3 m 48 s
//! ```
//!
//! The absolute numbers depend on the machine; the *shape* is the
//! result: shared-environment k-CFA explodes orders of magnitude before
//! the flat-environment analyses.
//!
//! Usage: `cargo run -p cfa-bench --bin table1 --release`
//! (set `CFA_CELL_TIMEOUT_SECS` to change the per-cell budget).

use cfa_bench::{cell_budget, fmt_cell, row, run_cell};
use cfa_core::Analysis;

fn main() {
    let budget = cell_budget();
    let panel = Analysis::paper_panel();
    let widths = [5, 6, 10, 10, 12, 10];

    println!("E3 / §6.1.1 — worst-case scaling (per-cell budget {budget:?})");
    println!(
        "{}",
        row(
            &[
                "n".into(),
                "Terms".into(),
                "k=1".into(),
                "m=1".into(),
                "poly k=1".into(),
                "k=0".into(),
            ],
            &widths,
        )
    );

    for wc in cfa_workloads::paper_series_programs() {
        let program = cfa_syntax::compile(&wc.source).expect("worst-case compiles");
        let mut cells = vec![wc.n.to_string(), wc.terms.to_string()];
        for analysis in panel {
            let metrics = run_cell(&program, analysis, budget);
            cells.push(fmt_cell(&metrics));
        }
        println!("{}", row(&cells, &widths));
    }
    println!();
    println!("ϵ = < 1 s; ∞ = exceeded the per-cell budget.");
}

//! Experiments E1 + E2 — the Figure 1 / Figure 2 environment counts.
//!
//! Analyzes the same N×M "paradox program" in both paradigms under
//! 1-CFA and reports the number of abstract environments:
//!
//! * functional form (Figure 2, shared-environment k-CFA): the probe
//!   λ-term is analyzed in `O(N·M)` environments;
//! * OO form (Figure 1, Featherweight Java k-CFA): `O(N+M)` abstract
//!   contexts (`B̂Env ≅ T̂ime` — environments collapse to times);
//! * functional form under m-CFA: `O(N+M)` — the paper's payoff.
//!
//! Usage: `cargo run -p cfa-bench --bin fig12 --release`

use cfa_core::engine::EngineLimits;
use cfa_core::{analyze_kcfa, analyze_mcfa};
use cfa_fj::{analyze_fj, parse_fj, FjAnalysisOptions};

/// Finds the probe λ (parameter `paradox-probe.*`) and returns its
/// entry-environment count.
fn probe_env_count(metrics: &cfa_core::Metrics, program: &cfa_syntax::CpsProgram) -> usize {
    program
        .lam_ids()
        .filter(|&l| {
            program
                .lam(l)
                .params
                .first()
                .map(|p| program.name(*p).starts_with("paradox-probe"))
                .unwrap_or(false)
        })
        .map(|l| metrics.env_count(l))
        .sum()
}

fn main() {
    println!("E1+E2 / Figures 1 & 2 — abstract environment counts under 1-CFA");
    println!();
    println!(
        "{:>3} {:>3}  {:>14} {:>14} {:>14}  {:>14}",
        "N", "M", "fn k=1 (probe)", "fn k=1 (all)", "fn m=1 (all)", "FJ k=1 (times)"
    );

    for (n, m) in [
        (1, 1),
        (2, 2),
        (3, 3),
        (4, 4),
        (6, 6),
        (8, 8),
        (4, 8),
        (8, 4),
    ] {
        let fn_src = cfa_workloads::fn_program(n, m);
        let fn_prog = cfa_syntax::compile(&fn_src).expect("fn program compiles");
        let k1 = analyze_kcfa(&fn_prog, 1, EngineLimits::default());
        let m1 = analyze_mcfa(&fn_prog, 1, EngineLimits::default());
        let probe = probe_env_count(&k1.metrics, &fn_prog);

        let oo_src = cfa_workloads::oo_program(n, m);
        let oo_prog = parse_fj(&oo_src).expect("oo program parses");
        let fj = analyze_fj(&oo_prog, FjAnalysisOptions::oo(1), EngineLimits::default());

        println!(
            "{n:>3} {m:>3}  {probe:>14} {:>14} {:>14}  {:>14}",
            k1.metrics.distinct_envs, m1.metrics.distinct_envs, fj.metrics.time_count,
        );
    }

    println!();
    println!("Expected shape: the probe column grows like N·M; the m-CFA and FJ");
    println!("columns grow like N+M (the k-CFA paradox, Figures 1 and 2).");
}

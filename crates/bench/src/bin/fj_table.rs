//! Experiment E11 — OO speed + precision table (the §6.2 methodology
//! applied to the Featherweight Java side of the bridge).
//!
//! For each OO suite program and each analysis configuration, reports
//! analysis time, reached configurations, and the devirtualization
//! metric (monomorphic / reachable invocation sites — the OO analog of
//! the paper's "number of inlinings"). The Datalog implementation runs
//! alongside as an agreement check.
//!
//! Usage: `cargo run -p cfa-bench --bin fj_table --release`

use cfa_core::engine::EngineLimits;
use cfa_fj::{analyze_fj, analyze_fj_datalog, parse_fj, FjAnalysisOptions, FjDatalogOptions};
use cfa_workloads::suite_fj::fj_suite;

fn main() {
    println!("E11 / §6.2-for-OO — speed and devirtualization precision");
    println!(
        "{:>9} {:>6} | {:>22} {:>9} {:>9} {:>11} {:>7}",
        "program", "stmts", "analysis", "configs", "mono/call", "time", "dl=?"
    );
    for prog in fj_suite() {
        let p = parse_fj(prog.source).unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        let configs = [
            ("OO k=0", FjAnalysisOptions::oo(0)),
            ("OO k=1", FjAnalysisOptions::oo(1)),
            ("OO k=2", FjAnalysisOptions::oo(2)),
            ("paper (per-stmt) k=1", FjAnalysisOptions::paper(1)),
        ];
        for (label, options) in configs {
            let r = analyze_fj(&p, options, EngineLimits::default());
            // Datalog agreement for the OO-policy rows with k ≤ 2.
            let dl = if matches!(options.policy, cfa_fj::TickPolicy::OnInvocation) {
                let d = analyze_fj_datalog(&p, FjDatalogOptions::sensitive(options.k));
                if d.call_targets == r.metrics.call_targets
                    && d.halt_classes == r.metrics.halt_classes
                {
                    "yes"
                } else {
                    "NO"
                }
            } else {
                "-"
            };
            println!(
                "{:>9} {:>6} | {:>22} {:>9} {:>5}/{:<3} {:>11} {:>7}",
                prog.name,
                p.stmt_count(),
                label,
                r.metrics.config_count,
                r.metrics.monomorphic_calls,
                r.metrics.reachable_calls,
                format!("{:.1?}", r.metrics.elapsed),
                dl,
            );
            assert!(dl != "NO", "Datalog disagreement on {}", prog.name);
        }
        println!();
    }
    println!("Context depth buys devirtualization: k=1 resolves receiver-split");
    println!("call sites that k=0 merges, at polynomial cost either way.");
}

//! Experiment E12 — sweeping the context-depth hierarchy.
//!
//! The paper presents k-CFA and m-CFA as *hierarchies* indexed by
//! context depth. This binary sweeps depth 0–2 for all three CPS
//! analyses over representative suite programs, and depth 0–2 for the
//! OO k-CFA over the OO suite, reporting time and precision. The
//! pattern the paper predicts: precision gains cost polynomially in
//! the flat hierarchies (m-CFA, poly-k, OO) but explode for
//! shared-environment k-CFA.
//!
//! Usage: `cargo run -p cfa-bench --bin depth_sweep --release`

use cfa_bench::{cell_budget, fmt_duration_precise, run_cell};
use cfa_core::engine::{EngineLimits, Status};
use cfa_core::Analysis;
use cfa_fj::{analyze_fj, parse_fj, FjAnalysisOptions};

fn main() {
    let budget = cell_budget();
    println!("E12 — the context-depth hierarchy (depths 0, 1, 2)");
    println!();
    println!("functional suite (time, #inlinings):");
    println!(
        "{:>9} | {:>9} | {:>16} {:>16} {:>16}",
        "program", "analysis", "depth 0", "depth 1", "depth 2"
    );
    for prog in cfa_workloads::suite() {
        if !matches!(prog.name, "eta" | "sat" | "regex" | "interp") {
            continue;
        }
        let cps = cfa_syntax::compile(prog.source).expect("suite compiles");
        for family in ["k-CFA", "m-CFA", "poly-k"] {
            let mut cells = Vec::new();
            for depth in 0..=2usize {
                let analysis = match family {
                    "k-CFA" => Analysis::KCfa { k: depth },
                    "m-CFA" => Analysis::MCfa { m: depth },
                    _ => Analysis::PolyKCfa { k: depth },
                };
                let m = run_cell(&cps, analysis, budget);
                cells.push(match m.status {
                    Status::Completed => format!(
                        "{} {}",
                        fmt_duration_precise(m.elapsed),
                        m.singleton_user_calls
                    ),
                    _ => "∞".to_owned(),
                });
            }
            println!(
                "{:>9} | {:>9} | {:>16} {:>16} {:>16}",
                prog.name, family, cells[0], cells[1], cells[2]
            );
        }
        println!();
    }

    println!("OO suite (time, monomorphic/reachable):");
    println!(
        "{:>9} | {:>20} {:>20} {:>20}",
        "program", "k=0", "k=1", "k=2"
    );
    for prog in cfa_workloads::fj_suite() {
        let p = parse_fj(prog.source).expect("suite parses");
        let mut cells = Vec::new();
        for depth in 0..=2usize {
            let r = analyze_fj(
                &p,
                FjAnalysisOptions::oo(depth),
                EngineLimits::timeout(budget),
            );
            cells.push(match r.metrics.status {
                Status::Completed => format!(
                    "{} {}/{}",
                    fmt_duration_precise(r.metrics.elapsed),
                    r.metrics.monomorphic_calls,
                    r.metrics.reachable_calls
                ),
                _ => "∞".to_owned(),
            });
        }
        println!(
            "{:>9} | {:>20} {:>20} {:>20}",
            prog.name, cells[0], cells[1], cells[2]
        );
    }
    println!();
    println!("Depth is nearly free for every flat hierarchy; only shared-");
    println!("environment k-CFA pays super-polynomially (∞ cells, if any).");
}

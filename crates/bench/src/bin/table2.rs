//! Experiment E4 — the §6.2 speed + precision table.
//!
//! For every suite program and every analysis in the paper's panel,
//! reports running time and the number of inlinings the result supports
//! (call sites with a singleton procedure flow set).
//!
//! Expected shape (paper §6.2): m=1 matches k=1's precision at equal or
//! lower cost; naive poly-1CFA matches 0CFA's precision and is
//! sometimes *slower* than k-CFA.
//!
//! Usage: `cargo run -p cfa-bench --bin table2 --release`

use cfa_bench::{cell_budget, fmt_duration_precise, row, run_cell};
use cfa_core::engine::Status;
use cfa_core::Analysis;

fn main() {
    let budget = cell_budget();
    let panel = Analysis::paper_panel();
    let widths = [9, 6, 14, 14, 14, 14];

    println!("E4 / §6.2 — speed and precision (inlinings) per analysis");
    println!(
        "{}",
        row(
            &[
                "Prog".into(),
                "Terms".into(),
                "k=1".into(),
                "m=1".into(),
                "poly k=1".into(),
                "k=0".into(),
            ],
            &widths,
        )
    );

    let mut programs = cfa_workloads::suite();
    programs.extend(cfa_workloads::extended_suite());
    for p in programs {
        let program = cfa_syntax::compile(p.source).expect("suite compiles");
        let mut cells = vec![p.name.to_owned(), program.term_count().to_string()];
        for analysis in panel {
            let m = run_cell(&program, analysis, budget);
            let cell = match m.status {
                Status::Completed => format!(
                    "{} {}",
                    fmt_duration_precise(m.elapsed),
                    m.singleton_user_calls
                ),
                _ => "∞ -".to_owned(),
            };
            cells.push(cell);
        }
        println!("{}", row(&cells, &widths));
    }
    println!();
    println!("Rows below 'scm2c' are classic CFA benchmarks beyond the paper's");
    println!("seven. Each cell: time, then #inlinings (singleton call sites).");
}

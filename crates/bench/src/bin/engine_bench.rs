//! Engine benchmark — the interned delta-driven engine (in both
//! evaluation modes), both parallel store backends, and the retained
//! original engine, measured in the same process on the same workloads.
//!
//! Runs the depth-sweep k-CFA workload (the suite programs the
//! `depth_sweep` experiment uses, plus the paper's worst-case family)
//! through seven engine configurations:
//!
//! * `semi_naive` — `cfa_core::engine::run_fixpoint` (the default:
//!   semi-naive delta-aware transfer functions);
//! * `new` — the same engine under `EvalMode::FullReeval`, i.e. the
//!   PR-2 sequential engine (full re-evaluation on every wakeup), kept
//!   as the baseline the semi-naive column is judged against;
//! * `parallel` — the replicated backend
//!   (`cfa_core::parallel::run_fixpoint_parallel`, per-worker store
//!   copies + all-to-all fact broadcast) at [`PAR_THREADS`] workers,
//!   under the fabric's default adaptive wake-batch coalescing;
//! * `parallel_drain_all` — the same backend under
//!   `WakeBatching::DrainAll` (the pre-fabric inbox discipline) — the
//!   wake-batching *before* cell;
//! * `sharded` — the shared address-sharded store backend
//!   (`cfa_core::shardstore::run_fixpoint_sharded`) at the same thread
//!   count — same fixpoint, O(program) store memory instead of
//!   O(program × threads) — adaptive batching;
//! * `sharded_drain_all` — its drain-all *before* cell;
//! * `reference` — the retained pre-interning engine.
//!
//! Emits `BENCH_engine.json` with wall times, iteration counts, join
//! counts, **value-join volumes** (ids scanned by joins — the number
//! semi-naive evaluation shrinks), `delta_facts`, `delta_applies`
//! (narrowed application sites), **`store_bytes`** (approximate
//! store-resident bytes: summed replicas for `parallel`, the one shared
//! store for `sharded` — the replication-memory cut as a measured
//! number), and the scheduler counters (`steals`, `failed_steals`,
//! `idle_spins`, `inbox_batches`, `inbox_drains`), so future PRs have
//! a perf trajectory to compare against.
//!
//! Also measures the telemetry layer's disabled-path overhead with an
//! interleaved A/B on the heaviest cell (interp k=2): `CFA_TRACE=off`
//! vs `CFA_TRACE=full` runs alternate in one process, and the off arm
//! must stay within 1.03x of the arm that actually pays for tracing
//! (recorded under `trace_overhead` in the JSON).
//!
//! Usage: `cargo run -p cfa-bench --release --bin engine_bench`
//! (writes BENCH_engine.json into the current directory).

use cfa_core::engine::{run_fixpoint_with, EngineLimits, EvalMode, FixpointResult, Status};
use cfa_core::fabric::WakeBatching;
use cfa_core::kcfa::KCfaMachine;
use cfa_core::parallel::run_fixpoint_parallel;
use cfa_core::reference::run_fixpoint_reference;
use cfa_core::shardstore::run_fixpoint_sharded;
use cfa_syntax::cps::CpsProgram;
use std::fmt::Write as _;
use std::time::Instant;

/// Worker threads for the parallel columns.
const PAR_THREADS: usize = 4;

/// One measured engine run.
struct Cell {
    /// Why the run stopped — always `completed` today (cells assert
    /// it), recorded so an interrupted future cell is visible in the
    /// JSON instead of silently shaped like a fast run.
    status: &'static str,
    seconds: f64,
    iterations: u64,
    joins: u64,
    value_joins: u64,
    facts: usize,
    configs: usize,
    skipped: u64,
    wakeups: u64,
    delta_facts: u64,
    delta_applies: u64,
    store_bytes: u64,
    steals: u64,
    failed_steals: u64,
    idle_spins: u64,
    inbox_batches: u64,
    inbox_drains: u64,
}

/// A JSON-safe tag for a run status (the `Aborted` payload carries
/// free-form panic text; the tag alone is recorded).
fn status_tag(s: &Status) -> &'static str {
    match s {
        Status::Completed => "completed",
        Status::IterationLimit => "iteration_limit",
        Status::TimedOut => "timed_out",
        Status::Cancelled => "cancelled",
        Status::Aborted { .. } => "aborted",
    }
}

fn cell_of<C, A, V>(r: &FixpointResult<C, A, V>, seconds: f64) -> Cell
where
    A: Eq + std::hash::Hash + Clone,
    V: Eq + std::hash::Hash + Clone,
{
    Cell {
        status: status_tag(&r.status),
        seconds,
        iterations: r.iterations,
        joins: r.store.join_count(),
        value_joins: r.store.value_join_count(),
        facts: r.store.fact_count(),
        configs: r.config_count(),
        skipped: r.skipped,
        wakeups: r.wakeups,
        delta_facts: r.delta_facts,
        delta_applies: r.delta_applies,
        store_bytes: r.sched.store_resident_bytes,
        steals: r.sched.steals,
        failed_steals: r.sched.failed_steals,
        idle_spins: r.sched.idle_spins,
        inbox_batches: r.sched.inbox_batches,
        inbox_drains: r.sched.inbox_drains,
    }
}

/// Best-of-N over one engine-runner closure.
fn best_of<F: FnMut() -> Cell>(runs: usize, mut run: F) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..runs {
        let cell = run();
        if best.as_ref().is_none_or(|b| cell.seconds < b.seconds) {
            best = Some(cell);
        }
    }
    best.expect("at least one run")
}

/// Best-of-N timing of the sequential delta engine on one cell.
fn run_new(program: &CpsProgram, k: usize, runs: usize, mode: EvalMode) -> Cell {
    best_of(runs, || {
        let mut machine = KCfaMachine::new(program, k);
        let start = Instant::now();
        let r = run_fixpoint_with(&mut machine, EngineLimits::default(), mode);
        let seconds = start.elapsed().as_secs_f64();
        assert!(r.status.is_complete(), "bench cells must complete");
        cell_of(&r, seconds)
    })
}

/// Best-of-N timing of the replicated parallel engine on one cell,
/// under the given wake-batch coalescing policy.
fn run_parallel(program: &CpsProgram, k: usize, runs: usize, batching: WakeBatching) -> Cell {
    let limits = EngineLimits {
        wake_batching: batching,
        ..EngineLimits::default()
    };
    best_of(runs, || {
        let mut machine = KCfaMachine::new(program, k);
        let start = Instant::now();
        let r = run_fixpoint_parallel(&mut machine, PAR_THREADS, limits.clone());
        let seconds = start.elapsed().as_secs_f64();
        assert!(r.status.is_complete(), "bench cells must complete");
        cell_of(&r, seconds)
    })
}

/// Best-of-N timing of the sharded parallel engine on one cell, under
/// the given wake-batch coalescing policy.
fn run_sharded(program: &CpsProgram, k: usize, runs: usize, batching: WakeBatching) -> Cell {
    let limits = EngineLimits {
        wake_batching: batching,
        ..EngineLimits::default()
    };
    best_of(runs, || {
        let mut machine = KCfaMachine::new(program, k);
        let start = Instant::now();
        let r = run_fixpoint_sharded(&mut machine, PAR_THREADS, limits.clone());
        let seconds = start.elapsed().as_secs_f64();
        assert!(r.status.is_complete(), "bench cells must complete");
        cell_of(&r, seconds)
    })
}

/// Best-of-N timing of the reference engine on one cell.
fn run_reference(program: &CpsProgram, k: usize, runs: usize) -> Cell {
    best_of(runs, || {
        let mut machine = KCfaMachine::new(program, k);
        let start = Instant::now();
        let r = run_fixpoint_reference(&mut machine, EngineLimits::default());
        let seconds = start.elapsed().as_secs_f64();
        assert!(r.status.is_complete(), "bench cells must complete");
        Cell {
            status: status_tag(&r.status),
            seconds,
            iterations: r.iterations,
            joins: r.store.join_count(),
            value_joins: 0,
            facts: r.store.fact_count(),
            configs: r.config_count(),
            skipped: 0,
            wakeups: 0,
            delta_facts: 0,
            delta_applies: 0,
            store_bytes: 0,
            steals: 0,
            failed_steals: 0,
            idle_spins: 0,
            inbox_batches: 0,
            inbox_drains: 0,
        }
    })
}

/// Interleaved A/B measurement of the disabled-trace path on one cell.
///
/// The pre-telemetry binary is gone, so the measurable same-binary
/// proxy alternates `CFA_TRACE=off` against `CFA_TRACE=full` runs in
/// one process (drift lands on both arms equally): the off path keeps
/// only the full path's gate branch, so staying within noise of the
/// arm that pays for every ring write bounds the disabled cost from
/// above. Returns per-arm *median* seconds — the cell runs ~0.2 s, so
/// a single descheduling blip would swamp a mean.
fn trace_overhead_ab(program: &CpsProgram, k: usize, repeats: usize) -> (f64, f64) {
    let off = EngineLimits::default();
    let full = EngineLimits {
        trace: cfa_core::TraceConfig::full(),
        ..EngineLimits::default()
    };
    let time = |limits: &EngineLimits| -> f64 {
        let mut machine = KCfaMachine::new(program, k);
        let start = Instant::now();
        let r = run_fixpoint_with(&mut machine, limits.clone(), EvalMode::SemiNaive);
        let seconds = start.elapsed().as_secs_f64();
        assert!(r.status.is_complete(), "overhead cells must complete");
        seconds
    };
    // One unmeasured pair primes allocators and caches.
    time(&off);
    time(&full);
    let (mut off_samples, mut full_samples) = (Vec::new(), Vec::new());
    for _ in 0..repeats {
        off_samples.push(time(&off));
        full_samples.push(time(&full));
    }
    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    (median(&mut off_samples), median(&mut full_samples))
}

fn cell_json(out: &mut String, tag: &str, c: &Cell) {
    let _ = write!(
        out,
        "\"{tag}\": {{\"status\": \"{}\", \"seconds\": {:.6}, \"iterations\": {}, \"joins\": {}, \
         \"value_joins\": {}, \"facts\": {}, \"configs\": {}, \"skipped\": {}, \
         \"wakeups\": {}, \"delta_facts\": {}, \"delta_applies\": {}, \
         \"store_bytes\": {}, \"steals\": {}, \"failed_steals\": {}, \
         \"idle_spins\": {}, \"inbox_batches\": {}, \"inbox_drains\": {}}}",
        c.status,
        c.seconds,
        c.iterations,
        c.joins,
        c.value_joins,
        c.facts,
        c.configs,
        c.skipped,
        c.wakeups,
        c.delta_facts,
        c.delta_applies,
        c.store_bytes,
        c.steals,
        c.failed_steals,
        c.idle_spins,
        c.inbox_batches,
        c.inbox_drains
    );
}

fn main() {
    // The depth-sweep functional workload: the representative suite
    // programs the E12 experiment sweeps, plus the worst-case family
    // (densest store traffic), each at context depths 0..=2.
    let mut workload: Vec<(String, String)> = cfa_workloads::suite()
        .into_iter()
        .filter(|p| matches!(p.name, "eta" | "sat" | "regex" | "interp"))
        .map(|p| (p.name.to_owned(), p.source.to_owned()))
        .collect();
    for n in [2usize, 4, 6] {
        workload.push((
            format!("worst-case-{n}"),
            cfa_workloads::worst_case_source(n),
        ));
    }

    let runs = 3;
    let mut rows: Vec<String> = Vec::new();
    let (mut total_semi, mut total_new, mut total_par, mut total_sh, mut total_ref) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    // Wake-batch coalescing before/after: drain-all is the pre-fabric
    // inbox discipline, adaptive the fabric's bounded-batch default.
    let (mut total_par_drain_all, mut total_sh_drain_all) = (0.0f64, 0.0f64);
    let mut peak_facts = 0usize;
    // The acceptance metric of the sharded backend: its store-resident
    // bytes vs the replicated backend's, on the heaviest cell.
    let (mut interp2_sharded_bytes, mut interp2_replicated_bytes) = (0u64, 0u64);

    println!(
        "{:>14} {:>3} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} | {:>11} {:>11}",
        "program",
        "k",
        "semi (s)",
        "full (s)",
        "par4 (s)",
        "shard4(s)",
        "ref (s)",
        "semi-spd",
        "byte-rat",
        "par bytes",
        "shard bytes"
    );
    for (name, source) in &workload {
        let program = cfa_syntax::compile(source).expect("workload compiles");
        for k in 0..=2usize {
            let semi = run_new(&program, k, runs, EvalMode::SemiNaive);
            let new = run_new(&program, k, runs, EvalMode::FullReeval);
            let parallel = run_parallel(&program, k, runs, WakeBatching::Adaptive);
            let parallel_drain_all = run_parallel(&program, k, runs, WakeBatching::DrainAll);
            let sharded = run_sharded(&program, k, runs, WakeBatching::Adaptive);
            let sharded_drain_all = run_sharded(&program, k, runs, WakeBatching::DrainAll);
            let reference = run_reference(&program, k, runs);
            for (tag, cell) in [
                ("semi-naive", &semi),
                ("full", &new),
                ("parallel", &parallel),
                ("parallel_drain_all", &parallel_drain_all),
                ("sharded", &sharded),
                ("sharded_drain_all", &sharded_drain_all),
            ] {
                assert_eq!(
                    cell.facts, reference.facts,
                    "{name} k={k}: {tag} fixpoint diverges"
                );
                assert_eq!(
                    cell.configs, reference.configs,
                    "{name} k={k}: {tag} config counts diverge"
                );
            }
            assert!(
                semi.value_joins <= new.value_joins,
                "{name} k={k}: semi-naive scanned more ids"
            );
            total_semi += semi.seconds;
            total_new += new.seconds;
            total_par += parallel.seconds;
            total_sh += sharded.seconds;
            total_par_drain_all += parallel_drain_all.seconds;
            total_sh_drain_all += sharded_drain_all.seconds;
            total_ref += reference.seconds;
            peak_facts = peak_facts.max(semi.facts);
            if name == "interp" && k == 2 {
                interp2_sharded_bytes = sharded.store_bytes;
                interp2_replicated_bytes = parallel.store_bytes;
            }
            let speedup = reference.seconds / new.seconds.max(1e-9);
            let par_speedup = semi.seconds / parallel.seconds.max(1e-9);
            let sharded_speedup = semi.seconds / sharded.seconds.max(1e-9);
            let semi_speedup = new.seconds / semi.seconds.max(1e-9);
            let byte_ratio = sharded.store_bytes as f64 / (parallel.store_bytes.max(1)) as f64;
            println!(
                "{:>14} {:>3} | {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} | {:>7.2}x {:>7.2}x | {:>11} {:>11}",
                name,
                k,
                semi.seconds,
                new.seconds,
                parallel.seconds,
                sharded.seconds,
                reference.seconds,
                semi_speedup,
                byte_ratio,
                parallel.store_bytes,
                sharded.store_bytes
            );
            let mut row = String::new();
            let _ = write!(row, "    {{\"program\": \"{name}\", \"k\": {k}, ");
            cell_json(&mut row, "semi_naive", &semi);
            row.push_str(", ");
            cell_json(&mut row, "new", &new);
            row.push_str(", ");
            cell_json(&mut row, "parallel", &parallel);
            row.push_str(", ");
            cell_json(&mut row, "parallel_drain_all", &parallel_drain_all);
            row.push_str(", ");
            cell_json(&mut row, "sharded", &sharded);
            row.push_str(", ");
            cell_json(&mut row, "sharded_drain_all", &sharded_drain_all);
            let _ = write!(row, ", \"parallel_threads\": {PAR_THREADS}, ");
            cell_json(&mut row, "reference", &reference);
            let _ = write!(
                row,
                ", \"speedup\": {speedup:.3}, \"speedup_semi_naive\": {semi_speedup:.3}, \
                 \"speedup_parallel\": {par_speedup:.3}, \
                 \"speedup_sharded\": {sharded_speedup:.3}, \
                 \"sharded_byte_ratio\": {byte_ratio:.3}}}"
            );
            rows.push(row);
        }
    }

    let speedup = total_ref / total_new.max(1e-9);
    let semi_speedup = total_new / total_semi.max(1e-9);
    let par_speedup = total_semi / total_par.max(1e-9);
    let sharded_vs_par = total_par / total_sh.max(1e-9);
    let batching_par = total_par_drain_all / total_par.max(1e-9);
    let batching_sh = total_sh_drain_all / total_sh.max(1e-9);
    let interp2_byte_ratio =
        interp2_sharded_bytes as f64 / (interp2_replicated_bytes.max(1)) as f64;
    println!();
    println!(
        "total: semi-naive {total_semi:.3}s, full {total_new:.3}s, parallel({PAR_THREADS}t) \
         {total_par:.3}s, sharded({PAR_THREADS}t) {total_sh:.3}s, reference {total_ref:.3}s — \
         {semi_speedup:.2}x semi-naive vs full, {speedup:.2}x full vs reference, \
         {par_speedup:.2}x parallel vs semi-naive, {sharded_vs_par:.2}x sharded vs parallel, \
         peak {peak_facts} facts"
    );
    println!(
        "interp k=2 store bytes: sharded {interp2_sharded_bytes} vs replicated \
         {interp2_replicated_bytes} ({interp2_byte_ratio:.3}x)"
    );
    println!(
        "wake batching (adaptive vs drain-all): replicated {total_par:.3}s vs \
         {total_par_drain_all:.3}s ({batching_par:.2}x), sharded {total_sh:.3}s vs \
         {total_sh_drain_all:.3}s ({batching_sh:.2}x)"
    );

    // Disabled-path telemetry overhead, measured not assumed: the
    // ISSUE gate is `CFA_TRACE=off` wall clock <= 1.03x on interp k=2.
    let overhead_repeats = 9usize;
    let interp_src = &workload
        .iter()
        .find(|(n, _)| n == "interp")
        .expect("interp in workload")
        .1;
    let interp_prog = cfa_syntax::compile(interp_src).expect("workload compiles");
    let (trace_off_s, trace_full_s) = trace_overhead_ab(&interp_prog, 2, overhead_repeats);
    let trace_off_ratio = trace_off_s / trace_full_s.max(1e-9);
    println!(
        "telemetry overhead (interp k=2, interleaved x{overhead_repeats}): CFA_TRACE=off \
         {trace_off_s:.4}s vs full {trace_full_s:.4}s ({trace_off_ratio:.3}x)"
    );
    assert!(
        trace_off_ratio <= 1.03,
        "disabled-trace path exceeded the 1.03x overhead gate ({trace_off_ratio:.3}x)"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"engine depth-sweep k-CFA\",");
    let _ = writeln!(json, "  \"runs_per_cell\": {runs},");
    let _ = writeln!(json, "  \"parallel_threads\": {PAR_THREADS},");
    let _ = writeln!(json, "  \"host_cpus\": {},", host_cpus());
    let _ = writeln!(json, "  \"total_seconds_semi_naive\": {total_semi:.6},");
    let _ = writeln!(json, "  \"total_seconds_new\": {total_new:.6},");
    let _ = writeln!(json, "  \"total_seconds_parallel\": {total_par:.6},");
    let _ = writeln!(json, "  \"total_seconds_sharded\": {total_sh:.6},");
    let _ = writeln!(
        json,
        "  \"total_seconds_parallel_drain_all\": {total_par_drain_all:.6},"
    );
    let _ = writeln!(
        json,
        "  \"total_seconds_sharded_drain_all\": {total_sh_drain_all:.6},"
    );
    let _ = writeln!(json, "  \"total_seconds_reference\": {total_ref:.6},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"speedup_semi_naive\": {semi_speedup:.3},");
    let _ = writeln!(json, "  \"speedup_parallel\": {par_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"speedup_sharded_vs_parallel\": {sharded_vs_par:.3},"
    );
    let _ = writeln!(
        json,
        "  \"wake_batching_speedup_parallel\": {batching_par:.3},"
    );
    let _ = writeln!(
        json,
        "  \"wake_batching_speedup_sharded\": {batching_sh:.3},"
    );
    let _ = writeln!(
        json,
        "  \"interp_k2_sharded_byte_ratio\": {interp2_byte_ratio:.3},"
    );
    let _ = writeln!(json, "  \"peak_fact_count\": {peak_facts},");
    let _ = writeln!(
        json,
        "  \"trace_overhead\": {{\"program\": \"interp\", \"k\": 2, \"repeats\": \
         {overhead_repeats}, \"off_seconds\": {trace_off_s:.6}, \"full_seconds\": \
         {trace_full_s:.6}, \"off_vs_full\": {trace_off_ratio:.3}}},"
    );
    let _ = writeln!(json, "  \"cells\": [");
    let _ = writeln!(json, "{}", rows.join(",\n"));
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write("BENCH_engine.json", json).expect("write BENCH_engine.json");
    eprintln!("wrote BENCH_engine.json");
}

/// Logical CPUs of the benchmarking host — parallel speedups are only
/// meaningful relative to this (a 1-CPU container timeslices the
/// workers instead of running them concurrently).
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

//! Corpus-scale differential runner: sweeps the workload suite plus a
//! band of seeded generated programs (sequential *and* concurrent)
//! through all seven engine configurations — sequential,
//! replicated-parallel, and sharded-parallel, each in both eval modes,
//! plus the reference oracle — canonicalizes every fixpoint with
//! `cfa_core::canon`, and diffs the normal forms. The four pooled
//! configurations ride one long-lived [`AnalysisPool`], so programs
//! overlap across pool tenants for free.
//!
//! Any divergence is written as a replayable artifact directory
//! (program source, both snapshots, and the exact `cfa dump` /
//! `cfa compare` commands that reproduce it) and the run exits 1. A
//! run that cannot be compared honestly — any engine stopping short of
//! its fixpoint (timeout, iteration limit, injected fault) — is
//! reported as "not comparable", never as a spurious diff, and the run
//! exits 3.
//!
//! Environment knobs:
//!
//! * `CFA_CORPUS_SIZE` — number of seeded generated programs appended
//!   to the curated corpus (default 16; CI uses the default, nightly
//!   jobs scale it up).
//! * `CFA_CORPUS_SEED` — base seed for the generated band (default 0).
//! * `CFA_CORPUS_ONLY` — substring filter on program names.
//! * `CFA_STORE_BACKEND` — `replicated` | `sharded` | `both` gates the
//!   parallel side, mirroring the CI backend matrix.
//! * `CFA_ARTIFACT_DIR` — where failure artifacts are written (default
//!   `target/corpus-diff`).
//! * The usual engine limits (`CFA_MAX_ITERS`, `CFA_TIME_BUDGET_MS`,
//!   `CFA_FAULT_PLAN`, …) apply to every engine configuration.

use cfa_core::engine::{run_fixpoint_with, EngineLimits, EvalMode, FixpointResult};
use cfa_core::flatcfa::{FlatCfaMachine, FlatPolicy};
use cfa_core::kcfa::KCfaMachine;
use cfa_core::reference::{run_fixpoint_reference, RefFixpointResult, ReferenceMachine};
use cfa_core::{
    Analysis, AnalysisPool, CanonSnapshot, NotComparable, PoolConfig, Replicated, Sharded,
};
use cfa_testsupport::{
    backend_selection, golden_slug, quiet_injected_panics, BackendSelection, PAR_THREADS,
};
use std::fmt::Debug;
use std::hash::Hash;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// One corpus entry: a named program, plus the seed that regenerates it
/// when it came from the random generators.
struct CorpusProgram {
    name: String,
    source: String,
    seed: Option<u64>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|e| panic!("{name}={v:?}: {e}")),
        Err(_) => default,
    }
}

/// The full corpus: every workloads-suite program, the paper's
/// worst-case family, the golden concurrent programs, and
/// `CFA_CORPUS_SIZE` seeded generated programs alternating between the
/// sequential and the spawn/join/atom generators.
fn corpus() -> Vec<CorpusProgram> {
    let mut out: Vec<CorpusProgram> = cfa_workloads::suite()
        .iter()
        .map(|p| CorpusProgram {
            name: p.name.to_owned(),
            source: p.source.to_owned(),
            seed: None,
        })
        .collect();
    out.push(CorpusProgram {
        name: "worst-case n=3".to_owned(),
        source: cfa_workloads::worst_case_source(3),
        seed: None,
    });
    out.push(CorpusProgram {
        name: "fn-program 2x2".to_owned(),
        source: cfa_workloads::fn_program(2, 2),
        seed: None,
    });
    for &(name, src) in cfa_testsupport::golden_racy_programs() {
        out.push(CorpusProgram {
            name: format!("racy: {name}"),
            source: src.to_owned(),
            seed: None,
        });
    }
    for &(name, src) in cfa_testsupport::golden_synchronized_programs() {
        out.push(CorpusProgram {
            name: format!("synchronized: {name}"),
            source: src.to_owned(),
            seed: None,
        });
    }
    let size = env_u64("CFA_CORPUS_SIZE", 16);
    let base = env_u64("CFA_CORPUS_SEED", 0);
    for i in 0..size {
        let seed = base + i;
        let (name, source) = if i % 2 == 0 {
            (
                format!("gen-seq seed={seed}"),
                cfa_testsupport::random_scheme_program(seed, 30),
            )
        } else {
            (
                format!("gen-conc seed={seed}"),
                cfa_testsupport::random_concurrent_scheme_program(seed, 25),
            )
        };
        out.push(CorpusProgram {
            name,
            source,
            seed: Some(seed),
        });
    }
    if let Ok(filter) = std::env::var("CFA_CORPUS_ONLY") {
        out.retain(|p| p.name.contains(&filter));
    }
    out
}

fn mode_flag(mode: EvalMode) -> &'static str {
    match mode {
        EvalMode::SemiNaive => "semi-naive",
        EvalMode::FullReeval => "full-reeval",
    }
}

/// How one engine configuration's run canonicalized: a normal form, or
/// the reason it has none.
type EngineOutcome = (String, Result<CanonSnapshot, String>);

/// Runs one (program, analysis) pair through all seven engine
/// configurations (the parallel side gated by `backends`): the four
/// pooled parallel runs are submitted first, then the reference oracle
/// and the two sequential modes run inline while the pool churns.
fn sweep_engines<M, R, F, G, CF, CR>(
    pool: &AnalysisPool,
    backends: BackendSelection,
    mk: F,
    mk_ref: G,
    canon_fix: CF,
    canon_ref: CR,
) -> Vec<EngineOutcome>
where
    M: cfa_core::ParallelMachine + 'static,
    R: ReferenceMachine<Config = M::Config, Addr = M::Addr, Val = M::Val>,
    M::Config: Send + Sync + Debug + 'static,
    M::Addr: Ord + Send + Sync + 'static,
    M::Val: Ord + Hash + Send + Sync + 'static,
    F: Fn() -> M,
    G: FnOnce() -> R,
    CF: Fn(&FixpointResult<M::Config, M::Addr, M::Val>) -> Result<CanonSnapshot, NotComparable>,
    CR: Fn(&RefFixpointResult<M::Config, M::Addr, M::Val>) -> Result<CanonSnapshot, NotComparable>,
{
    let limits = EngineLimits::from_env;
    let mut handles = Vec::new();
    for mode in [EvalMode::SemiNaive, EvalMode::FullReeval] {
        if backends.replicated {
            handles.push((
                format!("replicated {}", mode_flag(mode)),
                pool.submit::<Replicated, M>(mk(), limits(), mode),
            ));
        }
        if backends.sharded {
            handles.push((
                format!("sharded {}", mode_flag(mode)),
                pool.submit::<Sharded, M>(mk(), limits(), mode),
            ));
        }
    }

    let mut out = Vec::new();
    let r = run_fixpoint_reference(&mut mk_ref(), limits());
    out.push((
        "reference".to_owned(),
        canon_ref(&r).map_err(|e| e.to_string()),
    ));
    for mode in [EvalMode::SemiNaive, EvalMode::FullReeval] {
        let r = run_fixpoint_with(&mut mk(), limits(), mode);
        out.push((
            format!("sequential {}", mode_flag(mode)),
            canon_fix(&r).map_err(|e| e.to_string()),
        ));
    }
    for (name, handle) in handles {
        let run = handle.wait();
        out.push((name, canon_fix(&run.fixpoint).map_err(|e| e.to_string())));
    }
    out
}

fn analysis_flag(analysis: Analysis) -> String {
    match analysis {
        Analysis::KCfa { k } => format!("--kcfa {k}"),
        Analysis::MCfa { m } => format!("--mcfa {m}"),
        Analysis::PolyKCfa { k } => format!("--poly {k}"),
    }
}

/// Writes a replayable failure artifact: the program, both normal
/// forms, and a README with the exact commands (and generator seed)
/// that reproduce the divergence.
#[allow(clippy::too_many_arguments)]
fn write_artifact(
    root: &std::path::Path,
    program: &CorpusProgram,
    analysis: Analysis,
    engine: &str,
    reference_json: &str,
    divergent_json: &str,
    report: &cfa_core::DiffReport,
) -> PathBuf {
    let dir = root.join(format!(
        "{}--{}--{}",
        golden_slug(&program.name),
        golden_slug(&analysis.short_name()),
        golden_slug(engine)
    ));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    std::fs::write(dir.join("program.scm"), &program.source).expect("write program");
    std::fs::write(dir.join("reference.json"), reference_json).expect("write reference snapshot");
    std::fs::write(dir.join("divergent.json"), divergent_json).expect("write divergent snapshot");
    let mut parts = engine.splitn(2, ' ');
    let backend = parts.next().unwrap_or("sequential");
    let mode = parts.next().unwrap_or("semi-naive");
    let flag = analysis_flag(analysis);
    let seed_note = match program.seed {
        Some(seed) => format!(
            "\nThe program came from the seeded generator: regenerate the whole\n\
             corpus band with PROPTEST_SEED={seed} CFA_CORPUS_SEED={seed} \
             CFA_CORPUS_SIZE=1.\n"
        ),
        None => String::new(),
    };
    let readme = format!(
        "# Divergent normal form: {name} [{analysis}] on {engine}\n\n\
         Reproduce with:\n\n\
         ```\n\
         cfa dump {flag} --backend reference --out reference.json program.scm\n\
         cfa dump {flag} --backend {backend} --mode {mode} --threads {threads} \
         --out divergent.json program.scm\n\
         cfa compare reference.json divergent.json\n\
         ```\n\
         {seed_note}\n\
         First divergent facts:\n\n{report}\n",
        name = program.name,
        threads = PAR_THREADS,
        report = report.render(),
    );
    std::fs::write(dir.join("README.md"), readme).expect("write artifact README");
    dir
}

fn main() -> ExitCode {
    quiet_injected_panics();
    let backends = backend_selection();
    let pool = AnalysisPool::new(PoolConfig::from_env());
    let artifact_root = PathBuf::from(
        std::env::var("CFA_ARTIFACT_DIR").unwrap_or_else(|_| "target/corpus-diff".to_owned()),
    );
    let analyses = [
        Analysis::KCfa { k: 1 },
        Analysis::MCfa { m: 1 },
        Analysis::PolyKCfa { k: 1 },
    ];

    let programs = corpus();
    let mut comparisons = 0usize;
    let mut divergences = 0usize;
    let mut not_comparable = 0usize;
    for program in &programs {
        let compiled = match cfa_syntax::compile(&program.source) {
            Ok(p) => Arc::new(p),
            Err(e) => {
                eprintln!("corpus_diff: {}: does not compile: {e}", program.name);
                not_comparable += 1;
                continue;
            }
        };
        let mut engines_run = 0usize;
        for analysis in analyses {
            let outcomes = match analysis {
                Analysis::KCfa { k } => sweep_engines(
                    &pool,
                    backends,
                    || KCfaMachine::new_owned(Arc::clone(&compiled), k),
                    || KCfaMachine::new_owned(Arc::clone(&compiled), k),
                    |r| cfa_core::canon_kcfa(&compiled, k, r),
                    |r| cfa_core::canon_kcfa_ref(&compiled, k, r),
                ),
                Analysis::MCfa { m } => sweep_engines(
                    &pool,
                    backends,
                    || FlatCfaMachine::new_owned(Arc::clone(&compiled), m, FlatPolicy::TopMFrames),
                    || FlatCfaMachine::new_owned(Arc::clone(&compiled), m, FlatPolicy::TopMFrames),
                    |r| cfa_core::canon_mcfa(&compiled, m, r),
                    |r| cfa_core::canon_mcfa_ref(&compiled, m, r),
                ),
                Analysis::PolyKCfa { k } => sweep_engines(
                    &pool,
                    backends,
                    || FlatCfaMachine::new_owned(Arc::clone(&compiled), k, FlatPolicy::LastKCalls),
                    || FlatCfaMachine::new_owned(Arc::clone(&compiled), k, FlatPolicy::LastKCalls),
                    |r| cfa_core::canon_poly_kcfa(&compiled, k, r),
                    |r| cfa_core::canon_poly_kcfa_ref(&compiled, k, r),
                ),
            };
            engines_run += outcomes.len();
            let reference = match &outcomes[0].1 {
                Ok(snapshot) => snapshot.clone(),
                Err(reason) => {
                    // No oracle: nothing on this pair is comparable.
                    for (engine, _) in &outcomes {
                        eprintln!(
                            "not comparable: {} [{analysis}] {engine}: {reason}",
                            program.name
                        );
                        not_comparable += 1;
                    }
                    continue;
                }
            };
            let reference_json = reference.to_json();
            for (engine, outcome) in &outcomes[1..] {
                comparisons += 1;
                match outcome {
                    Err(reason) => {
                        eprintln!(
                            "not comparable: {} [{analysis}] {engine}: {reason}",
                            program.name
                        );
                        not_comparable += 1;
                    }
                    Ok(snapshot) => {
                        let json = snapshot.to_json();
                        if json != reference_json {
                            divergences += 1;
                            let report = cfa_core::diff_snapshots(
                                &reference,
                                snapshot,
                                cfa_core::canon::DEFAULT_DIFF_LIMIT,
                            );
                            let dir = write_artifact(
                                &artifact_root,
                                program,
                                analysis,
                                engine,
                                &reference_json,
                                &json,
                                &report,
                            );
                            eprintln!(
                                "DIVERGENCE: {} [{analysis}] {engine} — artifact at {}\n{}",
                                program.name,
                                dir.display(),
                                report.render()
                            );
                        }
                    }
                }
            }
        }
        println!("ok {} ({engines_run} engine configurations)", program.name);
    }
    pool.shutdown();

    println!(
        "corpus_diff: {} programs, {comparisons} comparisons, \
         {divergences} divergences, {not_comparable} not comparable",
        programs.len()
    );
    if divergences > 0 {
        ExitCode::FAILURE
    } else if not_comparable > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

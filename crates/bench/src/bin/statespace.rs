//! Experiment E6 — naive k-CFA (§3.6) vs the single-threaded store
//! (§3.7).
//!
//! The naive reachable-states algorithm carries a store in every state;
//! the paper notes it is "deeply exponential … even for k = 0". The
//! single-threaded store bounds the system space by one global store.
//! This experiment counts explored states/configurations for both on the
//! worst-case family.
//!
//! Usage: `cargo run -p cfa-bench --bin statespace --release`

use cfa_core::engine::EngineLimits;
use cfa_core::naive::{analyze_kcfa_naive, NaiveLimits};
use cfa_core::{analyze_kcfa, Status};
use std::time::Duration;

fn main() {
    println!("E6 / §3.6 vs §3.7 — state-space comparison at k = 1");
    println!(
        "{:>3} {:>6} {:>16} {:>16} {:>12}",
        "n", "Terms", "naive states", "1-store configs", "ratio"
    );
    let budget = Duration::from_secs(10);
    for n in [1, 2, 3, 4, 5] {
        let src = cfa_workloads::worst_case_source(n);
        let program = cfa_syntax::compile(&src).expect("compiles");
        let naive = analyze_kcfa_naive(
            &program,
            1,
            NaiveLimits {
                max_states: 2_000_000,
                time_budget: Some(budget),
            },
        );
        let fast = analyze_kcfa(&program, 1, EngineLimits::timeout(budget));
        let naive_cell = if naive.status == Status::Completed {
            naive.state_count.to_string()
        } else {
            format!(">{}", naive.state_count)
        };
        let ratio = naive.state_count as f64 / fast.fixpoint.config_count().max(1) as f64;
        println!(
            "{n:>3} {:>6} {naive_cell:>16} {:>16} {ratio:>11.1}x",
            program.term_count(),
            fast.fixpoint.config_count(),
        );
    }
    println!();
    println!("Expected: the naive state count dwarfs the single-threaded-store");
    println!("configuration count and grows much faster with n.");
}

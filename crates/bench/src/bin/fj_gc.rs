//! Experiment E10 — ΓCFA for Featherweight Java (§8 future work).
//!
//! The paper hypothesizes that abstract garbage collection's "benefits
//! for speed and precision will carry over" from the functional world to
//! OO programs. This binary measures the hypothesis on the per-state
//! (§3.6-style) OO machine: state-space size with and without abstract
//! GC, plus abstract counting's singular-address ratio (the must-alias
//! client GC improves).
//!
//! Usage: `cargo run -p cfa-bench --bin fj_gc --release`

use cfa_fj::naive::{analyze_fj_naive, FjNaiveOptions};
use cfa_fj::parse_fj;
use cfa_workloads::gen_fj::{random_fj_program, FjGenConfig};

fn main() {
    println!("E10 / §8 — abstract GC + counting for Featherweight Java (k = 1)");
    println!(
        "{:>22} {:>9} {:>9} {:>7} {:>10} {:>10} {:>7}",
        "program", "states", "states+gc", "shrink", "singular", "singular+gc", "halt="
    );
    let mut rows: Vec<(String, String)> = Vec::new();
    for (n, m) in [(1, 1), (2, 2), (3, 3)] {
        rows.push((
            format!("figure1 N={n} M={m}"),
            cfa_workloads::oo_program(n, m),
        ));
    }
    for seed in [3, 5, 11] {
        rows.push((
            format!("random seed={seed}"),
            random_fj_program(
                seed,
                FjGenConfig {
                    classes: 4,
                    main_statements: 8,
                },
            ),
        ));
    }

    // The per-state search is the §3.6 construction — exponential by
    // design — so every cell runs under a state budget.
    let budget = |opts: FjNaiveOptions| FjNaiveOptions {
        max_states: 60_000,
        ..opts
    };

    for (name, src) in rows {
        let p = parse_fj(&src).expect("program parses");
        let plain = analyze_fj_naive(&p, budget(FjNaiveOptions::paper(1).with_counting()));
        let gc = analyze_fj_naive(
            &p,
            budget(FjNaiveOptions::paper(1).with_gc().with_counting()),
        );
        let both_complete = plain.status == cfa_core::engine::Status::Completed
            && gc.status == cfa_core::engine::Status::Completed;
        let agree = plain.halt_classes == gc.halt_classes;
        println!(
            "{name:>22} {:>9} {:>9} {:>6.1}% {:>9.1}% {:>10.1}% {:>7}",
            if plain.status == cfa_core::engine::Status::Completed {
                plain.state_count.to_string()
            } else {
                format!(">{}", plain.state_count)
            },
            gc.state_count,
            100.0 * (1.0 - gc.state_count as f64 / plain.state_count as f64),
            100.0 * plain.singular_ratio(),
            100.0 * gc.singular_ratio(),
            if !both_complete {
                "capped"
            } else if agree {
                "yes"
            } else {
                "NO"
            },
        );
        assert!(
            !both_complete || agree,
            "GC must preserve halt classes on {name}"
        );
    }

    println!();
    println!("Abstract GC never grows the state space and never changes halt");
    println!("classes; collected stores collide more often, and freed addresses");
    println!("re-allocate as singular — the §8 hypothesis, confirmed for OO.");
}

//! Experiment E5 — the §6 identity example.
//!
//! Without an intervening call, k=1, m=1, and poly-1 all conclude the
//! program's value is `4`. With a call to `do-something` inside
//! `identity`, naive polynomial 1CFA's last-1-call-site context merges
//! the two bindings of `x` (result: `{3, 4}`), while m-CFA's top-1-frame
//! context and k-CFA stay precise (`{4}`).
//!
//! Usage: `cargo run -p cfa-bench --bin identity --release`

use cfa_core::engine::EngineLimits;
use cfa_core::Analysis;
use cfa_workloads::{IDENTITY_PLAIN, IDENTITY_WITH_CALL};

fn main() {
    println!("E5 / §6 — identity example precision");
    for (title, src) in [
        ("without intervening call", IDENTITY_PLAIN),
        ("with intervening (do-something)", IDENTITY_WITH_CALL),
    ] {
        println!("\n{title}:");
        let program = cfa_syntax::compile(src).expect("identity example compiles");
        for analysis in Analysis::paper_panel() {
            let m = cfa_core::analyze(&program, analysis, EngineLimits::default());
            let values: Vec<&str> = m.halt_values.iter().map(String::as_str).collect();
            println!("  {:>10}: {{{}}}", analysis.short_name(), values.join(", "));
        }
    }
    println!();
    println!("Expected: poly k=1 degrades to {{3, 4}} only when the intervening");
    println!("call is present; k=1 and m=1 always answer {{4}} (paper §6).");
}

//! Experiment E7 — the §4.5 Featherweight Java tick-policy ablation.
//!
//! Compares the paper's literal construction (time ticks at every
//! statement) with the conventional OO k-CFA (call-site contexts with
//! caller-context restore on return), plus the cast-filtering precision
//! extension, on the Figure 1 program family.
//!
//! Usage: `cargo run -p cfa-bench --bin fj_ablation --release`

use cfa_core::engine::EngineLimits;
use cfa_fj::{analyze_fj, parse_fj, FjAnalysisOptions, TickPolicy};

fn main() {
    println!("E7 / §4.5 — FJ tick-policy ablation on the Figure 1 program");
    println!(
        "{:>3} {:>3}  {:>26} {:>10} {:>10} {:>10} {:>10}",
        "N", "M", "policy", "configs", "times", "mono", "calls"
    );
    for (n, m) in [(2, 2), (4, 4), (8, 8), (12, 12)] {
        let src = cfa_workloads::oo_program(n, m);
        let program = parse_fj(&src).expect("oo program parses");
        for (label, options) in [
            ("per-statement k=1 (paper)", FjAnalysisOptions::paper(1)),
            ("per-invocation k=1 (OO)", FjAnalysisOptions::oo(1)),
            (
                "per-invocation k=2",
                FjAnalysisOptions {
                    k: 2,
                    ..FjAnalysisOptions::oo(2)
                },
            ),
            (
                "OO k=1 + cast filtering",
                FjAnalysisOptions {
                    cast_filtering: true,
                    k: 1,
                    policy: TickPolicy::OnInvocation,
                },
            ),
        ] {
            let r = analyze_fj(&program, options, EngineLimits::default());
            println!(
                "{n:>3} {m:>3}  {label:>26} {:>10} {:>10} {:>10} {:>10}",
                r.metrics.config_count,
                r.metrics.time_count,
                r.metrics.monomorphic_calls,
                r.metrics.reachable_calls,
            );
        }
    }
    println!();
    println!("Both policies stay polynomial (the §4.4 collapse); per-invocation");
    println!("contexts are the conventional OO points-to instantiation.");
}

//! Pool throughput benchmark — the multi-tenant [`AnalysisPool`]
//! driving the whole workload suite concurrently, per store backend.
//!
//! Submits every suite program (plus the paper's worst-case family at
//! n = 2/4/6) at k = 1 to one long-lived pool, several times over
//! (`CFA_THROUGHPUT_REPEATS`, default 3), and measures:
//!
//! * **analyses/sec** — jobs completed over the batch's wall clock;
//! * **latency percentiles** (p50/p95/p99) — per-job
//!   `queue_wait + elapsed`, i.e. admission to deposit;
//! * **queue wait** — mean and max time jobs spent waiting for a pool
//!   thread, reported separately because the pool does not bill it
//!   against a tenant's `time_budget`;
//! * **latency breakdown** — the same p50/p95/p99 split into its two
//!   components, per-request queue wait and eval time, so a latency
//!   regression is attributable to admission pressure vs slow
//!   fixpoints (merged under `throughput.latency_breakdown`).
//!
//! Every pooled fixpoint is checked *identical* (canonical configs +
//! store) to a solo `analyze_kcfa` run of the same program — the pool
//! must change scheduling, never results. The run aborts on any
//! non-`Completed` tenant or fixpoint divergence.
//!
//! Results are merged into `BENCH_engine.json` under a top-level
//! `"throughput"` key (replacing a previous throughput section,
//! preserving `engine_bench`'s cells). The pool is sized by
//! `CFA_POOL_THREADS` / `CFA_POOL_QUEUE_DEPTH`; `CFA_STORE_BACKEND`
//! (`replicated` | `sharded` | `both`) selects the backends, as in the
//! differential suites.
//!
//! Usage: `cargo run -p cfa-bench --release --bin throughput_bench`
//! (merges into BENCH_engine.json in the current directory).

use cfa_core::engine::{EngineLimits, Status};
use cfa_core::kcfa::{analyze_kcfa, submit_kcfa, KcfaJob};
use cfa_core::parallel::{Replicated, Sharded};
use cfa_core::pool::{AnalysisPool, PoolBackend, PoolConfig};
use cfa_syntax::cps::CpsProgram;
use cfa_testsupport::{backend_selection, fixpoint_of};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One backend's measured batch.
struct ThroughputRow {
    backend: &'static str,
    jobs: usize,
    wall_seconds: f64,
    analyses_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_queue_wait_ms: f64,
    max_queue_wait_ms: f64,
    /// Per-request queue-wait percentiles (ms) — the admission half of
    /// the end-to-end latency.
    queue_wait_pcts_ms: [f64; 3],
    /// Per-request eval-time percentiles (ms) — the fixpoint half.
    eval_pcts_ms: [f64; 3],
}

/// The benchmark corpus: every suite program plus the worst-case
/// family, compiled once and shared by reference with the tenants.
fn corpus() -> Vec<(String, Arc<CpsProgram>)> {
    let mut programs: Vec<(String, Arc<CpsProgram>)> = cfa_workloads::suite()
        .iter()
        .map(|p| {
            (
                p.name.to_owned(),
                Arc::new(cfa_syntax::compile(p.source).expect("suite program compiles")),
            )
        })
        .collect();
    for n in [2usize, 4, 6] {
        programs.push((
            format!("worst-case-{n}"),
            Arc::new(
                cfa_syntax::compile(&cfa_workloads::worst_case_source(n))
                    .expect("worst-case program compiles"),
            ),
        ));
    }
    programs
}

/// The latency at quantile `q` (0.0..=1.0) of a sorted sample, in ms.
fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] * 1e3
}

/// Pushes `repeats` copies of the corpus through one pool and checks
/// every pooled fixpoint against its solo baseline.
fn run_backend<B: PoolBackend>(
    programs: &[(String, Arc<CpsProgram>)],
    baselines: &[cfa_testsupport::Fixpoint<
        cfa_core::kcfa::KConfig,
        cfa_core::kcfa::AddrK,
        cfa_core::kcfa::ValK,
    >],
    repeats: usize,
) -> ThroughputRow {
    let pool = AnalysisPool::new(PoolConfig::from_env());
    let start = Instant::now();
    let jobs: Vec<(usize, KcfaJob)> = (0..repeats)
        .flat_map(|_| {
            programs.iter().enumerate().map(|(i, (_, p))| {
                (
                    i,
                    submit_kcfa::<B>(&pool, Arc::clone(p), 1, EngineLimits::default()),
                )
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(jobs.len());
    let mut queue_waits: Vec<f64> = Vec::with_capacity(jobs.len());
    let mut eval_times: Vec<f64> = Vec::with_capacity(jobs.len());
    let count = jobs.len();
    for (i, job) in jobs {
        let r = job.wait();
        let name = &programs[i].0;
        assert_eq!(
            r.fixpoint.status,
            Status::Completed,
            "{}/{name}: pooled run must complete",
            B::NAME
        );
        assert_eq!(
            fixpoint_of(&r.fixpoint),
            baselines[i],
            "{}/{name}: pooled fixpoint diverged from the solo run",
            B::NAME
        );
        latencies.push((r.fixpoint.queue_wait + r.fixpoint.elapsed).as_secs_f64());
        queue_waits.push(r.fixpoint.queue_wait.as_secs_f64());
        eval_times.push(r.fixpoint.elapsed.as_secs_f64());
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    pool.shutdown();

    latencies.sort_by(f64::total_cmp);
    let mean_queue_wait = queue_waits.iter().sum::<f64>() / queue_waits.len() as f64;
    let max_queue_wait = queue_waits.iter().fold(0.0f64, |a, &b| a.max(b));
    queue_waits.sort_by(f64::total_cmp);
    eval_times.sort_by(f64::total_cmp);
    let pcts = |sorted: &[f64]| -> [f64; 3] {
        [
            percentile_ms(sorted, 0.50),
            percentile_ms(sorted, 0.95),
            percentile_ms(sorted, 0.99),
        ]
    };
    let analyses_per_sec = count as f64 / wall_seconds.max(1e-9);
    assert!(
        analyses_per_sec > 0.0,
        "{}: throughput must be nonzero",
        B::NAME
    );
    ThroughputRow {
        backend: B::NAME,
        jobs: count,
        wall_seconds,
        analyses_per_sec,
        p50_ms: percentile_ms(&latencies, 0.50),
        p95_ms: percentile_ms(&latencies, 0.95),
        p99_ms: percentile_ms(&latencies, 0.99),
        mean_queue_wait_ms: mean_queue_wait * 1e3,
        max_queue_wait_ms: max_queue_wait * 1e3,
        queue_wait_pcts_ms: pcts(&queue_waits),
        eval_pcts_ms: pcts(&eval_times),
    }
}

/// Replaces (or adds) the top-level `"throughput"` key of
/// `BENCH_engine.json`, preserving everything `engine_bench` wrote.
/// Both writers are in this crate, so the textual surgery is on a
/// known shape: the throughput section is always the last key.
fn merge_into_bench_json(section: &str) {
    let path = "BENCH_engine.json";
    let marker = ",\n  \"throughput\":";
    let base = match std::fs::read_to_string(path) {
        Ok(old) => match old.find(marker) {
            Some(pos) => old[..pos].to_owned(),
            None => old
                .trim_end()
                .strip_suffix('}')
                .expect("BENCH_engine.json is a JSON object")
                .trim_end()
                .to_owned(),
        },
        Err(_) => "{\n  \"benchmark\": \"engine depth-sweep k-CFA\"".to_owned(),
    };
    let merged = format!("{base},\n  \"throughput\": {section}\n}}\n");
    std::fs::write(path, merged).expect("write BENCH_engine.json");
    eprintln!("merged throughput table into BENCH_engine.json");
}

fn main() {
    let repeats: usize = std::env::var("CFA_THROUGHPUT_REPEATS")
        .ok()
        .map_or(3, |v| v.parse().expect("CFA_THROUGHPUT_REPEATS: a number"));
    let config = PoolConfig::from_env();
    let programs = corpus();
    let baselines: Vec<_> = programs
        .iter()
        .map(|(_, p)| fixpoint_of(&analyze_kcfa(p, 1, EngineLimits::default()).fixpoint))
        .collect();

    let selection = backend_selection();
    let mut rows: Vec<ThroughputRow> = Vec::new();
    if selection.replicated {
        rows.push(run_backend::<Replicated>(&programs, &baselines, repeats));
    }
    if selection.sharded {
        rows.push(run_backend::<Sharded>(&programs, &baselines, repeats));
    }

    println!(
        "{:>10} | {:>5} {:>9} {:>12} | {:>9} {:>9} {:>9} | {:>10} {:>10}",
        "backend",
        "jobs",
        "wall (s)",
        "analyses/s",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "qwait avg",
        "qwait max"
    );
    for r in &rows {
        println!(
            "{:>10} | {:>5} {:>9.3} {:>12.1} | {:>9.3} {:>9.3} {:>9.3} | {:>10.3} {:>10.3}",
            r.backend,
            r.jobs,
            r.wall_seconds,
            r.analyses_per_sec,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.mean_queue_wait_ms,
            r.max_queue_wait_ms
        );
    }
    for r in &rows {
        println!(
            "{:>10} | queue-wait p50/p95/p99 {:.3}/{:.3}/{:.3} ms | \
             eval p50/p95/p99 {:.3}/{:.3}/{:.3} ms",
            r.backend,
            r.queue_wait_pcts_ms[0],
            r.queue_wait_pcts_ms[1],
            r.queue_wait_pcts_ms[2],
            r.eval_pcts_ms[0],
            r.eval_pcts_ms[1],
            r.eval_pcts_ms[2]
        );
    }
    println!(
        "pool: {} threads, queue depth {}, {} distinct programs x {} repeats — \
         every pooled fixpoint matched its solo run",
        config.threads,
        config.queue_depth,
        programs.len(),
        repeats
    );

    let mut section = String::from("{\n");
    let _ = writeln!(section, "    \"pool_threads\": {},", config.threads);
    let _ = writeln!(section, "    \"queue_depth\": {},", config.queue_depth);
    let _ = writeln!(section, "    \"repeats\": {repeats},");
    let _ = writeln!(section, "    \"distinct_programs\": {},", programs.len());
    let _ = writeln!(section, "    \"backends\": {{");
    let backend_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "      \"{}\": {{\"jobs\": {}, \"wall_seconds\": {:.6}, \
                 \"analyses_per_sec\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"mean_queue_wait_ms\": {:.3}, \
                 \"max_queue_wait_ms\": {:.3}, \"all_completed\": true}}",
                r.backend,
                r.jobs,
                r.wall_seconds,
                r.analyses_per_sec,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.mean_queue_wait_ms,
                r.max_queue_wait_ms
            )
        })
        .collect();
    let _ = writeln!(section, "{}", backend_rows.join(",\n"));
    let _ = writeln!(section, "    }},");
    let _ = writeln!(section, "    \"latency_breakdown\": {{");
    let breakdown_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let obj = |p: &[f64; 3]| {
                format!(
                    "{{\"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                    p[0], p[1], p[2]
                )
            };
            format!(
                "      \"{}\": {{\"queue_wait\": {}, \"eval\": {}}}",
                r.backend,
                obj(&r.queue_wait_pcts_ms),
                obj(&r.eval_pcts_ms)
            )
        })
        .collect();
    let _ = writeln!(section, "{}", breakdown_rows.join(",\n"));
    let _ = writeln!(section, "    }}");
    section.push_str("  }");
    merge_into_bench_json(&section);
}

//! Shared harness utilities for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index). This library provides the
//! per-cell runner with a wall-clock budget and the paper-style
//! formatting (`ϵ` for sub-second runs, `∞` for timeouts).

use cfa_core::engine::{EngineLimits, Status};
use cfa_core::results::Metrics;
use cfa_core::Analysis;
use cfa_syntax::cps::CpsProgram;
use std::time::Duration;

/// Default per-cell wall-clock budget, overridable with the
/// `CFA_CELL_TIMEOUT_SECS` environment variable.
pub fn cell_budget() -> Duration {
    let secs = std::env::var("CFA_CELL_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60);
    Duration::from_secs(secs)
}

/// Runs one `(program, analysis)` cell under the given budget.
pub fn run_cell(program: &CpsProgram, analysis: Analysis, budget: Duration) -> Metrics {
    cfa_core::analyze(program, analysis, EngineLimits::timeout(budget))
}

/// Formats a run the way the paper's §6.1.1 table does: `ϵ` for less
/// than a second, `∞` for a timeout, otherwise seconds/minutes.
pub fn fmt_cell(metrics: &Metrics) -> String {
    match &metrics.status {
        Status::TimedOut | Status::IterationLimit => "∞".to_owned(),
        Status::Cancelled | Status::Aborted { .. } => "✗".to_owned(),
        Status::Completed => fmt_duration(metrics.elapsed),
    }
}

/// Formats a duration in the paper's style.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1.0 {
        "ϵ".to_owned()
    } else if secs < 60.0 {
        format!("{secs:.0} s")
    } else {
        let mins = (secs / 60.0).floor() as u64;
        let rem = secs - (mins as f64) * 60.0;
        format!("{mins} m {rem:.0} s")
    }
}

/// Formats a duration with full precision (for the speed/precision
/// table where sub-second differences matter).
pub fn fmt_duration_precise(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1000.0;
    if ms < 1000.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

/// Renders a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:>width$}  ", width = width));
    }
    out.trim_end().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_matches_paper_style() {
        assert_eq!(fmt_duration(Duration::from_millis(200)), "ϵ");
        assert_eq!(fmt_duration(Duration::from_secs(46)), "46 s");
        assert_eq!(fmt_duration(Duration::from_secs(51 * 60)), "51 m 0 s");
        assert_eq!(fmt_duration(Duration::from_secs(68)), "1 m 8 s");
    }

    #[test]
    fn cells_report_infinity_on_timeout() {
        // The n=10 worst case cannot finish k=1 within 1 ms.
        let p = cfa_syntax::compile(&cfa_workloads::worst_case_source(10)).unwrap();
        let m = run_cell(&p, Analysis::KCfa { k: 1 }, Duration::from_millis(1));
        assert_eq!(fmt_cell(&m), "∞");
    }

    #[test]
    fn fast_cells_report_epsilon() {
        let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
        let m = run_cell(&p, Analysis::KCfa { k: 1 }, Duration::from_secs(5));
        assert_eq!(fmt_cell(&m), "ϵ");
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}

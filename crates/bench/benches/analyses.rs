//! Criterion micro-benchmarks: steady-state timing of each analysis on
//! fixed inputs (complements the table binaries, which measure scaling).

use cfa_core::engine::EngineLimits;
use cfa_core::{analyze_kcfa, analyze_mcfa, analyze_poly_kcfa};
use cfa_fj::{analyze_fj, parse_fj, FjAnalysisOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Keep total bench time reasonable: the scaling stories live in the
/// table binaries; criterion only tracks steady-state regressions.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
}

fn bench_suite_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite");
    tune(&mut group);
    for program in cfa_workloads::suite() {
        // interp/scm2c under k=1 run for seconds per iteration; the
        // table2 binary covers them.
        if matches!(program.name, "interp" | "scm2c") {
            continue;
        }
        let cps = cfa_syntax::compile(program.source).expect("suite compiles");
        group.bench_with_input(BenchmarkId::new("kcfa1", program.name), &cps, |b, p| {
            b.iter(|| analyze_kcfa(p, 1, EngineLimits::default()))
        });
        group.bench_with_input(BenchmarkId::new("mcfa1", program.name), &cps, |b, p| {
            b.iter(|| analyze_mcfa(p, 1, EngineLimits::default()))
        });
        group.bench_with_input(BenchmarkId::new("poly1", program.name), &cps, |b, p| {
            b.iter(|| analyze_poly_kcfa(p, 1, EngineLimits::default()))
        });
        group.bench_with_input(BenchmarkId::new("kcfa0", program.name), &cps, |b, p| {
            b.iter(|| analyze_kcfa(p, 0, EngineLimits::default()))
        });
    }
    group.finish();
}

fn bench_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_case");
    tune(&mut group);
    for n in [2usize, 4, 6] {
        let src = cfa_workloads::worst_case_source(n);
        let cps = cfa_syntax::compile(&src).expect("compiles");
        group.bench_with_input(BenchmarkId::new("kcfa1", n), &cps, |b, p| {
            b.iter(|| analyze_kcfa(p, 1, EngineLimits::default()))
        });
        group.bench_with_input(BenchmarkId::new("mcfa1", n), &cps, |b, p| {
            b.iter(|| analyze_mcfa(p, 1, EngineLimits::default()))
        });
    }
    group.finish();
}

fn bench_fj(c: &mut Criterion) {
    let mut group = c.benchmark_group("fj");
    tune(&mut group);
    for (n, m) in [(4usize, 4usize), (8, 8)] {
        let src = cfa_workloads::oo_program(n, m);
        let program = parse_fj(&src).expect("parses");
        group.bench_with_input(
            BenchmarkId::new("paper_k1", format!("{n}x{m}")),
            &program,
            |b, p| b.iter(|| analyze_fj(p, FjAnalysisOptions::paper(1), EngineLimits::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("oo_k1", format!("{n}x{m}")),
            &program,
            |b, p| b.iter(|| analyze_fj(p, FjAnalysisOptions::oo(1), EngineLimits::default())),
        );
    }
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let src = cfa_workloads::suite()
        .into_iter()
        .find(|p| p.name == "scm2c")
        .unwrap()
        .source;
    c.bench_function("frontend/compile_scm2c", |b| {
        b.iter(|| cfa_syntax::compile(src).unwrap())
    });
}

fn bench_constraints(c: &mut Criterion) {
    let mut group = c.benchmark_group("zerocfa_constraints");
    tune(&mut group);
    for p in cfa_workloads::suite() {
        if !matches!(p.name, "sat" | "scm2c") {
            continue;
        }
        let cps = cfa_syntax::compile(p.source).expect("compiles");
        group.bench_with_input(BenchmarkId::new("solve", p.name), &cps, |b, prog| {
            b.iter(|| cfa_core::constraints::solve_zerocfa(prog))
        });
    }
    group.finish();
}

fn bench_abstract_gc(c: &mut Criterion) {
    use cfa_core::naive::{analyze_kcfa_naive_with, NaiveLimits};
    let src = cfa_workloads::worst_case_source(3);
    let cps = cfa_syntax::compile(&src).expect("compiles");
    let limits = NaiveLimits {
        max_states: 50_000,
        time_budget: None,
    };
    let mut group = c.benchmark_group("naive_gc");
    tune(&mut group);
    group.bench_function("with_gc", |b| {
        b.iter(|| analyze_kcfa_naive_with(&cps, 1, limits, true))
    });
    group.finish();
}

fn bench_fj_datalog(c: &mut Criterion) {
    use cfa_fj::{analyze_fj_datalog, FjDatalogOptions};
    let mut group = c.benchmark_group("fj_datalog");
    tune(&mut group);
    for (n, m) in [(4usize, 4usize), (8, 8)] {
        let src = cfa_workloads::oo_program(n, m);
        let program = parse_fj(&src).expect("parses");
        group.bench_with_input(
            BenchmarkId::new("k1", format!("{n}x{m}")),
            &program,
            |b, p| b.iter(|| analyze_fj_datalog(p, FjDatalogOptions::sensitive(1))),
        );
        group.bench_with_input(
            BenchmarkId::new("k0", format!("{n}x{m}")),
            &program,
            |b, p| b.iter(|| analyze_fj_datalog(p, FjDatalogOptions::insensitive())),
        );
    }
    group.finish();
}

fn bench_fj_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("fj_suite");
    tune(&mut group);
    for prog in cfa_workloads::fj_suite() {
        let program = parse_fj(prog.source).expect("parses");
        group.bench_with_input(BenchmarkId::new("oo_k1", prog.name), &program, |b, p| {
            b.iter(|| analyze_fj(p, FjAnalysisOptions::oo(1), EngineLimits::default()))
        });
    }
    group.finish();
}

fn bench_fj_gamma(c: &mut Criterion) {
    use cfa_fj::naive::{analyze_fj_naive, FjNaiveOptions};
    let src = cfa_workloads::oo_program(2, 2);
    let program = parse_fj(&src).expect("parses");
    let mut group = c.benchmark_group("fj_gamma");
    tune(&mut group);
    group.bench_function("naive_plain", |b| {
        b.iter(|| analyze_fj_naive(&program, FjNaiveOptions::paper(1)))
    });
    group.bench_function("naive_gc", |b| {
        b.iter(|| analyze_fj_naive(&program, FjNaiveOptions::paper(1).with_gc()))
    });
    group.bench_function("naive_gc_counting", |b| {
        b.iter(|| analyze_fj_naive(&program, FjNaiveOptions::paper(1).with_gc().with_counting()))
    });
    group.finish();
}

fn bench_datalog_engine(c: &mut Criterion) {
    use cfa_datalog::{ConstPool, DatalogProgram, Term};
    let mut group = c.benchmark_group("datalog_engine");
    tune(&mut group);
    // Transitive closure over a 60-node cycle: a pure engine stress.
    let v = |s: &str| Term::var(s);
    group.bench_function("tc_cycle_60", |b| {
        b.iter(|| {
            let mut program = DatalogProgram::new();
            let edge = program.relation("edge", 2);
            let path = program.relation("path", 2);
            program
                .rule(
                    path,
                    vec![v("x"), v("y")],
                    vec![(edge, vec![v("x"), v("y")])],
                )
                .unwrap();
            program
                .rule(
                    path,
                    vec![v("x"), v("z")],
                    vec![(path, vec![v("x"), v("y")]), (edge, vec![v("y"), v("z")])],
                )
                .unwrap();
            let mut pool = ConstPool::new();
            let nodes: Vec<_> = (0..60).map(|i| pool.intern(&format!("n{i}"))).collect();
            let mut db = program.database();
            for i in 0..60 {
                db.insert(edge, &[nodes[i], nodes[(i + 1) % 60]]);
            }
            program.run(&mut db);
            db.count(path)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_suite_programs,
    bench_worst_case,
    bench_fj,
    bench_frontend,
    bench_constraints,
    bench_abstract_gc,
    bench_fj_datalog,
    bench_fj_suite,
    bench_fj_gamma,
    bench_datalog_engine
);
criterion_main!(benches);

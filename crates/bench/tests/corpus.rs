//! End-to-end tests of the `corpus_diff` runner: a clean bounded sweep
//! reports zero divergences, and an injected fault is reported as "not
//! comparable" (exit 3), never as a spurious diff.

use std::process::Command;

fn corpus_diff() -> Command {
    Command::new(env!("CARGO_BIN_EXE_corpus_diff"))
}

#[test]
fn bounded_corpus_has_zero_divergences() {
    let out = corpus_diff()
        .env("CFA_CORPUS_ONLY", "eta")
        .env("CFA_CORPUS_SIZE", "0")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ok eta (21 engine configurations)"), "{text}");
    assert!(text.contains("0 divergences"), "{text}");
    assert!(text.contains("0 not comparable"), "{text}");
}

#[test]
fn generated_band_is_reproducible_from_its_seed() {
    // Two runs over the same seeded band must report identical totals —
    // the corpus is a pure function of (CFA_CORPUS_SEED, CFA_CORPUS_SIZE).
    let run = || {
        let out = corpus_diff()
            .env("CFA_CORPUS_ONLY", "gen-")
            .env("CFA_CORPUS_SIZE", "2")
            .env("CFA_CORPUS_SEED", "7")
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    assert!(first.contains("gen-seq seed=7"), "{first}");
    assert!(first.contains("gen-conc seed=8"), "{first}");
    assert_eq!(first, run());
}

#[test]
fn injected_fault_reports_not_comparable_not_a_diff() {
    let out = corpus_diff()
        .env("CFA_CORPUS_ONLY", "eta")
        .env("CFA_CORPUS_SIZE", "0")
        .env("CFA_FAULT_PLAN", "panic_eval=3")
        .output()
        .unwrap();
    // Exit 3: honestly not comparable — neither 0 (a lie) nor 1 (a
    // spurious divergence).
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not comparable"), "{err}");
    assert!(err.contains("aborted"), "{err}");
    assert!(
        !err.contains("DIVERGENCE"),
        "a truncated run must not be diffed: {err}"
    );
}

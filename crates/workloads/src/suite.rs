//! The §6.2 benchmark suite.
//!
//! The paper measures seven R5RS Scheme programs (eta, map, sat, regex,
//! scm2java, interp, scm2c). Those sources are not distributed; this
//! module provides analogs written in our mini-Scheme subset that
//! exercise the same idioms at graded sizes:
//!
//! | name | idiom |
//! |---|---|
//! | `eta` | eta-expansion and composition chains |
//! | `map` | higher-order list processing (map/filter/fold) |
//! | `sat` | back-tracking SAT solver with failure continuations |
//! | `regex` | regular-expression matching via Brzozowski derivatives |
//! | `scm2java` | AST-walking code generator emitting Java-ish text |
//! | `interp` | environment-passing interpreter with host closures |
//! | `scm2c` | two-pass compiler (constant folding + code generation) |
//!
//! All programs terminate under the concrete machines, so the suite also
//! drives differential and soundness tests.

/// A named suite program.
#[derive(Clone, Debug)]
pub struct SuiteProgram {
    /// Short name (matches the paper's table rows).
    pub name: &'static str,
    /// What it exercises.
    pub description: &'static str,
    /// Mini-Scheme source.
    pub source: &'static str,
}

/// `eta`: eta-expansion / composition chains.
pub const ETA: &str = r#"
(define (compose f g) (lambda (x) (f (g x))))
(define (eta f) (lambda (x) (f x)))
(define (twice f) (lambda (x) (f (f x))))
(define (inc n) (+ n 1))
(define (dbl n) (* n 2))
(define (sqr n) (* n n))
(let* ((a (compose (eta inc) (eta dbl)))
       (b (compose (twice (eta inc)) (eta sqr)))
       (c (compose a b))
       (d (twice (compose (eta a) (eta b)))))
  (+ (a 1) (+ (b 2) (+ (c 3) (d 4)))))
"#;

/// `map`: higher-order list processing.
pub const MAP: &str = r#"
(define (my-map f xs)
  (if (null? xs) '() (cons (f (car xs)) (my-map f (cdr xs)))))
(define (my-filter p xs)
  (cond ((null? xs) '())
        ((p (car xs)) (cons (car xs) (my-filter p (cdr xs))))
        (else (my-filter p (cdr xs)))))
(define (my-foldr f z xs)
  (if (null? xs) z (f (car xs) (my-foldr f z (cdr xs)))))
(define (my-foldl f z xs)
  (if (null? xs) z (my-foldl f (f z (car xs)) (cdr xs))))
(define (my-append xs ys)
  (if (null? xs) ys (cons (car xs) (my-append (cdr xs) ys))))
(define (range a b)
  (if (>= a b) '() (cons a (range (+ a 1) b))))
(define (even-num? n) (zero? (remainder n 2)))
(define (plus a b) (+ a b))
(define (sum xs) (my-foldr plus 0 xs))
(define (sqr n) (* n n))
(let* ((xs (range 0 12))
       (squares (my-map sqr xs))
       (evens (my-filter even-num? squares))
       (both (my-append evens (my-map sqr evens))))
  (+ (sum both) (my-foldl plus 0 xs)))
"#;

/// `sat`: back-tracking SAT solver with failure continuations.
pub const SAT: &str = r#"
(define (my-assq k alist)
  (cond ((null? alist) #f)
        ((eq? (car (car alist)) k) (car alist))
        (else (my-assq k (cdr alist)))))
(define (lit-var l) (car l))
(define (lit-pos? l) (car (cdr l)))
(define (mk-lit v pos) (cons v (cons pos '())))
(define (eval-lit l asn)
  (let ((entry (my-assq (lit-var l) asn)))
    (if entry
        (if (lit-pos? l) (cdr entry) (not (cdr entry)))
        #f)))
(define (eval-clause c asn)
  (if (null? c) #f
      (if (eval-lit (car c) asn) #t (eval-clause (cdr c) asn))))
(define (eval-formula f asn)
  (if (null? f) #t
      (if (eval-clause (car f) asn) (eval-formula (cdr f) asn) #f)))
(define (solve vars formula asn fail)
  (if (null? vars)
      (if (eval-formula formula asn) asn (fail))
      (solve (cdr vars) formula
             (cons (cons (car vars) #t) asn)
             (lambda ()
               (solve (cdr vars) formula
                      (cons (cons (car vars) #f) asn)
                      fail)))))
(define (clause2 a b) (cons a (cons b '())))
(define (clause1 a) (cons a '()))
(let* ((f (list
            (clause2 (mk-lit 'p #t) (mk-lit 'q #t))
            (clause2 (mk-lit 'p #f) (mk-lit 'r #t))
            (clause2 (mk-lit 'q #f) (mk-lit 'r #f))
            (clause1 (mk-lit 's #t))
            (clause2 (mk-lit 's #f) (mk-lit 'p #f))))
       (result (solve (list 'p 'q 'r 's) f '() (lambda () 'unsat))))
  (if (eq? result 'unsat) 'unsat 'sat))
"#;

/// `regex`: matching by Brzozowski derivatives.
pub const REGEX: &str = r#"
(define (tag r) (car r))
(define (re-empty) (list 'empty))
(define (re-eps) (list 'eps))
(define (re-chr c) (list 'chr c))
(define (re-seq r s) (list 'seq r s))
(define (re-alt r s) (list 'alt r s))
(define (re-star r) (list 'star r))
(define (second r) (car (cdr r)))
(define (third r) (car (cdr (cdr r))))
(define (nullable? r)
  (cond ((eq? (tag r) 'empty) #f)
        ((eq? (tag r) 'eps) #t)
        ((eq? (tag r) 'chr) #f)
        ((eq? (tag r) 'seq) (and (nullable? (second r)) (nullable? (third r))))
        ((eq? (tag r) 'alt) (or (nullable? (second r)) (nullable? (third r))))
        (else #t)))
(define (deriv r c)
  (cond ((eq? (tag r) 'empty) (re-empty))
        ((eq? (tag r) 'eps) (re-empty))
        ((eq? (tag r) 'chr)
         (if (eq? (second r) c) (re-eps) (re-empty)))
        ((eq? (tag r) 'seq)
         (let ((left (re-seq (deriv (second r) c) (third r))))
           (if (nullable? (second r))
               (re-alt left (deriv (third r) c))
               left)))
        ((eq? (tag r) 'alt)
         (re-alt (deriv (second r) c) (deriv (third r) c)))
        (else (re-seq (deriv (second r) c) r))))
(define (re-match? r cs)
  (if (null? cs)
      (nullable? r)
      (re-match? (deriv r (car cs)) (cdr cs))))
(let* ((ab* (re-star (re-alt (re-chr 'a) (re-chr 'b))))
       (r (re-seq ab* (re-seq (re-chr 'c) (re-star (re-chr 'd)))))
       (yes (re-match? r (list 'a 'b 'b 'a 'c 'd 'd)))
       (no (re-match? r (list 'a 'c 'c))))
  (and yes (not no)))
"#;

/// `scm2java`: an AST-walking code generator (compiler front half).
pub const SCM2JAVA: &str = r#"
(define (tag e) (car e))
(define (second e) (car (cdr e)))
(define (third e) (car (cdr (cdr e))))
(define (mk-num n) (list 'num n))
(define (mk-var v) (list 'var v))
(define (mk-add a b) (list 'add a b))
(define (mk-mul a b) (list 'mul a b))
(define (mk-let v e b) (list 'bind v e b))
(define (paren s) (string-append "(" (string-append s ")")))
(define (gen e)
  (cond ((eq? (tag e) 'num) (->string (second e)))
        ((eq? (tag e) 'var) (->string (second e)))
        ((eq? (tag e) 'add)
         (paren (string-append (gen (second e))
                               (string-append " + " (gen (third e))))))
        ((eq? (tag e) 'mul)
         (paren (string-append (gen (second e))
                               (string-append " * " (gen (third e))))))
        (else
         (string-append "int "
           (string-append (->string (second e))
             (string-append " = "
               (string-append (gen (third e))
                 (string-append "; "
                   (gen (car (cdr (cdr (cdr e)))))))))))))
(define (wrap-class body)
  (string-append "class Out { int run() { return "
                 (string-append body "; } }")))
(let ((prog (mk-let 'x (mk-add (mk-num 1) (mk-num 2))
              (mk-let 'y (mk-mul (mk-var 'x) (mk-num 7))
                (mk-add (mk-var 'x) (mk-var 'y))))))
  (wrap-class (gen prog)))
"#;

/// `interp`: an environment-passing interpreter using host closures.
pub const INTERP: &str = r#"
(define (tag e) (car e))
(define (second e) (car (cdr e)))
(define (third e) (car (cdr (cdr e))))
(define (lookup v env)
  (cond ((null? env) (error 'unbound))
        ((eq? (car (car env)) v) (cdr (car env)))
        (else (lookup v (cdr env)))))
(define (extend env v d) (cons (cons v d) env))
(define (interp e env)
  (cond ((eq? (tag e) 'num) (second e))
        ((eq? (tag e) 'ref) (lookup (second e) env))
        ((eq? (tag e) 'add) (+ (interp (second e) env) (interp (third e) env)))
        ((eq? (tag e) 'mul) (* (interp (second e) env) (interp (third e) env)))
        ((eq? (tag e) 'lam)
         (lambda (d) (interp (third e) (extend env (second e) d))))
        ((eq? (tag e) 'app)
         ((interp (second e) env) (interp (third e) env)))
        ((eq? (tag e) 'if0)
         (if (zero? (interp (second e) env))
             (interp (third e) env)
             (interp (car (cdr (cdr (cdr e)))) env)))
        (else (error 'bad-term))))
(define (num n) (list 'num n))
(define (ref v) (list 'ref v))
(define (add a b) (list 'add a b))
(define (mul a b) (list 'mul a b))
(define (lam v b) (list 'lam v b))
(define (app f a) (list 'app f a))
(let* ((square (lam 'x (mul (ref 'x) (ref 'x))))
       (compose2 (lam 'f (lam 'g (lam 'x (app (ref 'f) (app (ref 'g) (ref 'x)))))))
       (inc (lam 'n (add (ref 'n) (num 1))))
       (prog (app (app (app compose2 square) inc) (num 6))))
  (interp prog '()))
"#;

/// `scm2c`: a two-pass compiler — constant folding, then codegen.
pub const SCM2C: &str = r#"
(define (tag e) (car e))
(define (second e) (car (cdr e)))
(define (third e) (car (cdr (cdr e))))
(define (fourth e) (car (cdr (cdr (cdr e)))))
(define (mk-num n) (list 'num n))
(define (mk-var v) (list 'var v))
(define (mk-add a b) (list 'add a b))
(define (mk-mul a b) (list 'mul a b))
(define (mk-neg a) (list 'neg a))
(define (mk-bind v e b) (list 'bind v e b))
(define (num? e) (eq? (tag e) 'num))
(define (fold e)
  (cond ((eq? (tag e) 'num) e)
        ((eq? (tag e) 'var) e)
        ((eq? (tag e) 'neg)
         (let ((a (fold (second e))))
           (if (num? a) (mk-num (- 0 (second a))) (mk-neg a))))
        ((eq? (tag e) 'add)
         (let* ((a (fold (second e))) (b (fold (third e))))
           (cond ((and (num? a) (num? b)) (mk-num (+ (second a) (second b))))
                 ((and (num? a) (zero? (second a))) b)
                 ((and (num? b) (zero? (second b))) a)
                 (else (mk-add a b)))))
        ((eq? (tag e) 'mul)
         (let* ((a (fold (second e))) (b (fold (third e))))
           (cond ((and (num? a) (num? b)) (mk-num (* (second a) (second b))))
                 ((and (num? a) (= (second a) 1)) b)
                 ((and (num? b) (= (second b) 1)) a)
                 (else (mk-mul a b)))))
        (else (mk-bind (second e) (fold (third e)) (fold (fourth e))))))
(define (paren s) (string-append "(" (string-append s ")")))
(define (binop op a b) (paren (string-append a (string-append op b))))
(define (gen e)
  (cond ((eq? (tag e) 'num) (->string (second e)))
        ((eq? (tag e) 'var) (->string (second e)))
        ((eq? (tag e) 'neg) (paren (string-append "-" (gen (second e)))))
        ((eq? (tag e) 'add) (binop " + " (gen (second e)) (gen (third e))))
        ((eq? (tag e) 'mul) (binop " * " (gen (second e)) (gen (third e))))
        (else
         (string-append "int "
           (string-append (->string (second e))
             (string-append " = "
               (string-append (gen (third e))
                 (string-append "; " (gen (fourth e))))))))))
(define (compile e) (gen (fold e)))
(define (count-nodes e)
  (cond ((eq? (tag e) 'num) 1)
        ((eq? (tag e) 'var) 1)
        ((eq? (tag e) 'neg) (+ 1 (count-nodes (second e))))
        ((eq? (tag e) 'add) (+ 1 (+ (count-nodes (second e)) (count-nodes (third e)))))
        ((eq? (tag e) 'mul) (+ 1 (+ (count-nodes (second e)) (count-nodes (third e)))))
        (else (+ 1 (+ (count-nodes (third e)) (count-nodes (fourth e)))))))
(let* ((prog (mk-bind 'a (mk-add (mk-num 3) (mk-num 4))
               (mk-bind 'b (mk-mul (mk-var 'a) (mk-add (mk-num 0) (mk-var 'a)))
                 (mk-add (mk-neg (mk-var 'b)) (mk-mul (mk-num 1) (mk-var 'a))))))
       (folded-size (count-nodes (fold prog)))
       (code (compile prog)))
  (cons folded-size code))
"#;

/// The §6 identity example *without* an intervening call: all three
/// context-sensitive analyses return only `4`.
pub const IDENTITY_PLAIN: &str = r#"
(define (identity x) x)
(let ((a (identity 3))) (identity 4))
"#;

/// The §6 identity example *with* an intervening call: naive polynomial
/// 1CFA degrades to `{3, 4}`; m-CFA and k-CFA still return `{4}`.
pub const IDENTITY_WITH_CALL: &str = r#"
(define (do-something) 0)
(define (identity x) (let ((ignore (do-something))) x))
(let ((a (identity 3))) (identity 4))
"#;

/// `blur`: the classic control-flow benchmark — an η-expanded loop that
/// "blurs" its higher-order arguments (Van Horn & Mairson's test suite).
pub const BLUR: &str = r#"
(define (id x) x)
(define (blur y) y)
(define (lp a n)
  (if (zero? n)
      (id a)
      (let* ((r ((blur id) #t))
             (s ((blur id) #f)))
        ((blur lp) s (- n 1)))))
(lp #f 2)
"#;

/// `loop2`: two mutually recursive loops exchanging closures (another
/// classic from the k-CFA benchmark sets).
pub const LOOP2: &str = r#"
(define (lp1 f x)
  (if (zero? x)
      (f 0)
      (lp2 (lambda (m) (f (+ m x))) (- x 1))))
(define (lp2 g y)
  (if (zero? y)
      (g 1)
      (lp1 (lambda (n) (g (* n 2))) (- y 1))))
(lp1 (lambda (k) k) 6)
"#;

/// `mj09`: the Midtgaard–Jensen example — a higher-order function whose
/// result closure escapes through two layers.
pub const MJ09: &str = r#"
(define (h b)
  (lambda (u) (if b (u 1) (u 2))))
(define (g k) (k 0))
(define (f c)
  (if c
      ((h #t) (lambda (x) (+ x 10)))
      (g (lambda (y) (+ y 20)))))
(+ (f #t) (f #f))
"#;

/// `primtest`: trial-division primality testing (loop-heavy first-order
/// control flow with a higher-order driver).
pub const PRIMTEST: &str = r#"
(define (divides? d n) (zero? (remainder n d)))
(define (has-divisor? n d)
  (cond ((> (* d d) n) #f)
        ((divides? d n) #t)
        (else (has-divisor? n (+ d 1)))))
(define (prime? n) (if (< n 2) #f (not (has-divisor? n 2))))
(define (count-if p a b)
  (if (> a b)
      0
      (+ (if (p a) 1 0) (count-if p (+ a 1) b))))
(count-if prime? 2 50)
"#;

/// `church`: Church-numeral arithmetic — the canonical higher-order
/// stress test (every number is a two-argument closure tower).
pub const CHURCH: &str = r#"
(define (church-succ n) (lambda (f) (lambda (x) (f ((n f) x)))))
(define (church-add a b) (lambda (f) (lambda (x) ((a f) ((b f) x)))))
(define (church-mul a b) (lambda (f) (a (b f))))
(define (unchurch c) ((c (lambda (k) (+ k 1))) 0))
(let* ((zero (lambda (f) (lambda (x) x)))
       (one (church-succ zero))
       (two (church-succ one))
       (three (church-succ two))
       (five (church-add two three))
       (six (church-mul two three)))
  (+ (unchurch five) (unchurch six)))
"#;

/// `ycomb`: the applicative-order Y combinator driving two recursions —
/// self-application makes flow sets genuinely higher-order.
pub const YCOMB: &str = r#"
(define (y f)
  ((lambda (g) (g g))
   (lambda (h) (f (lambda (v) ((h h) v))))))
(let* ((fact (y (lambda (self)
                  (lambda (n) (if (zero? n) 1 (* n (self (- n 1))))))))
       (tri (y (lambda (self)
                 (lambda (n) (if (zero? n) 0 (+ n (self (- n 1)))))))))
  (+ (fact 5) (tri 6)))
"#;

/// `stream`: lazy streams as thunks — delayed closures flowing through
/// force/map/take (closure-heavy data flow).
pub const STREAM: &str = r#"
(define (s-cons x thunk) (cons x thunk))
(define (s-head s) (car s))
(define (s-tail s) ((cdr s)))
(define (s-from n) (s-cons n (lambda () (s-from (+ n 1)))))
(define (s-map f s)
  (s-cons (f (s-head s)) (lambda () (s-map f (s-tail s)))))
(define (s-take s n)
  (if (zero? n) '() (cons (s-head s) (s-take (s-tail s) (- n 1)))))
(define (sum xs) (if (null? xs) 0 (+ (car xs) (sum (cdr xs)))))
(define (dbl k) (* k 2))
(define (sqr k) (* k k))
(let* ((nats (s-from 1))
       (doubles (s-map dbl nats))
       (squares (s-map sqr nats)))
  (+ (sum (s-take doubles 4)) (sum (s-take squares 3))))
"#;

/// Seven classic CFA benchmarks from the k-CFA literature, extending
/// the paper's seven rows.
pub fn extended_suite() -> Vec<SuiteProgram> {
    vec![
        SuiteProgram {
            name: "blur",
            description: "η-expanded blurring loop",
            source: BLUR,
        },
        SuiteProgram {
            name: "loop2",
            description: "mutually recursive closure loops",
            source: LOOP2,
        },
        SuiteProgram {
            name: "mj09",
            description: "Midtgaard–Jensen escape example",
            source: MJ09,
        },
        SuiteProgram {
            name: "primtest",
            description: "trial-division primality",
            source: PRIMTEST,
        },
        SuiteProgram {
            name: "church",
            description: "Church-numeral arithmetic",
            source: CHURCH,
        },
        SuiteProgram {
            name: "ycomb",
            description: "Y-combinator recursions",
            source: YCOMB,
        },
        SuiteProgram {
            name: "stream",
            description: "lazy streams via thunks",
            source: STREAM,
        },
    ]
}

/// The full suite, in the paper's row order.
pub fn suite() -> Vec<SuiteProgram> {
    vec![
        SuiteProgram {
            name: "eta",
            description: "eta-expansion chains",
            source: ETA,
        },
        SuiteProgram {
            name: "map",
            description: "higher-order list processing",
            source: MAP,
        },
        SuiteProgram {
            name: "sat",
            description: "back-tracking SAT solver",
            source: SAT,
        },
        SuiteProgram {
            name: "regex",
            description: "regex matching via derivatives",
            source: REGEX,
        },
        SuiteProgram {
            name: "scm2java",
            description: "AST-walking Java code generator",
            source: SCM2JAVA,
        },
        SuiteProgram {
            name: "interp",
            description: "environment-passing interpreter",
            source: INTERP,
        },
        SuiteProgram {
            name: "scm2c",
            description: "two-pass compiler (fold + codegen)",
            source: SCM2C,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_compile() {
        for p in suite() {
            let cps = cfa_syntax::compile(p.source).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(cps.term_count() > 50, "{} too small", p.name);
        }
    }

    #[test]
    fn sizes_are_graded() {
        let sizes: Vec<(usize, &str)> = suite()
            .iter()
            .map(|p| (cfa_syntax::compile(p.source).unwrap().term_count(), p.name))
            .collect();
        // eta is the smallest; scm2c among the largest.
        let eta = sizes.iter().find(|(_, n)| *n == "eta").unwrap().0;
        let scm2c = sizes.iter().find(|(_, n)| *n == "scm2c").unwrap().0;
        assert!(scm2c > eta * 2, "sizes: {sizes:?}");
    }

    #[test]
    fn identity_examples_compile() {
        assert!(cfa_syntax::compile(IDENTITY_PLAIN).is_ok());
        assert!(cfa_syntax::compile(IDENTITY_WITH_CALL).is_ok());
    }

    #[test]
    fn extended_suite_compiles() {
        for p in extended_suite() {
            cfa_syntax::compile(p.source).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }
}

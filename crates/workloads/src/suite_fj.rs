//! An object-oriented benchmark suite for the Featherweight Java
//! analyses.
//!
//! The paper's §6.2 table measures Scheme programs; its §4 constructs
//! k-CFA for Java but never benchmarks OO programs beyond the Figure 1
//! family. This suite fills that gap with six Featherweight Java
//! programs written in the idioms OO points-to evaluations use
//! (Lhoták & Hendren's categories): deep dispatch hierarchies,
//! container traversal, state machines, visitors, observers, and
//! wrapper chains. Featherweight Java has no `if`, so *dynamic dispatch
//! is the only control flow* — each program's recursion terminates
//! because the receiver chain is finite.
//!
//! Every program runs to completion on the concrete machine and
//! completes under every analysis, so the suite also drives
//! differential tests (worklist vs Datalog vs naive vs concrete).

/// A named Featherweight Java suite program.
#[derive(Clone, Debug)]
pub struct FjSuiteProgram {
    /// Short name (rows of the OO speed/precision table).
    pub name: &'static str,
    /// What it exercises.
    pub description: &'static str,
    /// Featherweight Java source.
    pub source: &'static str,
}

/// `shapes`: a dispatch hierarchy with a driver that measures through a
/// base-typed variable (devirtualization stress).
pub const SHAPES: &str = r#"
class Shape extends Object {
  Shape() { super(); }
  Shape norm() { return this; }
  Object area() { Object d; d = new Object(); return d; }
}
class Circle extends Shape {
  Circle() { super(); }
  Object area() { Object c; c = new Circle(); return c; }
}
class Square extends Shape {
  Square() { super(); }
  Object area() { Object s; s = new Square(); return s; }
}
class Tri extends Shape {
  Tri() { super(); }
  Shape norm() { return new Square(); }
  Object area() { Object t; t = new Tri(); return t; }
}
class Main extends Object {
  Main() { super(); }
  Object measure(Shape s) { Shape n; n = s.norm(); return n.area(); }
  Object main() {
    Object a;
    a = this.measure(new Circle());
    Object b;
    b = this.measure(new Tri());
    Object c;
    c = this.measure(new Square());
    return c;
  }
}
"#;

/// `list`: Nil/Cons containers traversed by dispatch (the OO analog of
/// `map` — recursion terminates because the spine is finite).
pub const LIST: &str = r#"
class List extends Object {
  List() { super(); }
  List wrapAll() { return this; }
  Object head() { Object d; d = new Object(); return d; }
}
class Nil extends List {
  Nil() { super(); }
  List wrapAll() { return new Nil(); }
}
class Cons extends List {
  Object item;
  List tail;
  Cons(Object item0, List tail0) { super(); this.item = item0; this.tail = tail0; }
  Object head() { return this.item; }
  List wrapAll() {
    List rest;
    rest = this.tail.wrapAll();
    Box b;
    b = new Box(this.item);
    return new Cons(b, rest);
  }
}
class Box extends Object {
  Object boxed;
  Box(Object boxed0) { super(); this.boxed = boxed0; }
  Object unwrap() { return this.boxed; }
}
class Payload extends Object { Payload() { super(); } }
class Main extends Object {
  Main() { super(); }
  Object main() {
    List xs;
    xs = new Cons(new Payload(), new Cons(new Payload(), new Nil()));
    List ys;
    ys = xs.wrapAll();
    Object h;
    h = ys.head();
    Box b;
    b = (Box) h;
    return b.unwrap();
  }
}
"#;

/// `states`: a traffic-light state machine; transitions return the next
/// state object, and the driver threads it through.
pub const STATES: &str = r#"
class State extends Object {
  State() { super(); }
  State next() { return this; }
  Object color() { Object d; d = new Object(); return d; }
}
class Red extends State {
  Red() { super(); }
  State next() { return new Green(); }
  Object color() { Object c; c = new Red(); return c; }
}
class Green extends State {
  Green() { super(); }
  State next() { return new Amber(); }
  Object color() { Object c; c = new Green(); return c; }
}
class Amber extends State {
  Amber() { super(); }
  State next() { return new Red(); }
  Object color() { Object c; c = new Amber(); return c; }
}
class Main extends Object {
  Main() { super(); }
  State step2(State s) { State t; t = s.next(); return t.next(); }
  Object main() {
    State s0;
    s0 = new Red();
    State s2;
    s2 = this.step2(s0);
    State s4;
    s4 = this.step2(s2);
    return s4.color();
  }
}
"#;

/// `exprs`: an arithmetic expression tree evaluated by dispatch (the OO
/// analog of `interp`). Values are Num wrappers; Add/Mul combine them.
pub const EXPRS: &str = r#"
class Val extends Object {
  Val() { super(); }
  Val plus(Val other) { return other; }
  Val times(Val other) { return this; }
}
class Expr extends Object {
  Expr() { super(); }
  Val eval() { return new Val(); }
}
class Num extends Expr {
  Val held;
  Num(Val held0) { super(); this.held = held0; }
  Val eval() { return this.held; }
}
class Add extends Expr {
  Expr left;
  Expr right;
  Add(Expr left0, Expr right0) { super(); this.left = left0; this.right = right0; }
  Val eval() {
    Val a;
    a = this.left.eval();
    Val b;
    b = this.right.eval();
    return a.plus(b);
  }
}
class Mul extends Expr {
  Expr left;
  Expr right;
  Mul(Expr left0, Expr right0) { super(); this.left = left0; this.right = right0; }
  Val eval() {
    Val a;
    a = this.left.eval();
    Val b;
    b = this.right.eval();
    return a.times(b);
  }
}
class Main extends Object {
  Main() { super(); }
  Object main() {
    Expr two;
    two = new Num(new Val());
    Expr three;
    three = new Num(new Val());
    Expr sum;
    sum = new Add(two, three);
    Expr prod;
    prod = new Mul(sum, new Num(new Val()));
    Val result;
    result = prod.eval();
    return result;
  }
}
"#;

/// `observer`: a subject notifying two observers through a shared
/// interface; notifications return receipts that flow back.
pub const OBSERVER: &str = r#"
class Receipt extends Object { Receipt() { super(); } }
class AckA extends Receipt { AckA() { super(); } }
class AckB extends Receipt { AckB() { super(); } }
class Observer extends Object {
  Observer() { super(); }
  Receipt notify(Object event) { return new Receipt(); }
}
class ObsA extends Observer {
  ObsA() { super(); }
  Receipt notify(Object event) { return new AckA(); }
}
class ObsB extends Observer {
  ObsB() { super(); }
  Receipt notify(Object event) { return new AckB(); }
}
class Subject extends Object {
  Observer first;
  Observer second;
  Subject(Observer first0, Observer second0) {
    super();
    this.first = first0;
    this.second = second0;
  }
  Receipt fire(Object event) {
    Receipt r1;
    r1 = this.first.notify(event);
    Receipt r2;
    r2 = this.second.notify(event);
    return r2;
  }
}
class Event extends Object { Event() { super(); } }
class Main extends Object {
  Main() { super(); }
  Object main() {
    Subject s;
    s = new Subject(new ObsA(), new ObsB());
    Receipt r;
    r = s.fire(new Event());
    return r;
  }
}
"#;

/// `wrappers`: deep decorator chains (the Figure 1 idiom generalized) —
/// each layer closes over the previous one, testing heap context depth.
pub const WRAPPERS: &str = r#"
class Layer extends Object {
  Object inner;
  Layer(Object inner0) { super(); this.inner = inner0; }
  Object peel() { return this.inner; }
  Layer rewrap() { return new Layer(this.peel()); }
}
class Core extends Object { Core() { super(); } }
class Main extends Object {
  Main() { super(); }
  Layer wrap3(Object base) {
    Layer l1;
    l1 = new Layer(base);
    Layer l2;
    l2 = new Layer(l1);
    return new Layer(l2);
  }
  Object main() {
    Layer deep;
    deep = this.wrap3(new Core());
    Layer again;
    again = deep.rewrap();
    Object p1;
    p1 = again.peel();
    Layer mid;
    mid = (Layer) p1;
    Object p2;
    p2 = mid.peel();
    Layer low;
    low = (Layer) p2;
    return low.peel();
  }
}
"#;

/// The OO suite, graded roughly by size.
pub fn fj_suite() -> Vec<FjSuiteProgram> {
    vec![
        FjSuiteProgram {
            name: "shapes",
            description: "dispatch hierarchy + devirtualization driver",
            source: SHAPES,
        },
        FjSuiteProgram {
            name: "states",
            description: "state-machine transitions as dispatch",
            source: STATES,
        },
        FjSuiteProgram {
            name: "observer",
            description: "subject/observer notification fan-out",
            source: OBSERVER,
        },
        FjSuiteProgram {
            name: "wrappers",
            description: "decorator chains over a shared core",
            source: WRAPPERS,
        },
        FjSuiteProgram {
            name: "list",
            description: "Nil/Cons traversal by dispatch",
            source: LIST,
        },
        FjSuiteProgram {
            name: "exprs",
            description: "expression-tree evaluation by dispatch",
            source: EXPRS,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_distinct_programs() {
        let names: std::collections::BTreeSet<&str> = fj_suite().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn sources_declare_main() {
        for p in fj_suite() {
            assert!(p.source.contains("class Main"), "{} lacks Main", p.name);
            assert!(
                p.source.contains("Object main()"),
                "{} lacks main()",
                p.name
            );
        }
    }
}

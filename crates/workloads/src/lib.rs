//! Workloads for the k-CFA paradox reproduction: the paper's worst-case
//! family (§6.1.1), the Figure 1/2 paradox programs, the §6.2 benchmark
//! suite, and a random program generator for property tests.
//!
//! # Examples
//!
//! ```
//! // The worst-case family forces shared-environment k-CFA to its
//! // lattice top.
//! let wc = cfa_workloads::worstcase::worst_case_source(4);
//! let cps = cfa_syntax::compile(&wc).unwrap();
//! assert!(cps.lam_count() >= 9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod gen;
pub mod gen_fj;
pub mod suite;
pub mod suite_fj;
pub mod worstcase;

pub use figures::{fn_program, oo_program};
pub use gen::{random_concurrent_program, random_program};
pub use suite::{extended_suite, suite, SuiteProgram, IDENTITY_PLAIN, IDENTITY_WITH_CALL};
pub use suite_fj::{fj_suite, FjSuiteProgram};
pub use worstcase::{paper_series, paper_series_programs, worst_case_source, WorstCase};

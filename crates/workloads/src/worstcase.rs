//! The Van Horn–Mairson worst-case family (paper §2.2 and §6.1.1).
//!
//! The paper's exponential-hardness witness binds each of `n` variables
//! at two distinct call sites and then closes a λ-term over all of them:
//!
//! ```text
//! ((λ (f1) (f1 0) (f1 1))
//!  (λ (x1)
//!    ⋮
//!    ((λ (fn) (fn 0) (fn 1))
//!     (λ (xn)
//!       (λ (z) (z x1 … xn)))) ⋯ ))
//! ```
//!
//! Under 1-CFA each `xᵢ` has two abstract binding contexts, and because
//! shared-environment closures may combine bindings from different
//! contexts there are `2ⁿ` abstract environments closing the inner
//! λ-term — the analysis is forced to the top of its lattice. Flat
//! environments (m-CFA, poly-k-CFA) collapse each environment to a
//! single context and stay polynomial.
//!
//! §6.1.1 uses exactly this family, scaled to terms of size 69 … 1743,
//! as the "worst-case" benchmark series.

/// Generates the worst-case program with `n` doubly-bound variables,
/// in mini-Scheme surface syntax.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let src = cfa_workloads::worstcase::worst_case_source(3);
/// let cps = cfa_syntax::compile(&src).unwrap();
/// assert!(cps.term_count() > 30);
/// ```
pub fn worst_case_source(n: usize) -> String {
    assert!(n > 0, "worst-case family needs at least one variable");
    // Innermost payload: (lambda (z) (z x1 … xn)).
    let mut body = {
        let mut call = String::from("(z");
        for i in 1..=n {
            call.push_str(&format!(" x{i}"));
        }
        call.push(')');
        format!("(lambda (z) {call})")
    };
    // Wrap outward: ((lambda (fi) (begin (fi 0) (fi 1))) (lambda (xi) body)).
    for i in (1..=n).rev() {
        body = format!("((lambda (f{i}) (begin (f{i} 0) (f{i} 1))) (lambda (x{i}) {body}))");
    }
    body
}

/// The sequence of `n` values whose generated programs roughly double in
/// size, mirroring the §6.1.1 series (69, 123, 231, 447, 879, 1743
/// terms in the paper's counting).
pub fn paper_series() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

/// A generated worst-case benchmark instance.
#[derive(Clone, Debug)]
pub struct WorstCase {
    /// Number of doubly-bound variables.
    pub n: usize,
    /// Mini-Scheme source.
    pub source: String,
    /// CPS term count (the paper's "Terms" column).
    pub terms: usize,
}

/// Generates the full §6.1.1 benchmark series with term counts.
pub fn paper_series_programs() -> Vec<WorstCase> {
    paper_series()
        .into_iter()
        .map(|n| {
            let source = worst_case_source(n);
            let terms = cfa_syntax::compile(&source)
                .expect("worst-case source is well-formed")
                .term_count();
            WorstCase { n, source, terms }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_well_formed_programs() {
        for n in [1, 2, 4, 8] {
            let src = worst_case_source(n);
            let cps = cfa_syntax::compile(&src).expect(&src);
            assert!(cps.lam_count() > 2 * n);
        }
    }

    #[test]
    fn sizes_roughly_double() {
        let programs = paper_series_programs();
        for pair in programs.windows(2) {
            let ratio = pair[1].terms as f64 / pair[0].terms as f64;
            assert!(
                (1.3..=2.5).contains(&ratio),
                "terms {} -> {} (ratio {ratio})",
                pair[0].terms,
                pair[1].terms
            );
        }
    }

    #[test]
    fn inner_lambda_has_all_free_variables() {
        let cps = cfa_syntax::compile(&worst_case_source(5)).unwrap();
        let max_free = cps.lam_ids().map(|l| cps.free_vars(l).len()).max().unwrap();
        assert!(max_free >= 5, "inner λ must close over all n variables");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_is_rejected() {
        let _ = worst_case_source(0);
    }
}

//! Seeded random Featherweight Java program generation.
//!
//! Produces well-formed FJ programs: a small class hierarchy with
//! fields and methods, and a `Main.main` that allocates objects, reads
//! fields, invokes methods (including overridden ones), and casts.
//! Programs are recursion-free, so the concrete machine always halts;
//! the FJ property tests drive differential and soundness checks with
//! these.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

struct FjGen {
    rng: StdRng,
}

impl FjGen {
    /// Picks a random element.
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.rng.gen_range(0..items.len());
        &items[i]
    }
}

/// Configuration for the generator.
#[derive(Copy, Clone, Debug)]
pub struct FjGenConfig {
    /// Number of non-`Main` classes (at least 2).
    pub classes: usize,
    /// Statements in `main` (at least 2).
    pub main_statements: usize,
}

impl Default for FjGenConfig {
    fn default() -> Self {
        FjGenConfig {
            classes: 4,
            main_statements: 8,
        }
    }
}

/// Generates a well-formed FJ program from `seed`.
///
/// The hierarchy: `C0 extends Object`, each later class extends a
/// random earlier one. Every class gets a `get()`/`wrap(x)` pair (some
/// overriding the inherited version), and classes with odd index carry
/// a field.
///
/// # Examples
///
/// ```
/// let src = cfa_workloads::gen_fj::random_fj_program(7, Default::default());
/// assert!(src.contains("class Main"));
/// ```
pub fn random_fj_program(seed: u64, config: FjGenConfig) -> String {
    let mut g = FjGen {
        rng: StdRng::seed_from_u64(seed),
    };
    let n = config.classes.max(2);
    let mut out = String::new();
    let class_names: Vec<String> = (0..n).map(|i| format!("C{i}")).collect();

    for i in 0..n {
        let name = &class_names[i];
        let parent = if i == 0 {
            "Object".to_owned()
        } else {
            class_names[g.rng.gen_range(0..i)].clone()
        };
        // Does the parent chain carry a field? Track: odd classes add one.
        let has_own_field = i % 2 == 1;
        // Count inherited fields by walking our naming convention: every
        // odd-index ancestor contributes one. For simplicity we record
        // the ancestor fields explicitly while generating.
        let inherited = inherited_fields(&out, &parent);
        let _ = writeln!(out, "class {name} extends {parent} {{");
        if has_own_field {
            let _ = writeln!(out, "  Object f{i};");
        }
        // Constructor: forward inherited fields, then own.
        let mut params: Vec<String> = (0..inherited).map(|j| format!("Object p{j}")).collect();
        if has_own_field {
            params.push(format!("Object q{i}"));
        }
        let super_args: Vec<String> = (0..inherited).map(|j| format!("p{j}")).collect();
        let _ = writeln!(
            out,
            "  {name}({}) {{ super({}); {} }}",
            params.join(", "),
            super_args.join(", "),
            if has_own_field {
                format!("this.f{i} = q{i};")
            } else {
                String::new()
            }
        );
        // A get() method: returns this, a new object, or a field.
        let body = if has_own_field && g.rng.gen_bool(0.5) {
            format!("return this.f{i};")
        } else if g.rng.gen_bool(0.5) {
            "return this;".to_owned()
        } else {
            "Object t; t = new Object(); return t;".to_owned()
        };
        let _ = writeln!(out, "  Object get() {{ {body} }}");
        // A wrap(x) method: returns the argument or dispatches get().
        let wrap_body = if g.rng.gen_bool(0.5) {
            "return x;".to_owned()
        } else {
            "return this.get();".to_owned()
        };
        let _ = writeln!(out, "  Object wrap(Object x) {{ {wrap_body} }}");
        let _ = writeln!(out, "}}");
    }

    // Main: allocate, invoke, read, cast.
    let _ = writeln!(out, "class Main extends Object {{");
    let _ = writeln!(out, "  Main() {{ super(); }}");
    let _ = writeln!(out, "  Object main() {{");
    let mut vars: Vec<String> = Vec::new();
    // Variables that definitely hold an instance of a generated class
    // (safe receivers for get()/wrap()).
    let mut safe: Vec<String> = Vec::new();
    for s in 0..config.main_statements.max(2) {
        let v = format!("v{s}");
        let class_idx = g.rng.gen_range(0..n);
        let class = &class_names[class_idx];
        let choice = g.rng.gen_range(0..5);
        let stmt = match choice {
            // Allocation (constructor arity must match the field count).
            0 | 1 => {
                let arity = ctor_arity(&out, class);
                let args: Vec<String> = (0..arity)
                    .map(|_| {
                        if vars.is_empty() || g.rng.gen_bool(0.4) {
                            "new Object()".to_owned()
                        } else {
                            g.pick(&vars).clone()
                        }
                    })
                    .collect();
                safe.push(v.clone());
                format!("Object {v}; {v} = new {class}({});", args.join(", "))
            }
            // Method invocation on a variable known to hold a generated
            // class instance.
            2 | 3 if !safe.is_empty() => {
                let recv = g.pick(&safe).clone();
                if g.rng.gen_bool(0.5) || vars.is_empty() {
                    format!("Object {v}; {v} = {recv}.get();")
                } else {
                    let arg = g.pick(&vars).clone();
                    format!("Object {v}; {v} = {recv}.wrap({arg});")
                }
            }
            // Cast (unchecked copy per Fig 6) or plain copy.
            _ if !vars.is_empty() => {
                let src = g.pick(&vars).clone();
                if g.rng.gen_bool(0.5) {
                    format!("Object {v}; {v} = ({class}) {src};")
                } else {
                    format!("Object {v}; {v} = {src};")
                }
            }
            _ => {
                safe.push(v.clone());
                format!("Object {v}; {v} = new C0();")
            }
        };
        let _ = writeln!(out, "    {stmt}");
        vars.push(v);
    }
    let last = vars.last().expect("at least one statement");
    let _ = writeln!(out, "    return {last};");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Counts constructor parameters for `class` by scanning the generated
/// text (the generator's own bookkeeping).
fn ctor_arity(generated: &str, class: &str) -> usize {
    let marker = format!("  {class}(");
    let Some(start) = generated.find(&marker) else {
        return 0;
    };
    let rest = &generated[start + marker.len()..];
    let end = rest.find(')').unwrap_or(0);
    let params = &rest[..end];
    if params.trim().is_empty() {
        0
    } else {
        params.split(',').count()
    }
}

/// Counts all fields of `class` (inherited + own) by scanning.
fn inherited_fields(generated: &str, class: &str) -> usize {
    if class == "Object" {
        return 0;
    }
    ctor_arity(generated, class)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_have_expected_shape() {
        for seed in 0..40 {
            let src = random_fj_program(seed, FjGenConfig::default());
            assert!(src.contains("class Main"), "seed {seed}");
            assert!(src.contains("return"), "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_fj_program(3, FjGenConfig::default());
        let b = random_fj_program(3, FjGenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_vary_output() {
        let distinct: std::collections::BTreeSet<String> = (0..20)
            .map(|s| random_fj_program(s, FjGenConfig::default()))
            .collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn config_scales_size() {
        let small = random_fj_program(
            1,
            FjGenConfig {
                classes: 2,
                main_statements: 2,
            },
        );
        let large = random_fj_program(
            1,
            FjGenConfig {
                classes: 8,
                main_statements: 20,
            },
        );
        assert!(large.len() > small.len());
    }
}

//! The Figure 1 / Figure 2 paradox programs, parameterized by N and M.
//!
//! Both figures show "the same program": a `caller` invokes `foo` with N
//! distinct objects; `foo` closes over its argument `x` and invokes the
//! closure with M distinct objects `y`; the innermost code (`baz`) uses
//! both `x` and `y`.
//!
//! * [`fn_program`] — the functional form (Figure 2, implicit closures):
//!   under 1-CFA the innermost λ is analyzed in `O(N·M)` environments,
//!   because `x` and `y` keep the separate contexts they were closed in.
//! * [`oo_program`] — the OO form (Figure 1, explicit closure objects):
//!   the same 1-CFA produces `O(N+M)` abstract contexts, because
//!   `new ClosureXY(x, y)` copies both values simultaneously.

use std::fmt::Write as _;

/// Generates the functional (implicit-closure) paradox program
/// (Figure 2) in mini-Scheme.
///
/// The innermost λ-term — the one analyzed in `O(N·M)` environments —
/// has its parameter named `paradox-probe`, so experiment code can find
/// it by name after CPS conversion (the converter renames it to
/// `paradox-probe.<n>`).
pub fn fn_program(n: usize, m: usize) -> String {
    assert!(
        n > 0 && m > 0,
        "need at least one caller and one inner call"
    );
    let mut src = String::new();
    // foo closes x, then cx closes y; the innermost lambda reads both.
    src.push_str(
        "(define (foo x)\n  (let ((cx (lambda (y)\n              (let ((cxy (lambda (paradox-probe) (cons x y))))\n                (cxy 0)))))\n    (begin\n",
    );
    for j in 1..=m {
        let _ = writeln!(src, "      (cx 'oy{j})");
    }
    src.push_str(")))\n(begin\n");
    for i in 1..=n {
        let _ = writeln!(src, "  (foo 'ox{i})");
    }
    src.push_str(")\n");
    src
}

/// Generates the object-oriented (explicit-closure) paradox program
/// (Figure 1) in Featherweight Java.
///
/// `ClosureX` captures `x` at construction; `ClosureXY` captures `x`
/// and `y` simultaneously; `baz` is the method whose analysis contexts
/// the experiment counts.
pub fn oo_program(n: usize, m: usize) -> String {
    assert!(
        n > 0 && m > 0,
        "need at least one caller and one inner call"
    );
    let mut src = String::new();
    src.push_str(
        "class ClosureX extends Object {
  Object x;
  ClosureX(Object x0) { super(); this.x = x0; }
  Object bar(Object y) {
    ClosureXY cxy;
    cxy = new ClosureXY(this.x, y);
    return cxy.baz();
  }
}
class ClosureXY extends Object {
  Object x;
  Object y;
  ClosureXY(Object x0, Object y0) { super(); this.x = x0; this.y = y0; }
  Object baz() {
    Object usex;
    usex = this.x;
    Object usey;
    usey = this.y;
    return usey;
  }
}
class Main extends Object {
  Main() { super(); }
  Object foo(Object x) {
    ClosureX cx;
    cx = new ClosureX(x);
",
    );
    for j in 1..=m {
        let _ = writeln!(src, "    Object r{j};\n    r{j} = cx.bar(new Object());");
    }
    let _ = writeln!(src, "    return r{m};");
    src.push_str("  }\n  Object main() {\n");
    for i in 1..=n {
        let _ = writeln!(src, "    Object s{i};\n    s{i} = this.foo(new Object());");
    }
    let _ = writeln!(src, "    return s{n};");
    src.push_str("  }\n}\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_program_compiles() {
        for (n, m) in [(1, 1), (3, 4), (5, 2)] {
            let src = fn_program(n, m);
            let cps = cfa_syntax::compile(&src).expect(&src);
            assert!(cps.lam_count() > 3);
        }
    }

    #[test]
    fn fn_program_has_probe_lambda() {
        let cps = cfa_syntax::compile(&fn_program(2, 2)).unwrap();
        let found = cps.lam_ids().any(|l| {
            cps.lam(l)
                .params
                .first()
                .map(|p| cps.name(*p).starts_with("paradox-probe"))
                .unwrap_or(false)
        });
        assert!(found, "probe lambda must be identifiable by parameter name");
    }

    #[test]
    fn oo_program_grows_with_parameters() {
        let small = oo_program(1, 1);
        let large = oo_program(8, 8);
        assert!(large.len() > small.len());
        assert!(small.contains("class ClosureXY"));
        assert!(small.contains("baz"));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_dimensions_rejected() {
        let _ = fn_program(0, 1);
    }
}

//! Seeded random program generation for property-based testing.
//!
//! Generates closed mini-Scheme programs. Programs are recursion-free
//! (no `letrec`), so they either terminate quickly or stop at a runtime
//! type error — both acceptable for the differential and soundness
//! property tests, which check trace prefixes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Gen {
    rng: StdRng,
    fuel: usize,
    counter: u32,
}

impl Gen {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("v{}", self.counter)
    }

    fn spend(&mut self) -> bool {
        if self.fuel == 0 {
            return false;
        }
        self.fuel -= 1;
        true
    }

    /// An expression that most likely evaluates to an integer.
    fn int_expr(&mut self, scope: &[String], depth: usize) -> String {
        if depth == 0 || !self.spend() {
            return self.rng.gen_range(-5..50).to_string();
        }
        match self.rng.gen_range(0..10) {
            0..=2 => self.rng.gen_range(-5..50).to_string(),
            3 => format!(
                "(+ {} {})",
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            4 => format!(
                "(- {} {})",
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            5 => format!(
                "(* {} {})",
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            6 => {
                // let-bound integer
                let v = self.fresh();
                let bound = self.int_expr(scope, depth - 1);
                let mut inner: Vec<String> = scope.to_vec();
                inner.push(v.clone());
                format!("(let (({v} {bound})) {})", self.int_expr(&inner, depth - 1))
            }
            7 => format!(
                "(if {} {} {})",
                self.bool_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            8 => {
                // immediate application of a unary integer function
                let v = self.fresh();
                let mut inner: Vec<String> = scope.to_vec();
                inner.push(v.clone());
                format!(
                    "((lambda ({v}) {}) {})",
                    self.int_expr(&inner, depth - 1),
                    self.int_expr(scope, depth - 1)
                )
            }
            _ => {
                // car of a freshly consed pair — exercises the heap
                format!(
                    "(car (cons {} {}))",
                    self.int_expr(scope, depth - 1),
                    self.int_expr(scope, depth - 1)
                )
            }
        }
    }

    fn bool_expr(&mut self, scope: &[String], depth: usize) -> String {
        if depth == 0 || !self.spend() {
            return if self.rng.gen() {
                "#t".into()
            } else {
                "#f".into()
            };
        }
        match self.rng.gen_range(0..5) {
            0 => format!("(zero? {})", self.int_expr(scope, depth - 1)),
            1 => format!(
                "(< {} {})",
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            2 => format!("(not {})", self.bool_expr(scope, depth - 1)),
            3 => format!(
                "(and {} {})",
                self.bool_expr(scope, depth - 1),
                self.bool_expr(scope, depth - 1)
            ),
            _ => {
                if self.rng.gen() {
                    "#t".into()
                } else {
                    "#f".into()
                }
            }
        }
    }

    /// A higher-order expression: functions flowing through functions,
    /// finally applied to integers.
    fn ho_expr(&mut self, scope: &[String], depth: usize) -> String {
        if depth == 0 || !self.spend() {
            return self.int_expr(scope, depth);
        }
        match self.rng.gen_range(0..4) {
            0 => {
                // ((lambda (f) (f <int>)) (lambda (x) <int>))
                let f = self.fresh();
                let x = self.fresh();
                let mut body_scope: Vec<String> = scope.to_vec();
                body_scope.push(x.clone());
                format!(
                    "((lambda ({f}) ({f} {})) (lambda ({x}) {}))",
                    self.int_expr(scope, depth - 1),
                    self.int_expr(&body_scope, depth - 1)
                )
            }
            1 => {
                // let-bound function used twice with different arguments
                let f = self.fresh();
                let x = self.fresh();
                let mut body_scope: Vec<String> = scope.to_vec();
                body_scope.push(x.clone());
                format!(
                    "(let (({f} (lambda ({x}) {}))) (+ ({f} {}) ({f} {})))",
                    self.int_expr(&body_scope, depth - 1),
                    self.int_expr(scope, depth - 1),
                    self.int_expr(scope, depth - 1)
                )
            }
            2 => format!(
                "(if {} {} {})",
                self.bool_expr(scope, depth - 1),
                self.ho_expr(scope, depth - 1),
                self.ho_expr(scope, depth - 1)
            ),
            _ => self.int_expr(scope, depth),
        }
    }
}

/// Generates a closed, recursion-free program from `seed`; `size`
/// bounds the expression fuel (larger = bigger programs).
///
/// # Examples
///
/// ```
/// let src = cfa_workloads::gen::random_program(42, 30);
/// cfa_syntax::compile(&src).expect("generated programs are well-formed");
/// ```
pub fn random_program(seed: u64, size: usize) -> String {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        fuel: size,
        counter: 0,
    };
    let depth = 3 + (size / 10).min(5);
    g.ho_expr(&[], depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..100 {
            let src = random_program(seed, 40);
            cfa_syntax::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_program(7, 30), random_program(7, 30));
    }

    #[test]
    fn seeds_vary_output() {
        let distinct: std::collections::BTreeSet<String> =
            (0..20).map(|s| random_program(s, 30)).collect();
        assert!(distinct.len() > 10);
    }
}

//! Seeded random program generation for property-based testing.
//!
//! Generates closed mini-Scheme programs. Programs are recursion-free
//! (no `letrec`), so they either terminate quickly or stop at a runtime
//! type error — both acceptable for the differential and soundness
//! property tests, which check trace prefixes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Gen {
    rng: StdRng,
    fuel: usize,
    counter: u32,
}

impl Gen {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("v{}", self.counter)
    }

    fn spend(&mut self) -> bool {
        if self.fuel == 0 {
            return false;
        }
        self.fuel -= 1;
        true
    }

    /// An expression that most likely evaluates to an integer.
    fn int_expr(&mut self, scope: &[String], depth: usize) -> String {
        if depth == 0 || !self.spend() {
            return self.rng.gen_range(-5..50).to_string();
        }
        match self.rng.gen_range(0..10) {
            0..=2 => self.rng.gen_range(-5..50).to_string(),
            3 => format!(
                "(+ {} {})",
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            4 => format!(
                "(- {} {})",
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            5 => format!(
                "(* {} {})",
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            6 => {
                // let-bound integer
                let v = self.fresh();
                let bound = self.int_expr(scope, depth - 1);
                let mut inner: Vec<String> = scope.to_vec();
                inner.push(v.clone());
                format!("(let (({v} {bound})) {})", self.int_expr(&inner, depth - 1))
            }
            7 => format!(
                "(if {} {} {})",
                self.bool_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            8 => {
                // immediate application of a unary integer function
                let v = self.fresh();
                let mut inner: Vec<String> = scope.to_vec();
                inner.push(v.clone());
                format!(
                    "((lambda ({v}) {}) {})",
                    self.int_expr(&inner, depth - 1),
                    self.int_expr(scope, depth - 1)
                )
            }
            _ => {
                // car of a freshly consed pair — exercises the heap
                format!(
                    "(car (cons {} {}))",
                    self.int_expr(scope, depth - 1),
                    self.int_expr(scope, depth - 1)
                )
            }
        }
    }

    fn bool_expr(&mut self, scope: &[String], depth: usize) -> String {
        if depth == 0 || !self.spend() {
            return if self.rng.gen() {
                "#t".into()
            } else {
                "#f".into()
            };
        }
        match self.rng.gen_range(0..5) {
            0 => format!("(zero? {})", self.int_expr(scope, depth - 1)),
            1 => format!(
                "(< {} {})",
                self.int_expr(scope, depth - 1),
                self.int_expr(scope, depth - 1)
            ),
            2 => format!("(not {})", self.bool_expr(scope, depth - 1)),
            3 => format!(
                "(and {} {})",
                self.bool_expr(scope, depth - 1),
                self.bool_expr(scope, depth - 1)
            ),
            _ => {
                if self.rng.gen() {
                    "#t".into()
                } else {
                    "#f".into()
                }
            }
        }
    }

    /// A higher-order expression: functions flowing through functions,
    /// finally applied to integers.
    fn ho_expr(&mut self, scope: &[String], depth: usize) -> String {
        if depth == 0 || !self.spend() {
            return self.int_expr(scope, depth);
        }
        match self.rng.gen_range(0..4) {
            0 => {
                // ((lambda (f) (f <int>)) (lambda (x) <int>))
                let f = self.fresh();
                let x = self.fresh();
                let mut body_scope: Vec<String> = scope.to_vec();
                body_scope.push(x.clone());
                format!(
                    "((lambda ({f}) ({f} {})) (lambda ({x}) {}))",
                    self.int_expr(scope, depth - 1),
                    self.int_expr(&body_scope, depth - 1)
                )
            }
            1 => {
                // let-bound function used twice with different arguments
                let f = self.fresh();
                let x = self.fresh();
                let mut body_scope: Vec<String> = scope.to_vec();
                body_scope.push(x.clone());
                format!(
                    "(let (({f} (lambda ({x}) {}))) (+ ({f} {}) ({f} {})))",
                    self.int_expr(&body_scope, depth - 1),
                    self.int_expr(scope, depth - 1),
                    self.int_expr(scope, depth - 1)
                )
            }
            2 => format!(
                "(if {} {} {})",
                self.bool_expr(scope, depth - 1),
                self.ho_expr(scope, depth - 1),
                self.ho_expr(scope, depth - 1)
            ),
            _ => self.int_expr(scope, depth),
        }
    }
}

impl Gen {
    /// One operation on a random atom cell: `deref`, `reset!`, or `cas!`
    /// (reads twice as likely, so generated threads actually observe
    /// each other).
    fn atom_op(&mut self, atoms: &[String], depth: usize) -> String {
        let a = atoms[self.rng.gen_range(0..atoms.len())].clone();
        match self.rng.gen_range(0..4) {
            0 | 1 => format!("(deref {a})"),
            2 => format!("(reset! {a} {})", self.int_expr(&[], depth)),
            _ => format!(
                "(cas! {a} {} {})",
                self.int_expr(&[], depth),
                self.int_expr(&[], depth)
            ),
        }
    }

    /// A spawned thread body: a short sequence of atom operations
    /// (`spawn` takes a body sequence, so no `begin` is needed).
    fn thread_body(&mut self, atoms: &[String], depth: usize) -> String {
        let steps = self.rng.gen_range(1..4);
        let ops: Vec<String> = (0..steps).map(|_| self.atom_op(atoms, depth)).collect();
        ops.join(" ")
    }
}

/// Generates a closed, recursion-free program from `seed`; `size`
/// bounds the expression fuel (larger = bigger programs).
///
/// # Examples
///
/// ```
/// let src = cfa_workloads::gen::random_program(42, 30);
/// cfa_syntax::compile(&src).expect("generated programs are well-formed");
/// ```
pub fn random_program(seed: u64, size: usize) -> String {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        fuel: size,
        counter: 0,
    };
    let depth = 3 + (size / 10).min(5);
    g.ho_expr(&[], depth)
}

/// Generates a closed *concurrent* program from `seed`: a few shared
/// atom cells, one to three spawned threads hammering them with
/// `deref`/`reset!`/`cas!`, and a main thread that joins a random
/// subset of the handles before its own final access — so the family
/// covers racy, partially synchronized, and fully joined shapes.
///
/// Like [`random_program`] the output is recursion-free; unlike it, the
/// result exercises the abstract-thread domain, so it belongs in the
/// engine-agreement differential suites (all store backends and eval
/// modes must compute the same fixpoint) but **not** in the suites that
/// compare against the per-state-store naive machine, which cannot
/// model cross-thread store flow.
///
/// # Examples
///
/// ```
/// let src = cfa_workloads::gen::random_concurrent_program(42, 25);
/// cfa_syntax::compile(&src).expect("generated programs are well-formed");
/// assert!(src.contains("spawn"));
/// ```
pub fn random_concurrent_program(seed: u64, size: usize) -> String {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        fuel: size,
        counter: 0,
    };
    let depth = 2;
    let atoms: Vec<String> = (0..g.rng.gen_range(1..3)).map(|_| g.fresh()).collect();
    let handles: Vec<String> = (0..g.rng.gen_range(1..4)).map(|_| g.fresh()).collect();
    let bodies: Vec<String> = handles
        .iter()
        .map(|_| g.thread_body(&atoms, depth))
        .collect();

    // Main-thread tail: join a random subset of the handles, touch a
    // cell, and end on an integer so the program has a plain result.
    let mut tail: Vec<String> = handles
        .iter()
        .filter(|_| g.rng.gen())
        .map(|h| format!("(join {h})"))
        .collect();
    tail.push(g.atom_op(&atoms, depth));
    tail.push(g.int_expr(&[], depth));
    let mut body = format!("(begin {})", tail.join(" "));

    for (h, thread) in handles.iter().zip(&bodies).rev() {
        body = format!("(let (({h} (spawn {thread}))) {body})");
    }
    for a in atoms.iter().rev() {
        let init = g.rng.gen_range(0..10);
        body = format!("(let (({a} (atom {init}))) {body})");
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..100 {
            let src = random_program(seed, 40);
            cfa_syntax::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_program(7, 30), random_program(7, 30));
        assert_eq!(
            random_concurrent_program(7, 25),
            random_concurrent_program(7, 25)
        );
    }

    #[test]
    fn generated_concurrent_programs_compile_and_spawn() {
        for seed in 0..100 {
            let src = random_concurrent_program(seed, 25);
            cfa_syntax::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert!(
                src.contains("(spawn "),
                "seed {seed} spawned nothing:\n{src}"
            );
            assert!(
                src.contains("(atom "),
                "seed {seed} allocated no cell:\n{src}"
            );
        }
    }

    #[test]
    fn concurrent_family_varies_synchronization() {
        // The family must cover both ends: some programs join every
        // handle, some join none — that spread is what gives the race
        // detector's property tests their racy and synchronized inputs.
        let mut with_join = 0;
        let mut without_join = 0;
        for seed in 0..50 {
            if random_concurrent_program(seed, 25).contains("(join ") {
                with_join += 1;
            } else {
                without_join += 1;
            }
        }
        assert!(with_join >= 5, "only {with_join} programs join");
        assert!(without_join >= 5, "only {without_join} programs skip joins");
    }

    #[test]
    fn seeds_vary_output() {
        let distinct: std::collections::BTreeSet<String> =
            (0..20).map(|s| random_program(s, 30)).collect();
        assert!(distinct.len() > 10);
    }
}

//! The flat-environment concrete CPS machine (paper §5.1).
//!
//! An environment is a *base address* ([`Ctx`]); a variable is accessed at
//! `(variable, base)`. When a closure is applied, a fresh base is
//! allocated and the values of the λ-term's free variables are **copied**
//! from the closure's saved base into the new one — the flat-closure
//! strategy of Appel and Cardelli. All bindings reachable from a base
//! therefore share one allocation context, which is exactly the property
//! whose abstraction makes m-CFA polynomial.
//!
//! The environment allocator follows §5.3: applying a *procedure* pushes
//! the call site onto the environment's call string; applying a
//! *continuation* restores (a fresh copy of) the continuation closure's
//! saved environment.
//!
//! # Examples
//!
//! ```
//! use cfa_concrete::flat::run_flat;
//! use cfa_concrete::base::Limits;
//! use cfa_syntax::compile;
//!
//! let p = compile("((lambda (x) (+ x 1)) 41)").unwrap();
//! let run = run_flat(&p, Limits::default());
//! assert_eq!(run.outcome.value(), Some("42"));
//! ```

use crate::base::{
    eval_prim, render_value, Addr, Basic, Ctx, Limits, Outcome, RuntimeError, Slot, Store, Value,
};
use crate::ctx::CtxTable;
use cfa_syntax::cps::{AExp, CallId, CallKind, CpsProgram, LamSort};
use cfa_syntax::intern::Interner;

/// A runtime value of the flat-environment machine: closures capture just
/// a base address.
pub type FlatValue = Value<Ctx>;

/// One visited machine state (recorded when tracing is on).
#[derive(Clone, Debug)]
pub struct FlatVisit {
    /// The call site.
    pub call: CallId,
    /// The environment base address.
    pub env: Ctx,
}

/// The result of running the flat-environment machine.
#[derive(Debug)]
pub struct FlatRun {
    /// How the run ended.
    pub outcome: Outcome,
    /// Number of transitions taken.
    pub steps: usize,
    /// The final store.
    pub store: Store<Ctx>,
    /// Visited states, in order (empty unless tracing was requested).
    pub trace: Vec<FlatVisit>,
    /// Call-string metadata for every allocated environment.
    pub envs: CtxTable,
    /// Dynamic string table (extends the program's interner).
    pub strings: Interner,
}

/// Runs `program` on the flat-environment machine.
pub fn run_flat(program: &CpsProgram, limits: Limits) -> FlatRun {
    run_flat_traced(program, limits, false)
}

/// Runs `program`, optionally recording every visited state.
pub fn run_flat_traced(program: &CpsProgram, limits: Limits, trace: bool) -> FlatRun {
    let mut m = FlatMachine {
        program,
        store: Store::new(),
        envs: CtxTable::new(),
        strings: program.interner().clone(),
        trace: Vec::new(),
        record_trace: trace,
        pending: Vec::new(),
        thread_results: std::collections::HashMap::new(),
        next_tid: 0,
    };
    let (outcome, steps) = m.run(limits);
    FlatRun {
        outcome,
        steps,
        store: m.store,
        trace: m.trace,
        envs: m.envs,
        strings: m.strings,
    }
}

struct FlatMachine<'p> {
    program: &'p CpsProgram,
    store: Store<Ctx>,
    envs: CtxTable,
    strings: Interner,
    trace: Vec<FlatVisit>,
    record_trace: bool,
    /// Suspended parent states awaiting a child thread's completion
    /// (same eager-at-spawn scheduler as the shared machine).
    pending: Vec<(CallId, Ctx)>,
    /// Results of completed threads, keyed by thread id.
    thread_results: std::collections::HashMap<u64, FlatValue>,
    next_tid: u64,
}

enum Step {
    Continue(CallId, Ctx),
    Halt(FlatValue),
}

impl<'p> FlatMachine<'p> {
    fn run(&mut self, limits: Limits) -> (Outcome, usize) {
        let mut call = self.program.entry();
        let mut env = self.envs.initial();
        let mut steps = 0;
        loop {
            if steps >= limits.max_steps {
                return (Outcome::OutOfFuel, steps);
            }
            steps += 1;
            if self.record_trace {
                self.trace.push(FlatVisit { call, env });
            }
            match self.step(call, env) {
                Ok(Step::Continue(c, e)) => {
                    call = c;
                    env = e;
                }
                Ok(Step::Halt(v)) => {
                    let text = render_value(&v, &self.store, &self.strings, self.program, 16);
                    return (Outcome::Halted(text), steps);
                }
                Err(e) => return (Outcome::Error(e), steps),
            }
        }
    }

    fn eval(&self, e: &AExp, env: Ctx) -> Result<FlatValue, RuntimeError> {
        match e {
            AExp::Lit(l) => Ok(Value::Basic(Basic::from_lit(*l))),
            AExp::Var(v) => self
                .store
                .read(Addr {
                    slot: Slot::Var(*v),
                    ctx: env,
                })
                .map_err(|_| RuntimeError::UnboundVariable(self.program.name(*v).to_owned())),
            AExp::Lam(l) => Ok(Value::Clo { lam: *l, env }),
        }
    }

    /// Applies a closure per the §5.1 transition rule: allocate the new
    /// base with `new(call, ρ, lam, ρ′)`, bind parameters there, and copy
    /// the λ-term's free variables from the closure's saved base.
    fn apply(
        &mut self,
        f: FlatValue,
        args: Vec<FlatValue>,
        call_label: cfa_syntax::cps::Label,
        current: Ctx,
    ) -> Result<Step, RuntimeError> {
        if let Value::RetK(tid) = f {
            // A thread-return continuation: record the thread's result
            // and resume the most recently suspended parent.
            if args.len() != 1 {
                return Err(RuntimeError::ArityMismatch {
                    expected: 1,
                    actual: args.len(),
                });
            }
            self.thread_results
                .insert(tid, args.into_iter().next().expect("len checked"));
            let (call, env) = self
                .pending
                .pop()
                .expect("eager scheduler: a finishing thread always has a suspended parent");
            return Ok(Step::Continue(call, env));
        }
        let Value::Clo { lam, env: saved } = f else {
            return Err(RuntimeError::NotAProcedure(render_value(
                &f,
                &self.store,
                &self.strings,
                self.program,
                4,
            )));
        };
        let lam_data = self.program.lam(lam);
        if lam_data.params.len() != args.len() {
            return Err(RuntimeError::ArityMismatch {
                expected: lam_data.params.len(),
                actual: args.len(),
            });
        }
        // new(call, ρ, lam, ρ′): procedures push the call site onto the
        // *caller's* string; continuations restore the closure's string.
        let fresh = match lam_data.sort {
            LamSort::Proc => self.envs.tick(call_label, current),
            LamSort::Cont => self.envs.fresh_like(saved),
        };
        for (param, value) in lam_data.params.iter().zip(args) {
            self.store.insert(
                Addr {
                    slot: Slot::Var(*param),
                    ctx: fresh,
                },
                value,
            );
        }
        for &fv in self.program.free_vars(lam) {
            let value = self
                .store
                .read(Addr {
                    slot: Slot::Var(fv),
                    ctx: saved,
                })
                .map_err(|_| RuntimeError::UnboundVariable(self.program.name(fv).to_owned()))?;
            self.store.insert(
                Addr {
                    slot: Slot::Var(fv),
                    ctx: fresh,
                },
                value,
            );
        }
        Ok(Step::Continue(lam_data.body, fresh))
    }

    fn step(&mut self, call: CallId, env: Ctx) -> Result<Step, RuntimeError> {
        let call_data = self.program.call(call);
        match &call_data.kind {
            CallKind::App { func, args } => {
                let f = self.eval(func, env)?;
                let arg_vals = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.apply(f, arg_vals, call_data.label, env)
            }
            CallKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond, env)?;
                let next = if c.is_truthy() {
                    *then_branch
                } else {
                    *else_branch
                };
                Ok(Step::Continue(next, env))
            }
            CallKind::PrimCall { op, args, cont } => {
                let arg_vals = args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                let k = self.eval(cont, env)?;
                // Pairs are allocated in a fresh heap context carrying the
                // current environment's call string (matches the abstract
                // machine, which allocates them at the current abstract
                // environment).
                let heap = self.envs.fresh_like(env);
                let result = {
                    let store = &mut self.store;
                    let strings = &mut self.strings;
                    eval_prim(
                        *op,
                        &arg_vals,
                        store,
                        |slot| Addr { slot, ctx: heap },
                        call_data.label,
                        strings,
                        self.program,
                    )?
                };
                self.apply(k, vec![result], call_data.label, env)
            }
            CallKind::Fix { bindings, body } => {
                // Recursive closures live in the *current* base; their free
                // variables (including each other) are reachable there.
                for (name, lam) in bindings {
                    let clo = Value::Clo { lam: *lam, env };
                    self.store.insert(
                        Addr {
                            slot: Slot::Var(*name),
                            ctx: env,
                        },
                        clo,
                    );
                }
                Ok(Step::Continue(*body, env))
            }
            CallKind::Spawn { thunk, cont } => {
                let thunk_v = self.eval(thunk, env)?;
                let k = self.eval(cont, env)?;
                let tid = self.next_tid;
                self.next_tid += 1;
                // Suspend the parent: bind the thread handle into the
                // parent continuation now, run its body after the child
                // finishes.
                let resume = self.apply(k, vec![Value::Thread(tid)], call_data.label, env)?;
                let Step::Continue(rc, re) = resume else {
                    unreachable!("continuations are closures, not %halt");
                };
                self.pending.push((rc, re));
                // Run the child to completion: its continuation is the
                // thread-return continuation for `tid`.
                self.apply(thunk_v, vec![Value::RetK(tid)], call_data.label, env)
            }
            CallKind::Join { target, cont } => {
                let t = self.eval(target, env)?;
                let k = self.eval(cont, env)?;
                let Value::Thread(tid) = t else {
                    return Err(RuntimeError::JoinNonThread(render_value(
                        &t,
                        &self.store,
                        &self.strings,
                        self.program,
                        4,
                    )));
                };
                // Eager scheduling means the child has already finished.
                let v = self.thread_results[&tid].clone();
                self.apply(k, vec![v], call_data.label, env)
            }
            CallKind::Halt { value } => {
                let v = self.eval(value, env)?;
                Ok(Step::Halt(v))
            }
        }
    }
}

/// Convenience: compile mini-Scheme source and run it on the flat machine.
///
/// # Errors
///
/// Returns the parse error, the runtime error, or a fuel-exhaustion
/// message as a string.
pub fn eval_scheme_flat(src: &str, limits: Limits) -> Result<String, String> {
    let program = cfa_syntax::compile(src).map_err(|e| e.to_string())?;
    match run_flat(&program, limits).outcome {
        Outcome::Halted(v) => Ok(v),
        Outcome::OutOfFuel => Err("out of fuel".to_owned()),
        Outcome::Error(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> String {
        eval_scheme_flat(src, Limits::default()).unwrap()
    }

    #[test]
    fn evaluates_basics() {
        assert_eq!(eval("42"), "42");
        assert_eq!(eval("(+ 1 2)"), "3");
        assert_eq!(eval("((lambda (x) x) 7)"), "7");
        assert_eq!(eval("(if #f 1 2)"), "2");
    }

    #[test]
    fn free_variable_copying_preserves_captures() {
        assert_eq!(
            eval(
                "(define (make-adder n) (lambda (m) (+ n m)))
                 (let ((add3 (make-adder 3)) (add5 (make-adder 5)))
                   (+ (add3 10) (add5 100)))"
            ),
            "118"
        );
    }

    #[test]
    fn recursion_works_with_flat_envs() {
        assert_eq!(
            eval("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)"),
            "3628800"
        );
        assert_eq!(
            eval(
                "(define (even? n) (if (zero? n) #t (odd? (- n 1))))
                 (define (odd? n) (if (zero? n) #f (even? (- n 1))))
                 (even? 9)"
            ),
            "#f"
        );
    }

    #[test]
    fn continuation_restore_returns_to_caller_env() {
        // After the inner call returns, the let-bound x from the *outer*
        // environment must still be visible.
        assert_eq!(
            eval(
                "(define (id y) y)
                 (let ((x 10)) (+ x (id 5)))"
            ),
            "15"
        );
    }

    #[test]
    fn pairs_work() {
        assert_eq!(eval("(car (cons 1 2))"), "1");
        assert_eq!(
            eval(
                "(define (sum xs) (if (null? xs) 0 (+ (car xs) (sum (cdr xs)))))
                 (sum (list 1 2 3 4 5))"
            ),
            "15"
        );
    }

    #[test]
    fn deep_nesting_of_closures() {
        assert_eq!(
            eval(
                "(define (compose f g) (lambda (x) (f (g x))))
                 (define (inc n) (+ n 1))
                 ((compose (compose inc inc) inc) 0)"
            ),
            "3"
        );
    }

    #[test]
    fn errors_propagate() {
        assert!(eval_scheme_flat("(car 5)", Limits::default()).is_err());
        assert!(eval_scheme_flat("(undefined-var 1)", Limits::default()).is_err());
    }

    #[test]
    fn spawn_join_and_atoms() {
        assert_eq!(eval("(join (spawn 42))"), "42");
        assert_eq!(eval("(let ((t (spawn (+ 1 2)))) (+ (join t) 10))"), "13");
        assert_eq!(
            eval("(let ((c (atom 0))) (let ((t (spawn (reset! c 5)))) (join t) (deref c)))"),
            "5"
        );
        assert_eq!(eval("(let ((c (atom 0))) (cas! c 0 7) (deref c))"), "7");
        assert_eq!(eval("(join (spawn (join (spawn 3))))"), "3");
        assert!(eval_scheme_flat("(join 5)", Limits::default()).is_err());
    }

    #[test]
    fn fuel_limit_applies() {
        let r = eval_scheme_flat(
            "(define (loop x) (loop x)) (loop 1)",
            Limits { max_steps: 500 },
        );
        assert_eq!(r, Err("out of fuel".to_owned()));
    }

    #[test]
    fn trace_and_env_table_populate() {
        let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
        let run = run_flat_traced(&p, Limits::default(), true);
        assert!(run.trace.len() >= 2);
        assert!(run.envs.len() >= 2);
    }
}

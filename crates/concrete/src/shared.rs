//! The shared-environment concrete CPS machine (paper §3.2–3.3).
//!
//! States are `(call, β, σ, t)`:
//! binding environments `β` map variables to addresses, the store maps
//! addresses to values, and times are freshly allocated at every
//! allocating transition with `tick`. Closures capture `β` restricted to
//! their free variables — variables captured at *different* times keep
//! their distinct binding contexts, which is exactly the behavior whose
//! abstraction makes functional k-CFA exponential.
//!
//! # Examples
//!
//! ```
//! use cfa_concrete::shared::run_shared;
//! use cfa_concrete::base::Limits;
//! use cfa_syntax::compile;
//!
//! let p = compile("((lambda (x) (+ x 1)) 41)").unwrap();
//! let run = run_shared(&p, Limits::default());
//! assert_eq!(run.outcome.value(), Some("42"));
//! ```

use crate::base::{
    eval_prim, render_value, Addr, Basic, Ctx, Limits, Outcome, RuntimeError, Slot, Store, Value,
};
use crate::ctx::CtxTable;
use cfa_syntax::cps::{AExp, CallId, CallKind, CpsProgram};
use cfa_syntax::intern::{Interner, Symbol};
use std::collections::HashMap;
use std::rc::Rc;

/// A binding environment: variable → address, shared via `Rc`.
pub type BEnv = Rc<HashMap<Symbol, Addr>>;

/// A runtime value of the shared-environment machine.
pub type SharedValue = Value<BEnv>;

/// One visited machine state (recorded when tracing is on).
#[derive(Clone, Debug)]
pub struct SharedVisit {
    /// The call site.
    pub call: CallId,
    /// The binding environment at that point.
    pub benv: BEnv,
    /// The time-stamp.
    pub time: Ctx,
}

/// The result of running the shared-environment machine.
#[derive(Debug)]
pub struct SharedRun {
    /// How the run ended.
    pub outcome: Outcome,
    /// Number of transitions taken.
    pub steps: usize,
    /// The final store (concrete stores only grow).
    pub store: Store<BEnv>,
    /// Visited states, in order (empty unless tracing was requested).
    pub trace: Vec<SharedVisit>,
    /// Call-string metadata for every allocated time.
    pub times: CtxTable,
    /// Dynamic string table (extends the program's interner).
    pub strings: Interner,
}

/// Runs `program` on the shared-environment machine.
pub fn run_shared(program: &CpsProgram, limits: Limits) -> SharedRun {
    run_shared_traced(program, limits, false)
}

/// Runs `program`, optionally recording every visited state for use by
/// soundness tests.
pub fn run_shared_traced(program: &CpsProgram, limits: Limits, trace: bool) -> SharedRun {
    let mut m = SharedMachine {
        program,
        store: Store::new(),
        times: CtxTable::new(),
        strings: program.interner().clone(),
        trace: Vec::new(),
        record_trace: trace,
        pending: Vec::new(),
        thread_results: HashMap::new(),
        next_tid: 0,
    };
    let (outcome, steps) = m.run(limits);
    SharedRun {
        outcome,
        steps,
        store: m.store,
        trace: m.trace,
        times: m.times,
        strings: m.strings,
    }
}

struct SharedMachine<'p> {
    program: &'p CpsProgram,
    store: Store<BEnv>,
    times: CtxTable,
    strings: Interner,
    trace: Vec<SharedVisit>,
    record_trace: bool,
    /// Suspended parent states awaiting a child thread's completion.
    ///
    /// The concrete machines use a deterministic *eager-at-spawn*
    /// scheduler: `spawn` runs the child to completion immediately and
    /// pushes the parent's resume state here; the child's thread-return
    /// continuation pops it. LIFO order matches the spawn nesting.
    pending: Vec<(CallId, BEnv, Ctx)>,
    /// Results of completed threads, keyed by thread id.
    thread_results: HashMap<u64, SharedValue>,
    next_tid: u64,
}

impl<'p> SharedMachine<'p> {
    fn run(&mut self, limits: Limits) -> (Outcome, usize) {
        let mut call = self.program.entry();
        let mut benv: BEnv = Rc::new(HashMap::new());
        let mut time = self.times.initial();
        let mut steps = 0;

        loop {
            if steps >= limits.max_steps {
                return (Outcome::OutOfFuel, steps);
            }
            steps += 1;
            if self.record_trace {
                self.trace.push(SharedVisit {
                    call,
                    benv: benv.clone(),
                    time,
                });
            }
            match self.step(call, &benv, time) {
                Ok(Step::Continue(c, b, t)) => {
                    call = c;
                    benv = b;
                    time = t;
                }
                Ok(Step::Halt(v)) => {
                    let text = render_value(&v, &self.store, &self.strings, self.program, 16);
                    return (Outcome::Halted(text), steps);
                }
                Err(e) => return (Outcome::Error(e), steps),
            }
        }
    }

    fn eval(&self, e: &AExp, benv: &BEnv) -> Result<SharedValue, RuntimeError> {
        match e {
            AExp::Lit(l) => Ok(Value::Basic(Basic::from_lit(*l))),
            AExp::Var(v) => {
                let addr = benv.get(v).copied().ok_or_else(|| {
                    RuntimeError::UnboundVariable(self.program.name(*v).to_owned())
                })?;
                self.store.read(addr)
            }
            AExp::Lam(l) => Ok(Value::Clo {
                lam: *l,
                env: self.close(*l, benv),
            }),
        }
    }

    /// Restricts `benv` to the free variables of `lam` — the environment
    /// a closure actually captures.
    fn close(&self, lam: cfa_syntax::cps::LamId, benv: &BEnv) -> BEnv {
        let mut captured = HashMap::new();
        for &v in self.program.free_vars(lam) {
            if let Some(&a) = benv.get(&v) {
                captured.insert(v, a);
            }
        }
        Rc::new(captured)
    }

    /// Applies a closure: `tick` has already produced `t_new`; parameters
    /// are bound at `t_new` in the closure's captured environment.
    fn apply(
        &mut self,
        f: SharedValue,
        args: Vec<SharedValue>,
        t_new: Ctx,
    ) -> Result<Step, RuntimeError> {
        if let Value::RetK(tid) = f {
            // A thread-return continuation: record the thread's result
            // and resume the most recently suspended parent.
            if args.len() != 1 {
                return Err(RuntimeError::ArityMismatch {
                    expected: 1,
                    actual: args.len(),
                });
            }
            self.thread_results
                .insert(tid, args.into_iter().next().expect("len checked"));
            let (call, benv, time) = self
                .pending
                .pop()
                .expect("eager scheduler: a finishing thread always has a suspended parent");
            return Ok(Step::Continue(call, benv, time));
        }
        let Value::Clo { lam, env } = f else {
            return Err(RuntimeError::NotAProcedure(render_value(
                &f,
                &self.store,
                &self.strings,
                self.program,
                4,
            )));
        };
        let lam_data = self.program.lam(lam);
        if lam_data.params.len() != args.len() {
            return Err(RuntimeError::ArityMismatch {
                expected: lam_data.params.len(),
                actual: args.len(),
            });
        }
        let mut extended = (*env).clone();
        for (param, value) in lam_data.params.iter().zip(args) {
            let addr = Addr {
                slot: Slot::Var(*param),
                ctx: t_new,
            };
            extended.insert(*param, addr);
            self.store.insert(addr, value);
        }
        Ok(Step::Continue(lam_data.body, Rc::new(extended), t_new))
    }

    fn step(&mut self, call: CallId, benv: &BEnv, time: Ctx) -> Result<Step, RuntimeError> {
        let call_data = self.program.call(call);
        match &call_data.kind {
            CallKind::App { func, args } => {
                let f = self.eval(func, benv)?;
                let arg_vals = args
                    .iter()
                    .map(|a| self.eval(a, benv))
                    .collect::<Result<Vec<_>, _>>()?;
                let t_new = self.times.tick(call_data.label, time);
                self.apply(f, arg_vals, t_new)
            }
            CallKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond, benv)?;
                let next = if c.is_truthy() {
                    *then_branch
                } else {
                    *else_branch
                };
                Ok(Step::Continue(next, benv.clone(), time))
            }
            CallKind::PrimCall { op, args, cont } => {
                let arg_vals = args
                    .iter()
                    .map(|a| self.eval(a, benv))
                    .collect::<Result<Vec<_>, _>>()?;
                let k = self.eval(cont, benv)?;
                let t_new = self.times.tick(call_data.label, time);
                let result = {
                    let store = &mut self.store;
                    let strings = &mut self.strings;
                    eval_prim(
                        *op,
                        &arg_vals,
                        store,
                        |slot| Addr { slot, ctx: t_new },
                        call_data.label,
                        strings,
                        self.program,
                    )?
                };
                self.apply(k, vec![result], t_new)
            }
            CallKind::Fix { bindings, body } => {
                let t_new = self.times.tick(call_data.label, time);
                let mut extended = (**benv).clone();
                for (name, _) in bindings {
                    let addr = Addr {
                        slot: Slot::Var(*name),
                        ctx: t_new,
                    };
                    extended.insert(*name, addr);
                }
                let extended: BEnv = Rc::new(extended);
                for (name, lam) in bindings {
                    let clo = Value::Clo {
                        lam: *lam,
                        env: self.close(*lam, &extended),
                    };
                    let addr = extended[name];
                    self.store.insert(addr, clo);
                }
                Ok(Step::Continue(*body, extended, t_new))
            }
            CallKind::Spawn { thunk, cont } => {
                let thunk_v = self.eval(thunk, benv)?;
                let k = self.eval(cont, benv)?;
                let tid = self.next_tid;
                self.next_tid += 1;
                // Suspend the parent: bind the thread handle into the
                // parent continuation now, run its body after the child
                // finishes.
                let t_parent = self.times.tick(call_data.label, time);
                let resume = self.apply(k, vec![Value::Thread(tid)], t_parent)?;
                let Step::Continue(rc, rb, rt) = resume else {
                    unreachable!("continuations are closures, not %halt");
                };
                self.pending.push((rc, rb, rt));
                // Run the child to completion: its continuation is the
                // thread-return continuation for `tid`.
                let t_child = self.times.tick(call_data.label, t_parent);
                self.apply(thunk_v, vec![Value::RetK(tid)], t_child)
            }
            CallKind::Join { target, cont } => {
                let t = self.eval(target, benv)?;
                let k = self.eval(cont, benv)?;
                let Value::Thread(tid) = t else {
                    return Err(RuntimeError::JoinNonThread(render_value(
                        &t,
                        &self.store,
                        &self.strings,
                        self.program,
                        4,
                    )));
                };
                // Eager scheduling means the child has already finished.
                let v = self.thread_results[&tid].clone();
                let t_new = self.times.tick(call_data.label, time);
                self.apply(k, vec![v], t_new)
            }
            CallKind::Halt { value } => {
                let v = self.eval(value, benv)?;
                Ok(Step::Halt(v))
            }
        }
    }
}

enum Step {
    Continue(CallId, BEnv, Ctx),
    Halt(SharedValue),
}

/// Convenience: compile mini-Scheme source and run it, returning the
/// rendered halt value.
///
/// # Errors
///
/// Returns the parse error, the runtime error, or a fuel-exhaustion
/// message as a string (test/helper ergonomics).
pub fn eval_scheme(src: &str, limits: Limits) -> Result<String, String> {
    let program = cfa_syntax::compile(src).map_err(|e| e.to_string())?;
    match run_shared(&program, limits).outcome {
        Outcome::Halted(v) => Ok(v),
        Outcome::OutOfFuel => Err("out of fuel".to_owned()),
        Outcome::Error(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> String {
        eval_scheme(src, Limits::default()).unwrap()
    }

    #[test]
    fn evaluates_literals_and_prims() {
        assert_eq!(eval("42"), "42");
        assert_eq!(eval("(+ 1 2 3)"), "6");
        assert_eq!(eval("(* 2 3 7)"), "42");
        assert_eq!(eval("(- 10 4)"), "6");
        assert_eq!(eval("(quotient 9 2)"), "4");
        assert_eq!(eval("(remainder 9 2)"), "1");
        assert_eq!(eval("(< 1 2)"), "#t");
        assert_eq!(eval("(not #f)"), "#t");
    }

    #[test]
    fn evaluates_lambda_application() {
        assert_eq!(eval("((lambda (x) x) 7)"), "7");
        assert_eq!(
            eval("((lambda (f x) (f (f x))) (lambda (n) (* n n)) 3)"),
            "81"
        );
    }

    #[test]
    fn evaluates_let_and_if() {
        assert_eq!(eval("(let ((x 1) (y 2)) (+ x y))"), "3");
        assert_eq!(eval("(if (< 1 2) 'yes 'no)"), "yes");
        assert_eq!(eval("(let* ((a 2) (b (* a a))) b)"), "4");
    }

    #[test]
    fn evaluates_recursion_via_fix() {
        assert_eq!(
            eval("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)"),
            "3628800"
        );
        assert_eq!(
            eval(
                "(define (even? n) (if (zero? n) #t (odd? (- n 1))))
                 (define (odd? n) (if (zero? n) #f (even? (- n 1))))
                 (even? 10)"
            ),
            "#t"
        );
    }

    #[test]
    fn evaluates_pairs_and_lists() {
        assert_eq!(eval("(car (cons 1 2))"), "1");
        assert_eq!(eval("(cdr (cons 1 2))"), "2");
        assert_eq!(
            eval(
                "(define (len xs) (if (null? xs) 0 (+ 1 (len (cdr xs)))))
                 (len (list 1 2 3 4))"
            ),
            "4"
        );
    }

    #[test]
    fn higher_order_closures_capture_correctly() {
        assert_eq!(
            eval(
                "(define (make-adder n) (lambda (m) (+ n m)))
                 (let ((add3 (make-adder 3)) (add5 (make-adder 5)))
                   (+ (add3 10) (add5 100)))"
            ),
            "118"
        );
    }

    #[test]
    fn shadowing_respects_lexical_scope() {
        assert_eq!(eval("(let ((x 1)) (let ((x 2)) x))"), "2");
        assert_eq!(eval("((lambda (x) ((lambda (x) x) 9)) 1)"), "9");
    }

    #[test]
    fn errors_propagate() {
        assert!(eval_scheme("(car 5)", Limits::default()).is_err());
        assert!(eval_scheme("(f 1)", Limits::default()).is_err()); // unbound
        assert!(eval_scheme("((lambda (x) x) 1 2)", Limits::default()).is_err()); // arity
        assert!(eval_scheme("(error 'boom)", Limits::default()).is_err());
    }

    #[test]
    fn fuel_limits_runaway_programs() {
        let r = eval_scheme(
            "(define (loop x) (loop x)) (loop 1)",
            Limits { max_steps: 500 },
        );
        assert_eq!(r, Err("out of fuel".to_owned()));
    }

    #[test]
    fn trace_records_visits() {
        let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
        let run = run_shared_traced(&p, Limits::default(), true);
        assert!(run.trace.len() >= 2);
        assert_eq!(run.trace[0].call, p.entry());
    }

    #[test]
    fn times_grow_monotonically() {
        let p = cfa_syntax::compile("(+ 1 (+ 2 (+ 3 4)))").unwrap();
        let run = run_shared_traced(&p, Limits::default(), true);
        // Every allocation produced a distinct time.
        assert!(run.times.len() > 1);
    }

    #[test]
    fn spawn_join_and_atoms() {
        assert_eq!(eval("(join (spawn 42))"), "42");
        assert_eq!(eval("(let ((t (spawn (+ 1 2)))) (+ (join t) 10))"), "13");
        assert_eq!(
            eval("(let ((c (atom 0))) (let ((t (spawn (reset! c 5)))) (join t) (deref c)))"),
            "5"
        );
        assert_eq!(eval("(let ((c (atom 0))) (cas! c 0 1))"), "#t");
        assert_eq!(eval("(let ((c (atom 0))) (cas! c 9 1))"), "#f");
        assert_eq!(eval("(let ((c (atom 0))) (cas! c 0 7) (deref c))"), "7");
        assert_eq!(eval("(join (spawn (join (spawn 3))))"), "3");
        assert_eq!(
            eval(
                "(let ((a (spawn 1)) (b (spawn 2)))
                   (+ (join a) (join b)))"
            ),
            "3"
        );
        assert!(eval_scheme("(join 5)", Limits::default()).is_err());
    }

    #[test]
    fn quoted_data_evaluates() {
        assert_eq!(eval("(car '(1 2 3))"), "1");
        assert_eq!(eval("'sym"), "sym");
        assert_eq!(eval("(null? '())"), "#t");
    }

    #[test]
    fn string_prims() {
        assert_eq!(eval(r#"(string-append "a" "b")"#), "\"ab\"");
        assert_eq!(eval("(->string 42)"), "\"42\"");
        assert_eq!(eval(r#"(string? "x")"#), "#t");
    }
}

//! Concrete semantics for the CPS core language.
//!
//! Two machines, mirroring the paper's two concrete semantics:
//!
//! * [`shared`] — the shared-environment machine of §3.2 (binding
//!   environments map variables to addresses; closures capture maps);
//! * [`flat`] — the flat-environment machine of §5.1 (an environment is a
//!   base address; free variables are copied on application).
//!
//! Both define the same observable behavior (they are differentially
//! tested against each other); they differ in the *structure* that their
//! abstract interpretations inherit — which is the whole point of the
//! paper: abstracting the first gives (exponential) k-CFA, abstracting
//! the second gives (polynomial) m-CFA.
//!
//! # Examples
//!
//! ```
//! use cfa_concrete::{base::Limits, flat, shared};
//!
//! let p = cfa_syntax::compile("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)").unwrap();
//! let a = shared::run_shared(&p, Limits::default());
//! let b = flat::run_flat(&p, Limits::default());
//! assert_eq!(a.outcome.value(), Some("55"));
//! assert_eq!(a.outcome.value(), b.outcome.value());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod base;
pub mod ctx;
pub mod flat;
pub mod shared;

pub use base::{Addr, Basic, Ctx, Limits, Outcome, RuntimeError, Slot, Store, Value};
pub use ctx::CtxTable;
pub use flat::{eval_scheme_flat, run_flat, run_flat_traced, FlatRun};
pub use shared::{eval_scheme, run_shared, run_shared_traced, SharedRun};

//! Shared runtime machinery for the two concrete machines.
//!
//! Both machines (shared-environment §3.2 and flat-environment §5.1) use
//! the same store keys ([`Addr`]), runtime [`Basic`] constants, pair heap,
//! and primitive evaluator; they differ only in how closures capture
//! environments, which is abstracted by the type parameter `E` of
//! [`Value`].

use cfa_syntax::cps::{CpsProgram, Label, LamId, Lit, PrimOp};
use cfa_syntax::intern::{Interner, Symbol};
use std::collections::HashMap;
use std::fmt;

/// A concrete binding context.
///
/// Both machines allocate a fresh `Ctx` at every transition (times in the
/// shared machine, environment base addresses in the flat machine), so
/// contexts are unique — the freshness conditions (1)–(3) of §3.2 hold by
/// construction. Call-string metadata for the abstraction maps lives in a
/// side table owned by each machine.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ctx(pub u64);

/// What a store address names: a variable binding or half of a pair
/// allocated at a given `cons` site.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Slot {
    /// A variable binding.
    Var(Symbol),
    /// The car of the pair allocated at this site label.
    Car(Label),
    /// The cdr of the pair allocated at this site label.
    Cdr(Label),
    /// The contents of the atomic reference cell allocated at this
    /// `atom` site label.
    Atom(Label),
    /// The result of the thread spawned at this `spawn` site label.
    /// Unused by the concrete machines (which keep thread results in a
    /// side table); the abstract machines join a thread's possible
    /// results here and `%join` reads them back.
    ThreadRet(Label),
}

/// A concrete store address: slot × binding context.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Addr {
    /// What is stored here.
    pub slot: Slot,
    /// The context it was allocated in.
    pub ctx: Ctx,
}

/// A first-order runtime constant.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Basic {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string (interned in the machine's dynamic interner).
    Str(Symbol),
    /// A symbol.
    Sym(Symbol),
    /// The empty list.
    Nil,
    /// The unspecified value.
    Void,
}

impl Basic {
    /// Converts a syntactic literal into a runtime constant.
    pub fn from_lit(lit: Lit) -> Basic {
        match lit {
            Lit::Int(n) => Basic::Int(n),
            Lit::Bool(b) => Basic::Bool(b),
            Lit::Nil => Basic::Nil,
            Lit::Str(s) => Basic::Str(s),
            Lit::Sym(s) => Basic::Sym(s),
            Lit::Void => Basic::Void,
        }
    }
}

/// A concrete runtime value; `E` is the machine's environment
/// representation captured by closures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value<E> {
    /// A closure.
    Clo {
        /// The λ-term.
        lam: LamId,
        /// The captured environment.
        env: E,
    },
    /// A first-order constant.
    Basic(Basic),
    /// A heap pair; the halves live in the store.
    Pair {
        /// Address of the car.
        car: Addr,
        /// Address of the cdr.
        cdr: Addr,
    },
    /// A thread handle produced by `spawn`; `join` synchronizes on the
    /// identified thread's result.
    Thread(u64),
    /// The thread-return continuation a machine passes to a spawned
    /// thunk; applying it delivers the thread's result.
    RetK(u64),
    /// An atomic reference cell; the current contents live in the store
    /// and may be overwritten by `reset!`/`cas!`.
    Atom {
        /// Address of the cell contents.
        cell: Addr,
    },
}

impl<E> Value<E> {
    /// `#f` is the only false value (Scheme truthiness).
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Basic(Basic::Bool(false)))
    }
}

/// Pointer-style equality (`eq?` and the `cas!` comparison): basics by
/// value, heap objects by identity.
pub fn shallow_eq<E: PartialEq>(a: &Value<E>, b: &Value<E>) -> bool {
    match (a, b) {
        (Value::Basic(x), Value::Basic(y)) => x == y,
        (Value::Pair { car: x, .. }, Value::Pair { car: y, .. }) => x == y,
        (Value::Clo { lam: x, env: ex }, Value::Clo { lam: y, env: ey }) => x == y && ex == ey,
        (Value::Thread(x), Value::Thread(y)) => x == y,
        (Value::Atom { cell: x }, Value::Atom { cell: y }) => x == y,
        _ => false,
    }
}

/// A runtime error raised by a concrete machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// A variable had no binding.
    UnboundVariable(String),
    /// The operator of a call was not a closure.
    NotAProcedure(String),
    /// A closure was applied to the wrong number of arguments.
    ArityMismatch {
        /// Expected parameter count.
        expected: usize,
        /// Actual argument count.
        actual: usize,
    },
    /// A primitive received an argument of the wrong type.
    PrimTypeError {
        /// The primitive.
        op: PrimOp,
        /// Description of the offense.
        detail: String,
    },
    /// `join` was applied to a value that is not a thread handle.
    JoinNonThread(String),
    /// The program invoked `(error v)`.
    UserError(String),
    /// A store address was read before being written (machine bug or
    /// malformed program).
    DanglingAddress,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnboundVariable(v) => write!(f, "unbound variable '{v}'"),
            RuntimeError::NotAProcedure(d) => write!(f, "application of a non-procedure: {d}"),
            RuntimeError::ArityMismatch { expected, actual } => {
                write!(f, "arity mismatch: expected {expected}, got {actual}")
            }
            RuntimeError::PrimTypeError { op, detail } => {
                write!(f, "primitive '{op}' type error: {detail}")
            }
            RuntimeError::JoinNonThread(d) => write!(f, "join of a non-thread: {d}"),
            RuntimeError::UserError(msg) => write!(f, "error: {msg}"),
            RuntimeError::DanglingAddress => write!(f, "dangling store address"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// How a concrete run ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// `%halt` was reached; the final value is rendered to text (so that
    /// outcomes of machines with different environment representations can
    /// be compared directly).
    Halted(String),
    /// The step budget was exhausted.
    OutOfFuel,
    /// A runtime error occurred.
    Error(RuntimeError),
}

impl Outcome {
    /// The halt value, if the run halted.
    pub fn value(&self) -> Option<&str> {
        match self {
            Outcome::Halted(v) => Some(v),
            _ => None,
        }
    }
}

/// Evaluation limits for a concrete run.
#[derive(Copy, Clone, Debug)]
pub struct Limits {
    /// Maximum machine transitions before giving up.
    pub max_steps: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps: 1_000_000,
        }
    }
}

/// The store: a finite map from addresses to values.
///
/// Concrete stores bind each address exactly once (freshness), so `insert`
/// asserts the address is new in debug builds.
#[derive(Clone, Debug)]
pub struct Store<E> {
    map: HashMap<Addr, Value<E>>,
}

impl<E> Default for Store<E> {
    fn default() -> Self {
        Store {
            map: HashMap::new(),
        }
    }
}

impl<E: Clone> Store<E> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `addr` to `value`.
    pub fn insert(&mut self, addr: Addr, value: Value<E>) {
        debug_assert!(
            !self.map.contains_key(&addr),
            "concrete store must bind each address once: {addr:?}"
        );
        self.map.insert(addr, value);
    }

    /// Overwrites the already-bound `addr` — atomic-cell writes
    /// (`reset!`/`cas!`) are the one exception to the bind-once
    /// discipline of concrete stores.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::DanglingAddress`] if `addr` was never
    /// bound.
    pub fn update(&mut self, addr: Addr, value: Value<E>) -> Result<(), RuntimeError> {
        match self.map.get_mut(&addr) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(RuntimeError::DanglingAddress),
        }
    }

    /// Reads `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::DanglingAddress`] for unbound addresses.
    pub fn read(&self, addr: Addr) -> Result<Value<E>, RuntimeError> {
        self.map
            .get(&addr)
            .cloned()
            .ok_or(RuntimeError::DanglingAddress)
    }

    /// Number of bound addresses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all `(address, value)` bindings in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Addr, &Value<E>)> {
        self.map.iter()
    }
}

/// Applies a primitive to evaluated arguments.
///
/// `alloc` must allocate a fresh address for a pair slot in the current
/// binding context; `strings` is the machine's dynamic string interner.
///
/// # Errors
///
/// Returns [`RuntimeError`] for type errors and `(error v)`.
pub fn eval_prim<E: Clone + PartialEq>(
    op: PrimOp,
    args: &[Value<E>],
    store: &mut Store<E>,
    mut alloc: impl FnMut(Slot) -> Addr,
    site: Label,
    strings: &mut Interner,
    program: &CpsProgram,
) -> Result<Value<E>, RuntimeError> {
    use PrimOp::*;

    fn int<E>(op: PrimOp, v: &Value<E>) -> Result<i64, RuntimeError> {
        match v {
            Value::Basic(Basic::Int(n)) => Ok(*n),
            _ => Err(RuntimeError::PrimTypeError {
                op,
                detail: "expected an integer".into(),
            }),
        }
    }

    let bool_v = |b: bool| Value::Basic(Basic::Bool(b));

    Ok(match op {
        Add => {
            let mut acc = 0i64;
            for a in args {
                acc = acc.wrapping_add(int(op, a)?);
            }
            Value::Basic(Basic::Int(acc))
        }
        Mul => {
            let mut acc = 1i64;
            for a in args {
                acc = acc.wrapping_mul(int(op, a)?);
            }
            Value::Basic(Basic::Int(acc))
        }
        Sub => Value::Basic(Basic::Int(
            int(op, &args[0])?.wrapping_sub(int(op, &args[1])?),
        )),
        Div => {
            let d = int(op, &args[1])?;
            if d == 0 {
                return Err(RuntimeError::PrimTypeError {
                    op,
                    detail: "division by zero".into(),
                });
            }
            Value::Basic(Basic::Int(int(op, &args[0])?.wrapping_div(d)))
        }
        Rem => {
            let d = int(op, &args[1])?;
            if d == 0 {
                return Err(RuntimeError::PrimTypeError {
                    op,
                    detail: "division by zero".into(),
                });
            }
            Value::Basic(Basic::Int(int(op, &args[0])?.wrapping_rem(d)))
        }
        NumEq => bool_v(int(op, &args[0])? == int(op, &args[1])?),
        Lt => bool_v(int(op, &args[0])? < int(op, &args[1])?),
        Le => bool_v(int(op, &args[0])? <= int(op, &args[1])?),
        Gt => bool_v(int(op, &args[0])? > int(op, &args[1])?),
        Ge => bool_v(int(op, &args[0])? >= int(op, &args[1])?),
        Eq => bool_v(shallow_eq(&args[0], &args[1])),
        Cons => {
            let car = alloc(Slot::Car(site));
            let cdr = alloc(Slot::Cdr(site));
            store.insert(car, args[0].clone());
            store.insert(cdr, args[1].clone());
            Value::Pair { car, cdr }
        }
        Car => match &args[0] {
            Value::Pair { car, .. } => store.read(*car)?,
            _ => {
                return Err(RuntimeError::PrimTypeError {
                    op,
                    detail: "expected a pair".into(),
                })
            }
        },
        Cdr => match &args[0] {
            Value::Pair { cdr, .. } => store.read(*cdr)?,
            _ => {
                return Err(RuntimeError::PrimTypeError {
                    op,
                    detail: "expected a pair".into(),
                })
            }
        },
        IsPair => bool_v(matches!(args[0], Value::Pair { .. })),
        IsNull => bool_v(matches!(args[0], Value::Basic(Basic::Nil))),
        IsZero => bool_v(int(op, &args[0])? == 0),
        IsNumber => bool_v(matches!(args[0], Value::Basic(Basic::Int(_)))),
        IsBool => bool_v(matches!(args[0], Value::Basic(Basic::Bool(_)))),
        IsProcedure => bool_v(matches!(args[0], Value::Clo { .. })),
        IsSymbol => bool_v(matches!(args[0], Value::Basic(Basic::Sym(_)))),
        IsString => bool_v(matches!(args[0], Value::Basic(Basic::Str(_)))),
        Not => bool_v(!args[0].is_truthy()),
        StringAppend => {
            let mut out = String::new();
            for a in args {
                match a {
                    Value::Basic(Basic::Str(s)) => out.push_str(strings.resolve(*s)),
                    _ => {
                        return Err(RuntimeError::PrimTypeError {
                            op,
                            detail: "expected strings".into(),
                        })
                    }
                }
            }
            let sym = strings.intern(&out);
            Value::Basic(Basic::Str(sym))
        }
        ToString => {
            let text = render_value(&args[0], store, strings, program, 8);
            let sym = strings.intern(&text);
            Value::Basic(Basic::Str(sym))
        }
        Error => {
            let text = render_value(&args[0], store, strings, program, 8);
            return Err(RuntimeError::UserError(text));
        }
        AtomNew => {
            let cell = alloc(Slot::Atom(site));
            store.insert(cell, args[0].clone());
            Value::Atom { cell }
        }
        AtomRead => match &args[0] {
            Value::Atom { cell } => store.read(*cell)?,
            _ => {
                return Err(RuntimeError::PrimTypeError {
                    op,
                    detail: "expected an atom".into(),
                })
            }
        },
        AtomSet => match &args[0] {
            Value::Atom { cell } => {
                store.update(*cell, args[1].clone())?;
                args[1].clone()
            }
            _ => {
                return Err(RuntimeError::PrimTypeError {
                    op,
                    detail: "expected an atom".into(),
                })
            }
        },
        AtomCas => match &args[0] {
            Value::Atom { cell } => {
                let current = store.read(*cell)?;
                if shallow_eq(&current, &args[1]) {
                    store.update(*cell, args[2].clone())?;
                    bool_v(true)
                } else {
                    bool_v(false)
                }
            }
            _ => {
                return Err(RuntimeError::PrimTypeError {
                    op,
                    detail: "expected an atom".into(),
                })
            }
        },
    })
}

/// Renders a value to text, following pairs through the store up to
/// `depth` links.
pub fn render_value<E: Clone>(
    v: &Value<E>,
    store: &Store<E>,
    strings: &Interner,
    program: &CpsProgram,
    depth: usize,
) -> String {
    match v {
        Value::Basic(Basic::Int(n)) => n.to_string(),
        Value::Basic(Basic::Bool(true)) => "#t".to_owned(),
        Value::Basic(Basic::Bool(false)) => "#f".to_owned(),
        Value::Basic(Basic::Nil) => "()".to_owned(),
        Value::Basic(Basic::Void) => "#void".to_owned(),
        Value::Basic(Basic::Str(s)) => format!("{:?}", strings.resolve(*s)),
        Value::Basic(Basic::Sym(s)) => strings.resolve(*s).to_owned(),
        Value::Clo { lam, .. } => format!("#<procedure:{:?}>", program.lam(*lam).label),
        Value::Thread(id) => format!("#<thread:{id}>"),
        Value::RetK(id) => format!("#<thread-return:{id}>"),
        Value::Atom { cell } => {
            if depth == 0 {
                return "#<atom …>".to_owned();
            }
            let contents = store
                .read(*cell)
                .map(|v| render_value(&v, store, strings, program, depth - 1))
                .unwrap_or_else(|_| "?".to_owned());
            format!("#<atom {contents}>")
        }
        Value::Pair { car, cdr } => {
            if depth == 0 {
                return "(…)".to_owned();
            }
            let car_txt = store
                .read(*car)
                .map(|v| render_value(&v, store, strings, program, depth - 1))
                .unwrap_or_else(|_| "?".to_owned());
            let cdr_txt = store
                .read(*cdr)
                .map(|v| render_value(&v, store, strings, program, depth - 1))
                .unwrap_or_else(|_| "?".to_owned());
            format!("({car_txt} . {cdr_txt})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfa_syntax::compile;

    fn mini_program() -> CpsProgram {
        compile("42").unwrap()
    }

    #[test]
    fn truthiness_only_false_is_false() {
        assert!(!Value::<u32>::Basic(Basic::Bool(false)).is_truthy());
        assert!(Value::<u32>::Basic(Basic::Bool(true)).is_truthy());
        assert!(Value::<u32>::Basic(Basic::Int(0)).is_truthy());
        assert!(Value::<u32>::Basic(Basic::Nil).is_truthy());
    }

    #[test]
    fn prim_arithmetic() {
        let p = mini_program();
        let mut store: Store<u32> = Store::new();
        let mut strings = p.interner().clone();
        let mut next = 0u64;
        let mut alloc = |slot: Slot| {
            next += 1;
            Addr {
                slot,
                ctx: Ctx(next),
            }
        };
        let two = Value::Basic(Basic::Int(2));
        let three = Value::Basic(Basic::Int(3));
        let r = eval_prim(
            PrimOp::Add,
            &[two.clone(), three.clone()],
            &mut store,
            &mut alloc,
            Label(0),
            &mut strings,
            &p,
        )
        .unwrap();
        assert_eq!(r, Value::Basic(Basic::Int(5)));
        let r = eval_prim(
            PrimOp::Lt,
            &[two, three],
            &mut store,
            &mut alloc,
            Label(0),
            &mut strings,
            &p,
        )
        .unwrap();
        assert_eq!(r, Value::Basic(Basic::Bool(true)));
    }

    #[test]
    fn prim_pairs_round_trip() {
        let p = mini_program();
        let mut store: Store<u32> = Store::new();
        let mut strings = p.interner().clone();
        let mut next = 0u64;
        let mut alloc = |slot: Slot| {
            next += 1;
            Addr {
                slot,
                ctx: Ctx(next),
            }
        };
        let pair = eval_prim(
            PrimOp::Cons,
            &[Value::Basic(Basic::Int(1)), Value::Basic(Basic::Nil)],
            &mut store,
            &mut alloc,
            Label(7),
            &mut strings,
            &p,
        )
        .unwrap();
        let car = eval_prim(
            PrimOp::Car,
            std::slice::from_ref(&pair),
            &mut store,
            &mut alloc,
            Label(7),
            &mut strings,
            &p,
        )
        .unwrap();
        assert_eq!(car, Value::Basic(Basic::Int(1)));
        let cdr = eval_prim(
            PrimOp::Cdr,
            &[pair],
            &mut store,
            &mut alloc,
            Label(7),
            &mut strings,
            &p,
        )
        .unwrap();
        assert_eq!(cdr, Value::Basic(Basic::Nil));
    }

    #[test]
    fn prim_type_errors() {
        let p = mini_program();
        let mut store: Store<u32> = Store::new();
        let mut strings = p.interner().clone();
        let mut alloc = |slot: Slot| Addr { slot, ctx: Ctx(0) };
        let err = eval_prim(
            PrimOp::Car,
            &[Value::Basic(Basic::Int(1))],
            &mut store,
            &mut alloc,
            Label(0),
            &mut strings,
            &p,
        );
        assert!(matches!(
            err,
            Err(RuntimeError::PrimTypeError {
                op: PrimOp::Car,
                ..
            })
        ));
        let err = eval_prim(
            PrimOp::Div,
            &[Value::Basic(Basic::Int(1)), Value::Basic(Basic::Int(0))],
            &mut store,
            &mut alloc,
            Label(0),
            &mut strings,
            &p,
        );
        assert!(err.is_err());
    }

    #[test]
    fn error_prim_raises_user_error() {
        let p = mini_program();
        let mut store: Store<u32> = Store::new();
        let mut strings = p.interner().clone();
        let mut alloc = |slot: Slot| Addr { slot, ctx: Ctx(0) };
        let err = eval_prim(
            PrimOp::Error,
            &[Value::Basic(Basic::Int(13))],
            &mut store,
            &mut alloc,
            Label(0),
            &mut strings,
            &p,
        );
        assert_eq!(err, Err(RuntimeError::UserError("13".into())));
    }

    #[test]
    fn render_follows_pairs() {
        let p = mini_program();
        let mut store: Store<u32> = Store::new();
        let strings = p.interner().clone();
        let a = Addr {
            slot: Slot::Car(Label(0)),
            ctx: Ctx(0),
        };
        let d = Addr {
            slot: Slot::Cdr(Label(0)),
            ctx: Ctx(0),
        };
        store.insert(a, Value::Basic(Basic::Int(1)));
        store.insert(d, Value::Basic(Basic::Nil));
        let rendered = render_value(&Value::Pair { car: a, cdr: d }, &store, &strings, &p, 8);
        assert_eq!(rendered, "(1 . ())");
    }
}

//! Concrete binding contexts and their call-string metadata.
//!
//! Both concrete machines allocate a fresh [`Ctx`] for every binding
//! context they create. For the soundness abstraction maps (`α` in §3.5
//! and §5.3 of the paper) each context also remembers a *call string* —
//! the sequence of call-site labels that leads to it — as a shared
//! (`Rc`-linked) list. [`CtxTable::first_k`] projects the first `k`
//! labels, which is exactly `α(t) = first_k(t)` for k-CFA and the top-`m`
//! frame abstraction for m-CFA.

use crate::base::Ctx;
use cfa_syntax::cps::Label;
use std::rc::Rc;

/// One cons cell of a call string.
#[derive(Debug)]
struct Node {
    label: Label,
    parent: Option<Rc<Node>>,
}

/// Allocates contexts and records each context's call string.
#[derive(Default, Debug)]
pub struct CtxTable {
    strings: Vec<Option<Rc<Node>>>,
}

impl CtxTable {
    /// Creates a table containing only the initial context `t₀` (empty
    /// call string).
    pub fn new() -> Self {
        CtxTable {
            strings: vec![None],
        }
    }

    /// The initial context.
    pub fn initial(&self) -> Ctx {
        Ctx(0)
    }

    fn push(&mut self, node: Option<Rc<Node>>) -> Ctx {
        let id = Ctx(self.strings.len() as u64);
        self.strings.push(node);
        id
    }

    fn node(&self, ctx: Ctx) -> Option<Rc<Node>> {
        self.strings[ctx.0 as usize].clone()
    }

    /// `tick(ℓ, t)`: a fresh context whose call string is `ℓ : string(t)`.
    pub fn tick(&mut self, label: Label, from: Ctx) -> Ctx {
        let node = Rc::new(Node {
            label,
            parent: self.node(from),
        });
        self.push(Some(node))
    }

    /// A fresh context whose call string equals `from`'s (m-CFA's
    /// *restore* of a continuation's saved environment, §5.3: a new
    /// concrete id, same abstract content).
    pub fn fresh_like(&mut self, from: Ctx) -> Ctx {
        let node = self.node(from);
        self.push(node)
    }

    /// The first `k` labels of the context's call string (most recent
    /// first). This is the k-CFA/m-CFA abstraction map on contexts.
    pub fn first_k(&self, ctx: Ctx, k: usize) -> Vec<Label> {
        let mut out = Vec::with_capacity(k);
        let mut cur = self.node(ctx);
        while out.len() < k {
            match cur {
                Some(node) => {
                    out.push(node.label);
                    cur = node.parent.clone();
                }
                None => break,
            }
        }
        out
    }

    /// Total number of contexts allocated.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether only the initial context exists.
    pub fn is_empty(&self) -> bool {
        self.strings.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_context_has_empty_string() {
        let t = CtxTable::new();
        assert_eq!(t.first_k(t.initial(), 4), vec![]);
    }

    #[test]
    fn tick_prepends_labels() {
        let mut t = CtxTable::new();
        let a = t.tick(Label(1), t.initial());
        let b = t.tick(Label(2), a);
        assert_eq!(t.first_k(b, 3), vec![Label(2), Label(1)]);
        assert_eq!(t.first_k(b, 1), vec![Label(2)]);
        assert_eq!(t.first_k(b, 0), vec![]);
    }

    #[test]
    fn fresh_like_copies_string_with_new_identity() {
        let mut t = CtxTable::new();
        let a = t.tick(Label(1), t.initial());
        let b = t.fresh_like(a);
        assert_ne!(a, b);
        assert_eq!(t.first_k(a, 4), t.first_k(b, 4));
    }

    #[test]
    fn contexts_are_unique() {
        let mut t = CtxTable::new();
        let a = t.tick(Label(1), t.initial());
        let b = t.tick(Label(1), t.initial());
        assert_ne!(a, b, "two ticks produce distinct concrete times");
    }
}

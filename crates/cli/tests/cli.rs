//! End-to-end tests of the `cfa` command-line tool.

use std::io::Write as _;
use std::process::Command;

fn cfa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cfa"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("cfa-cli-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn run_executes_scheme() {
    let file = write_temp("run.scm", "(+ 20 22)");
    let out = cfa().arg("run").arg(&file).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "42");
}

#[test]
fn analyze_reports_all_panel_analyses() {
    let file = write_temp("analyze.scm", "(define (id x) x) (id (id 1))");
    let out = cfa()
        .args(["analyze", "--all"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["k-CFA(k=1)", "m-CFA(m=1)", "poly-k-CFA(k=1)", "k-CFA(k=0)"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    assert!(text.contains("{1}"));
}

#[test]
fn analyze_accepts_explicit_depths() {
    let file = write_temp("depth.scm", "((lambda (x) x) 9)");
    let out = cfa()
        .args(["analyze", "--mcfa", "2"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("m-CFA(m=2)"));
}

#[test]
fn cps_prints_conversion() {
    let file = write_temp("cps.scm", "(if #t 1 2)");
    let out = cfa().arg("cps").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("%if"), "{text}");
}

#[test]
fn fj_analyzes_java() {
    let file = write_temp(
        "p.java",
        "class Main extends Object {
           Main() { super(); }
           Object main() { Object o; o = new Object(); return o; }
         }",
    );
    let out = cfa().args(["fj", "--k", "1"]).arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("result classes: {Object}"), "{text}");
}

#[test]
fn fj_run_executes_java() {
    let file = write_temp(
        "run.java",
        "class Main extends Object {
           Main() { super(); }
           Object main() { Main m; m = new Main(); return m; }
         }",
    );
    let out = cfa().arg("fj-run").arg(&file).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "Main");
}

#[test]
fn analyze_report_prints_flow_table() {
    let file = write_temp("report.scm", "(define (id x) x) (id 1)");
    let out = cfa()
        .args(["analyze", "--kcfa", "1", "--report"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("store ("), "{text}");
    assert!(text.contains("call targets"), "{text}");
}

const RACY_SCHEME: &str = "(let ((a (atom 0)))
   (let ((t (spawn (reset! a 1))))
     (deref a)))";

const JOINED_SCHEME: &str = "(let ((a (atom 0)))
   (let ((t (spawn (reset! a 1))))
     (begin (join t) (deref a))))";

#[test]
fn races_reports_unjoined_conflict() {
    let file = write_temp("racy.scm", RACY_SCHEME);
    let out = cfa()
        .args(["races", "--kcfa", "1"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 race"), "{text}");
    assert!(text.contains("read/write"), "{text}");
    assert!(text.contains("fix:"), "{text}");
}

#[test]
fn races_silent_on_joined_program() {
    let file = write_temp("joined.scm", JOINED_SCHEME);
    let out = cfa().arg("races").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 races"), "{text}");
    assert!(text.contains("no races found"), "{text}");
}

#[test]
fn races_json_is_stable_shape() {
    let file = write_temp("racy-json.scm", RACY_SCHEME);
    let out = cfa()
        .args(["races", "--mcfa", "1", "--json"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.trim();
    assert!(line.starts_with("{\"analysis\":\"m=1\""), "{line}");
    assert!(line.contains("\"races\":[{"), "{line}");
    assert!(line.contains("\"kind\":\"read/write\""), "{line}");
    assert!(line.ends_with("}"), "{line}");
}

#[test]
fn races_suppresses_partial_reports() {
    let file = write_temp("races-partial.scm", RACY_SCHEME);
    let out = cfa()
        .arg("races")
        .arg(&file)
        .env("CFA_MAX_ITERS", "1")
        .output()
        .unwrap();
    // A truncated fixpoint must not print a (misleadingly empty) report.
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    assert!(out.stdout.is_empty());
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = cfa().arg("bogus-subcommand").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn parse_errors_exit_nonzero() {
    let file = write_temp("bad.scm", "(((");
    let out = cfa().arg("run").arg(&file).output().unwrap();
    assert!(!out.status.success());
    assert!(!out.stderr.is_empty());
}

#[test]
fn missing_file_reports_error() {
    let out = cfa()
        .args(["run", "/nonexistent/nope.scm"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn dot_emits_graphviz() {
    let file = write_temp("dot.scm", "(define (f x) x) (f (f 1))");
    let out = cfa().arg("dot").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph callgraph {"), "{text}");
    assert!(text.contains("->"), "{text}");
}

const DISPATCH_JAVA: &str = "class A extends Object {
  A() { super(); }
  Object who() { Object oa; oa = new A(); return oa; }
}
class B extends A {
  B() { super(); }
  Object who() { Object ob; ob = new B(); return ob; }
}
class Main extends Object {
  Main() { super(); }
  Object main() {
    A x;
    x = new B();
    return x.who();
  }
}";

#[test]
fn fj_dot_emits_method_graph() {
    let file = write_temp("dot.java", DISPATCH_JAVA);
    let out = cfa()
        .args(["fj-dot", "--k", "1"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph fj_callgraph {"), "{text}");
    assert!(text.contains("B.who"), "{text}");
    assert!(text.contains("style=solid"), "{text}");
}

#[test]
fn fj_datalog_reports_agreement() {
    let file = write_temp("datalog.java", DISPATCH_JAVA);
    let out = cfa()
        .args(["fj-datalog", "--k", "1"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("machine agrees: yes"), "{text}");
    assert!(text.contains("result classes: {B}"), "{text}");
}

#[test]
fn fj_datalog_rejects_deep_contexts() {
    let file = write_temp("deep.java", DISPATCH_JAVA);
    let out = cfa()
        .args(["fj-datalog", "--k", "5"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn iteration_limit_exits_with_code_4() {
    let file = write_temp("iters.scm", "(define (id x) x) (id (id 1))");
    let out = cfa()
        .arg("analyze")
        .arg(&file)
        .env("CFA_MAX_ITERS", "1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("CFA_MAX_ITERS"), "{err}");
}

#[test]
fn time_budget_overrun_exits_with_code_3() {
    let file = write_temp("budget.scm", "(define (id x) x) (id (id 1))");
    let out = cfa()
        .arg("analyze")
        .arg(&file)
        .env("CFA_TIME_BUDGET_MS", "0")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("timed out"), "{err}");
}

#[test]
fn injected_cancellation_exits_with_code_5() {
    // The sequential engine checks the token every 256 pops, so the
    // workload must outlive that cadence for the flip to be observed.
    let file = write_temp("cancel.scm", &cfa_workloads::worst_case_source(7));
    let out = cfa()
        .arg("analyze")
        .arg(&file)
        .env("CFA_FAULT_PLAN", "cancel_pop=1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cancelled"), "{err}");
}

#[test]
fn injected_panic_exits_with_code_6_not_a_crash() {
    let file = write_temp("abort.scm", "(define (id x) x) (id (id 1))");
    let out = cfa()
        .arg("analyze")
        .arg(&file)
        .env("CFA_FAULT_PLAN", "panic_eval=3")
        .output()
        .unwrap();
    // 6, not the 101 of an uncaught panic: the abort was contained.
    assert_eq!(out.status.code(), Some(6), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("analysis aborted at"), "{err}");
    // The partial metrics still printed, naming the status.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Aborted"), "{text}");
}

#[test]
fn dot_suppresses_partial_graphs() {
    let file = write_temp("partial.scm", "(define (f x) x) (f (f 1))");
    let out = cfa()
        .arg("dot")
        .arg(&file)
        .env("CFA_MAX_ITERS", "1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    assert!(
        out.stdout.is_empty(),
        "an interrupted analysis must not emit a partial graph"
    );
}

#[test]
fn trace_writes_chrome_json_with_per_worker_lanes() {
    let file = write_temp("trace.scm", "(define (f x) x) (f (f (f 1)))");
    let out_path =
        std::env::temp_dir().join(format!("cfa-cli-test-{}-trace.json", std::process::id()));
    let out = cfa()
        .args(["trace", "--threads", "2", "--out"])
        .arg(&out_path)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 worker lanes"), "{text}");
    let json = std::fs::read_to_string(&out_path).unwrap();
    // Chrome trace_event shape: a traceEvents array with one
    // thread_name metadata record per worker lane and complete-span
    // eval slices carrying the config id.
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"thread_name\""), "{json}");
    for tid in [0, 1] {
        assert!(
            json.contains(&format!("\"tid\":{tid}")),
            "missing lane {tid}"
        );
    }
    assert!(json.contains("\"ph\":\"X\""), "no complete spans: {json}");
    assert!(
        json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"),
        "{json}"
    );
}

#[test]
fn trace_suppresses_partial_profiles() {
    let file = write_temp("trace-partial.scm", "(define (f x) x) (f (f 1))");
    let out_path = std::env::temp_dir().join(format!(
        "cfa-cli-test-{}-trace-partial.json",
        std::process::id()
    ));
    let out = cfa()
        .args(["trace", "--out"])
        .arg(&out_path)
        .arg(&file)
        .env("CFA_MAX_ITERS", "1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    assert!(
        !out_path.exists(),
        "an interrupted analysis must not write a profile"
    );
}

#[test]
fn serve_answers_stats_with_pool_gauges() {
    use std::process::Stdio;
    let mut child = cfa()
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"callgraph k=1\n(define (id x) x) (id 42)\n.\nstats\n.\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ok 0 callgraph"), "{text}");
    assert!(text.contains("ok 1 stats"), "{text}");
    // One line of JSON gauges; the earlier callgraph request is
    // counted by the time the stats snapshot is taken (responses are
    // drained in request order).
    let stats_line = text
        .lines()
        .find(|l| l.starts_with("{\"threads\":"))
        .unwrap_or_else(|| panic!("no stats JSON in:\n{text}"));
    assert!(stats_line.contains("\"submitted\":1"), "{stats_line}");
    assert!(stats_line.contains("\"queued\":"), "{stats_line}");
    assert!(stats_line.ends_with('}'), "{stats_line}");
}

#[test]
fn dump_is_engine_invariant_and_compare_agrees() {
    let file = write_temp("dump.scm", JOINED_SCHEME);
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let seq = tmp.join(format!("cfa-cli-test-{pid}-dump-seq.json"));
    let shard = tmp.join(format!("cfa-cli-test-{pid}-dump-shard.json"));
    for (backend, mode, out_path) in [
        ("sequential", "semi-naive", &seq),
        ("sharded", "full-reeval", &shard),
    ] {
        let out = cfa()
            .args(["dump", "--kcfa", "1", "--backend", backend, "--mode", mode])
            .args(["--threads", "3", "--out"])
            .arg(out_path)
            .arg(&file)
            .output()
            .unwrap();
        assert!(out.status.success(), "{backend}: {out:?}");
    }
    // Byte-identical normal forms regardless of which engine ran.
    assert_eq!(std::fs::read(&seq).unwrap(), std::fs::read(&shard).unwrap());
    let out = cfa().arg("compare").args([&seq, &shard]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "identical");
}

#[test]
fn compare_names_the_first_divergent_fact() {
    let file = write_temp("perturb.scm", "(define (id x) x) (id 42)");
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let a = tmp.join(format!("cfa-cli-test-{pid}-perturb-a.json"));
    let b = tmp.join(format!("cfa-cli-test-{pid}-perturb-b.json"));
    let out = cfa()
        .args(["dump", "--kcfa", "1", "--out"])
        .arg(&a)
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    // Artificially perturb one flow fact: the halt value 42 becomes 43.
    let perturbed = std::fs::read_to_string(&a).unwrap().replace("42", "43");
    std::fs::write(&b, perturbed).unwrap();
    let out = cfa()
        .args(["compare", "--limit", "2"])
        .args([&a, &b])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("42"), "diff must name the fact:\n{text}");
    assert!(text.contains("divergent fact"), "{text}");
}

#[test]
fn compare_rejects_malformed_snapshots_with_code_2() {
    let good_src = write_temp("wellformed.scm", "((lambda (x) x) 1)");
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let good = tmp.join(format!("cfa-cli-test-{pid}-good.json"));
    let out = cfa()
        .args(["dump", "--mcfa", "1", "--out"])
        .arg(&good)
        .arg(&good_src)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let bad = write_temp("mangled.json", "{\"schema\": oops");
    let out = cfa().arg("compare").arg(&good).arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("malformed"), "{err}");
}

#[test]
fn dump_refuses_partial_fixpoints() {
    let file = write_temp("dump-partial.scm", "(define (f x) x) (f (f 1))");
    let out_path = std::env::temp_dir().join(format!(
        "cfa-cli-test-{}-dump-partial.json",
        std::process::id()
    ));
    let out = cfa()
        .args(["dump", "--kcfa", "1", "--out"])
        .arg(&out_path)
        .arg(&file)
        .env("CFA_MAX_ITERS", "1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    assert!(
        !out_path.exists(),
        "a truncated run must not be dumped as a comparable snapshot"
    );
}

#[test]
fn compare_rejects_incomplete_snapshots_as_not_comparable() {
    let src = write_temp("complete.scm", "((lambda (x) x) 1)");
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let complete = tmp.join(format!("cfa-cli-test-{pid}-complete.json"));
    let out = cfa()
        .args(["dump", "--kcfa", "0", "--out"])
        .arg(&complete)
        .arg(&src)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    // Hand-forge a snapshot claiming a truncated run; `cfa dump` itself
    // refuses to produce one, but a stale or corrupted artifact could.
    let truncated = tmp.join(format!("cfa-cli-test-{pid}-truncated.json"));
    let forged = std::fs::read_to_string(&complete).unwrap().replace(
        "\"status\": \"complete\"",
        "\"status\": \"iteration-limit\"",
    );
    std::fs::write(&truncated, forged).unwrap();
    let out = cfa()
        .arg("compare")
        .args([&complete, &truncated])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not comparable"), "{err}");
}

#[test]
fn fj_gc_reports_precision_neutral_collection() {
    let file = write_temp("gc.java", DISPATCH_JAVA);
    let out = cfa()
        .args(["fj-gc", "--k", "1"])
        .arg(&file)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GC is precision-neutral: yes"), "{text}");
    assert!(text.contains("singular"), "{text}");
}

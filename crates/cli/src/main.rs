//! `cfa` — analyze mini-Scheme or Featherweight Java programs from the
//! command line.
//!
//! ```text
//! cfa analyze [--kcfa K | --mcfa M | --poly K] [--all] FILE.scm
//! cfa races [--kcfa K | --mcfa M | --poly K] [--json] FILE.scm
//! cfa dump [--kcfa K | --mcfa M | --poly K] [--backend B] [--out FILE] FILE.scm
//! cfa compare A.json B.json         # diff two canonical snapshots
//! cfa serve [--backend B]           # pooled query server over stdin
//! cfa trace [--out FILE] FILE.scm   # Chrome trace of one fixpoint
//! cfa run FILE.scm                  # concrete execution (shared envs)
//! cfa cps FILE.scm                  # print the CPS conversion
//! cfa dot FILE.scm                  # 1-CFA call graph as Graphviz dot
//! cfa fj [--k K] [--per-statement] FILE.java
//! cfa fj-run FILE.java              # concrete FJ execution
//! cfa fj-dot [--k K] FILE.java      # method-level call graph as dot
//! cfa fj-datalog [--k K] FILE.java  # points-to on the Datalog road
//! cfa fj-gc [--k K] FILE.java       # ΓCFA: abstract GC + counting
//! ```
//!
//! The analysis-running subcommands read their [`EngineLimits`] from
//! the environment: `CFA_MAX_ITERS`, `CFA_TIME_BUDGET_MS`, and
//! `CFA_FAULT_PLAN` (see `cfa_core::fabric::FaultPlan::parse`).
//!
//! Exit codes: `0` success, `1` input/analysis errors, `2` usage, and
//! one distinct code per early-stop [`Status`] — `3` timed out, `4`
//! iteration limit, `5` cancelled, `6` aborted — each with a one-line
//! stderr diagnostic, so scripts can tell a budget overrun from a
//! contained crash without parsing stdout. `cfa compare` redefines the
//! small codes for diffing: `0` identical, `1` divergent, `2`
//! malformed or not-comparable input.

use cfa_core::engine::{EngineLimits, Status};
use cfa_core::Analysis;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  cfa analyze [--kcfa K | --mcfa M | --poly K | --all] [--report] FILE.scm
  cfa races [--kcfa K | --mcfa M | --poly K] [--json] FILE.scm
  cfa dump [--kcfa K | --mcfa M | --poly K] [--backend sequential|replicated|sharded|reference]
           [--mode semi-naive|full-reeval] [--threads N] [--out FILE] FILE.scm
  cfa compare [--limit N] A.json B.json
  cfa serve [--backend replicated|sharded]
  cfa trace [--out FILE] [--kcfa K] [--backend replicated|sharded] [--threads N] FILE.scm
  cfa run FILE.scm
  cfa cps FILE.scm
  cfa dot FILE.scm
  cfa fj [--k K] [--per-statement] FILE.java
  cfa fj-run FILE.java
  cfa fj-dot [--k K] FILE.java
  cfa fj-datalog [--k K] FILE.java
  cfa fj-gc [--k K] FILE.java"
    );
    ExitCode::from(2)
}

/// Limits for the analysis-running subcommands, read from the
/// environment (`CFA_MAX_ITERS`, `CFA_TIME_BUDGET_MS`,
/// `CFA_FAULT_PLAN`); unset variables leave the defaults.
fn run_limits() -> EngineLimits {
    EngineLimits::from_env()
}

/// Maps an early-stop status to its diagnostic and distinct exit code:
/// `3` timed out, `4` iteration limit, `5` cancelled, `6` aborted.
/// `Ok(())` on completion.
fn check_status(status: &Status) -> Result<(), ExitCode> {
    let (code, line) = match status {
        Status::Completed => return Ok(()),
        Status::TimedOut => (
            3u8,
            "analysis timed out (raise CFA_TIME_BUDGET_MS)".to_owned(),
        ),
        Status::IterationLimit => (
            4,
            "analysis hit the iteration limit (raise CFA_MAX_ITERS)".to_owned(),
        ),
        Status::Cancelled => (5, "analysis was cancelled".to_owned()),
        Status::Aborted { config, message } => {
            (6, format!("analysis aborted at {config}: {message}"))
        }
    };
    eprintln!("cfa: {line}");
    Err(ExitCode::from(code))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };
    match command.as_str() {
        "analyze" => cmd_analyze(rest),
        "races" => cmd_races(rest),
        "dump" => cmd_dump(rest),
        "compare" => cmd_compare(rest),
        "serve" => cmd_serve(rest),
        "trace" => cmd_trace(rest),
        "run" => cmd_run(rest),
        "cps" => cmd_cps(rest),
        "dot" => cmd_dot(rest),
        "fj" => cmd_fj(rest),
        "fj-run" => cmd_fj_run(rest),
        "fj-dot" => cmd_fj_dot(rest),
        "fj-datalog" => cmd_fj_datalog(rest),
        "fj-gc" => cmd_fj_gc(rest),
        _ => usage(),
    }
}

/// `cfa dot FILE.scm` — print the 1-CFA call graph as Graphviz dot.
fn cmd_dot(args: &[String]) -> ExitCode {
    let [file] = args else { return usage() };
    let src = match read_file(file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let program = match cfa_syntax::compile(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cfa: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = cfa_core::analyze_kcfa(&program, 1, run_limits());
    // An interrupted analysis would render a partial (misleading)
    // graph; fail with the status's exit code instead.
    if let Err(code) = check_status(&result.metrics.status) {
        return code;
    }
    let graph = cfa_core::callgraph::CallGraph::from_metrics(&program, &result.metrics);
    print!("{}", graph.to_dot(&program));
    ExitCode::SUCCESS
}

fn read_file(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cfa: cannot read '{path}': {e}");
        ExitCode::FAILURE
    })
}

fn parse_usize(s: &str, what: &str) -> Result<usize, ExitCode> {
    s.parse().map_err(|_| {
        eprintln!("cfa: {what} must be a number, got '{s}'");
        ExitCode::from(2)
    })
}

fn print_metrics(m: &cfa_core::Metrics) {
    println!("== {} ==", m.analysis);
    println!("  status:       {:?}", m.status);
    println!("  time:         {:.3?}", m.elapsed);
    println!("  configs:      {}", m.config_count);
    println!(
        "  store:        {} addresses, {} facts",
        m.store_entries, m.store_facts
    );
    println!(
        "  inlinings:    {}/{} user call sites are singletons",
        m.singleton_user_calls, m.reachable_user_calls
    );
    println!("  environments: {} distinct", m.distinct_envs);
    let values: Vec<&str> = m.halt_values.iter().map(String::as_str).collect();
    println!("  result:       {{{}}}", values.join(", "));
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let mut analyses: Vec<Analysis> = Vec::new();
    let mut file = None;
    let mut report = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--report" => {
                report = true;
                i += 1;
            }
            "--kcfa" | "--mcfa" | "--poly" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                let Ok(depth) = parse_usize(value, "context depth") else {
                    return usage();
                };
                analyses.push(match args[i].as_str() {
                    "--kcfa" => Analysis::KCfa { k: depth },
                    "--mcfa" => Analysis::MCfa { m: depth },
                    _ => Analysis::PolyKCfa { k: depth },
                });
                i += 2;
            }
            "--all" => {
                analyses.extend(Analysis::paper_panel());
                i += 1;
            }
            other if !other.starts_with("--") => {
                file = Some(other.to_owned());
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    if analyses.is_empty() {
        analyses.push(Analysis::KCfa { k: 1 });
    }
    let src = match read_file(&file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let program = match cfa_syntax::compile(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cfa: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{file}: {} λ-terms, {} call sites, {} terms\n",
        program.lam_count(),
        program.call_count(),
        program.term_count()
    );
    for analysis in analyses {
        if report {
            // Full per-context flow report (Figures 1/2 style).
            let opts = cfa_core::report::ReportOptions::default();
            let (text, status) = match analysis {
                Analysis::KCfa { k } => {
                    let r = cfa_core::analyze_kcfa(&program, k, run_limits());
                    (
                        cfa_core::report::report_kcfa(&program, &r, opts),
                        r.metrics.status,
                    )
                }
                Analysis::MCfa { m } => {
                    let r = cfa_core::analyze_mcfa(&program, m, run_limits());
                    (
                        cfa_core::report::report_flat(&program, &r, opts),
                        r.metrics.status,
                    )
                }
                Analysis::PolyKCfa { k } => {
                    let r = cfa_core::analyze_poly_kcfa(&program, k, run_limits());
                    (
                        cfa_core::report::report_flat(&program, &r, opts),
                        r.metrics.status,
                    )
                }
            };
            println!("{text}");
            if let Err(code) = check_status(&status) {
                return code;
            }
        } else {
            let m = cfa_core::analyze(&program, analysis, run_limits());
            print_metrics(&m);
            println!();
            // The metrics above already name the status; the exit code
            // and stderr line make it machine-visible.
            if let Err(code) = check_status(&m.status) {
                return code;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `cfa races [--kcfa K | --mcfa M | --poly K] [--json] FILE.scm` —
/// run the static race detector over the chosen abstract-thread
/// analysis (default `--kcfa 1`) and print the report as text or JSON.
fn cmd_races(args: &[String]) -> ExitCode {
    let mut analysis = Analysis::KCfa { k: 1 };
    let mut json = false;
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--kcfa" | "--mcfa" | "--poly" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                let Ok(depth) = parse_usize(value, "context depth") else {
                    return usage();
                };
                analysis = match args[i].as_str() {
                    "--kcfa" => Analysis::KCfa { k: depth },
                    "--mcfa" => Analysis::MCfa { m: depth },
                    _ => Analysis::PolyKCfa { k: depth },
                };
                i += 2;
            }
            other if !other.starts_with("--") => {
                file = Some(other.to_owned());
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let src = match read_file(&file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let program = match cfa_syntax::compile(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cfa: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (report, status) = match analysis {
        Analysis::KCfa { k } => {
            let r = cfa_core::analyze_kcfa(&program, k, run_limits());
            (
                cfa_core::races_kcfa(&program, k, &r.fixpoint),
                r.metrics.status,
            )
        }
        Analysis::MCfa { m } => {
            let r = cfa_core::analyze_mcfa(&program, m, run_limits());
            (
                cfa_core::races_mcfa(&program, m, &r.fixpoint),
                r.metrics.status,
            )
        }
        Analysis::PolyKCfa { k } => {
            let r = cfa_core::analyze_poly_kcfa(&program, k, run_limits());
            (
                cfa_core::races_poly_kcfa(&program, k, &r.fixpoint),
                r.metrics.status,
            )
        }
    };
    // A truncated fixpoint would silently under-report races; make the
    // early stop the outcome instead of printing a partial report.
    if let Err(code) = check_status(&status) {
        return code;
    }
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    ExitCode::SUCCESS
}

/// Runs one engine configuration to its fixpoint and canonicalizes the
/// result. A run that stops early (timeout, iteration limit, fault)
/// exits with its status code — a partial fixpoint is never dumped as
/// a comparable snapshot.
fn dump_snapshot(
    program: &cfa_syntax::cps::CpsProgram,
    analysis: Analysis,
    backend: &str,
    mode: cfa_core::EvalMode,
    threads: usize,
) -> Result<cfa_core::CanonSnapshot, ExitCode> {
    use cfa_core::engine::run_fixpoint_with;
    use cfa_core::flatcfa::{FlatCfaMachine, FlatPolicy};
    use cfa_core::kcfa::KCfaMachine;
    use cfa_core::reference::run_fixpoint_reference;
    use cfa_core::run_fixpoint_parallel_on;

    let bad_backend = || {
        eprintln!(
            "cfa: unknown engine backend '{backend}' \
             (use sequential, replicated, sharded or reference)"
        );
        ExitCode::from(2)
    };
    // `canon_*` only rejects incomplete runs, and `check_status` has
    // already turned those into their exit codes.
    let canonical = "complete fixpoints are canonicalizable";
    match analysis {
        Analysis::KCfa { k } => {
            let mut machine = KCfaMachine::new(program, k);
            if backend == "reference" {
                let r = run_fixpoint_reference(&mut machine, run_limits());
                check_status(&r.status)?;
                return Ok(cfa_core::canon_kcfa_ref(program, k, &r).expect(canonical));
            }
            let r = match backend {
                "sequential" => run_fixpoint_with(&mut machine, run_limits(), mode),
                "replicated" => run_fixpoint_parallel_on::<cfa_core::Replicated, _>(
                    &mut machine,
                    threads,
                    run_limits(),
                    mode,
                ),
                "sharded" => run_fixpoint_parallel_on::<cfa_core::Sharded, _>(
                    &mut machine,
                    threads,
                    run_limits(),
                    mode,
                ),
                _ => return Err(bad_backend()),
            };
            check_status(&r.status)?;
            Ok(cfa_core::canon_kcfa(program, k, &r).expect(canonical))
        }
        Analysis::MCfa { m: bound } | Analysis::PolyKCfa { k: bound } => {
            let policy = match analysis {
                Analysis::MCfa { .. } => FlatPolicy::TopMFrames,
                _ => FlatPolicy::LastKCalls,
            };
            let canon = |fix: &cfa_core::engine::FixpointResult<_, _, _>| match analysis {
                Analysis::MCfa { .. } => cfa_core::canon_mcfa(program, bound, fix),
                _ => cfa_core::canon_poly_kcfa(program, bound, fix),
            };
            let mut machine = FlatCfaMachine::new(program, bound, policy);
            if backend == "reference" {
                let r = run_fixpoint_reference(&mut machine, run_limits());
                check_status(&r.status)?;
                let snap = match analysis {
                    Analysis::MCfa { .. } => cfa_core::canon_mcfa_ref(program, bound, &r),
                    _ => cfa_core::canon_poly_kcfa_ref(program, bound, &r),
                };
                return Ok(snap.expect(canonical));
            }
            let r = match backend {
                "sequential" => run_fixpoint_with(&mut machine, run_limits(), mode),
                "replicated" => run_fixpoint_parallel_on::<cfa_core::Replicated, _>(
                    &mut machine,
                    threads,
                    run_limits(),
                    mode,
                ),
                "sharded" => run_fixpoint_parallel_on::<cfa_core::Sharded, _>(
                    &mut machine,
                    threads,
                    run_limits(),
                    mode,
                ),
                _ => return Err(bad_backend()),
            };
            check_status(&r.status)?;
            Ok(canon(&r).expect(canonical))
        }
    }
}

/// `cfa dump [--kcfa K | --mcfa M | --poly K] [--backend B]
/// [--mode semi-naive|full-reeval] [--threads N] [--out FILE] FILE.scm`
/// — run one analysis under one engine configuration and write the
/// canonical, engine-independent normal form of its fixpoint as JSON
/// (stdout by default). Two dumps of the same program and analysis
/// must be byte-identical no matter which backend, mode, or thread
/// count produced them.
fn cmd_dump(args: &[String]) -> ExitCode {
    let mut analysis = Analysis::KCfa { k: 1 };
    let mut backend = "sequential".to_owned();
    let mut mode = cfa_core::EvalMode::SemiNaive;
    let mut threads = 2usize;
    let mut out_path: Option<String> = None;
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kcfa" | "--mcfa" | "--poly" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                let Ok(depth) = parse_usize(value, "context depth") else {
                    return usage();
                };
                analysis = match args[i].as_str() {
                    "--kcfa" => Analysis::KCfa { k: depth },
                    "--mcfa" => Analysis::MCfa { m: depth },
                    _ => Analysis::PolyKCfa { k: depth },
                };
                i += 2;
            }
            "--backend" | "--mode" | "--threads" | "--out" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                match args[i].as_str() {
                    "--backend" => backend = value.clone(),
                    "--out" => out_path = Some(value.clone()),
                    "--mode" => {
                        mode = match value.as_str() {
                            "semi-naive" => cfa_core::EvalMode::SemiNaive,
                            "full-reeval" => cfa_core::EvalMode::FullReeval,
                            other => {
                                eprintln!(
                                    "cfa: unknown eval mode '{other}' \
                                     (use semi-naive or full-reeval)"
                                );
                                return ExitCode::from(2);
                            }
                        }
                    }
                    _ => match parse_usize(value, "thread count") {
                        Ok(n) => threads = n.max(1),
                        Err(code) => return code,
                    },
                }
                i += 2;
            }
            other if !other.starts_with("--") => {
                file = Some(other.to_owned());
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let src = match read_file(&file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let program = match cfa_syntax::compile(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cfa: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match dump_snapshot(&program, analysis, &backend, mode, threads) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let json = snapshot.to_json();
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cfa: cannot write '{path}': {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// Reads and validates one snapshot file for `cfa compare`. Unreadable
/// files, malformed documents, and snapshots of incomplete runs all
/// map to exit code 2 — a partial result must never be silently
/// compared as if it were a fixpoint.
fn read_snapshot(path: &str) -> Result<cfa_core::CanonSnapshot, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cfa: cannot read '{path}': {e}");
        ExitCode::from(2)
    })?;
    let snapshot = cfa_core::CanonSnapshot::parse(&text).map_err(|e| {
        eprintln!("cfa: {path}: {e}");
        ExitCode::from(2)
    })?;
    if !snapshot.is_complete() {
        eprintln!(
            "cfa: {path}: not comparable: run status is {} (only complete \
             fixpoints have a normal form)",
            snapshot.status
        );
        return Err(ExitCode::from(2));
    }
    Ok(snapshot)
}

/// `cfa compare [--limit N] A.json B.json` — structurally diff two
/// canonical snapshots. Exit 0 when identical, 1 when divergent (the
/// first N divergent facts are printed by name), 2 when either input
/// is malformed or describes an incomplete run.
fn cmd_compare(args: &[String]) -> ExitCode {
    let mut limit = cfa_core::canon::DEFAULT_DIFF_LIMIT;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--limit" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                match parse_usize(value, "diff limit") {
                    Ok(n) => limit = n,
                    Err(code) => return code,
                }
                i += 2;
            }
            other if !other.starts_with("--") => {
                files.push(other.to_owned());
                i += 1;
            }
            _ => return usage(),
        }
    }
    let [left_path, right_path] = files.as_slice() else {
        return usage();
    };
    let left = match read_snapshot(left_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let right = match read_snapshot(right_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let report = cfa_core::diff_snapshots(&left, &right, limit);
    if report.is_identical() {
        println!("identical");
        ExitCode::SUCCESS
    } else {
        print!("{}", report.render());
        ExitCode::FAILURE
    }
}

/// `cfa serve [--backend replicated|sharded]` — a pooled query server.
///
/// Requests arrive on stdin as a header line, the mini-Scheme source,
/// and a lone `.` terminator:
///
/// ```text
/// callgraph k=1
/// (define (id x) x) (id 42)
/// .
/// races k=0
/// ...source...
/// .
/// ```
///
/// Every request is submitted to one long-lived [`AnalysisPool`]
/// (sized by `CFA_POOL_THREADS` / `CFA_POOL_QUEUE_DEPTH`) as soon as
/// its terminator is read, so queries analyze concurrently; responses
/// are printed in request order, each as an `ok N ...` or `err N ...`
/// header followed by the payload and a lone `.`:
///
/// * `callgraph` answers `ok N callgraph sites=S edges=E` and the
///   1-CFA-style call graph in Graphviz dot;
/// * `races` answers `ok N races count=R` and the race report JSON;
/// * `stats` (empty body) answers `ok N stats` and one line of JSON
///   with the pool's live gauges and lifetime counters
///   ([`cfa_core::PoolMetrics`]), snapshotted when the request is read.
///
/// A malformed request, a program that does not compile, or an
/// analysis stopped early (timeout, iteration limit, fault) answers
/// `err N <reason>` — the server keeps serving.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut backend = "replicated".to_owned();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                backend = value.clone();
                i += 2;
            }
            _ => return usage(),
        }
    }
    match backend.as_str() {
        "replicated" => run_serve::<cfa_core::Replicated>(),
        "sharded" => run_serve::<cfa_core::Sharded>(),
        other => {
            eprintln!("cfa: unknown store backend '{other}' (use replicated or sharded)");
            ExitCode::from(2)
        }
    }
}

/// `cfa trace [--out FILE] [--kcfa K] [--backend replicated|sharded]
/// [--threads N] FILE.scm` — run one parallel k-CFA fixpoint with full
/// tracing forced on, write the merged per-worker event rings as Chrome
/// `trace_event` JSON (loadable in `chrome://tracing` / Perfetto), and
/// print the derived phase profile.
fn cmd_trace(args: &[String]) -> ExitCode {
    let mut out_path = "profile.json".to_owned();
    let mut k = 1usize;
    let mut backend = "replicated".to_owned();
    let mut threads = 2usize;
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" | "--kcfa" | "--backend" | "--threads" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                match args[i].as_str() {
                    "--out" => out_path = value.clone(),
                    "--backend" => backend = value.clone(),
                    "--kcfa" => match parse_usize(value, "context depth") {
                        Ok(depth) => k = depth,
                        Err(code) => return code,
                    },
                    _ => match parse_usize(value, "thread count") {
                        Ok(n) => threads = n.max(1),
                        Err(code) => return code,
                    },
                }
                i += 2;
            }
            other if !other.starts_with("--") => {
                file = Some(other.to_owned());
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let src = match read_file(&file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let program = match cfa_syntax::compile(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cfa: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut limits = run_limits();
    limits.trace = cfa_core::TraceConfig::full();
    let mut machine = cfa_core::kcfa::KCfaMachine::new(&program, k);
    let mode = cfa_core::EvalMode::SemiNaive;
    let result = match backend.as_str() {
        "replicated" => cfa_core::run_fixpoint_parallel_on::<cfa_core::Replicated, _>(
            &mut machine,
            threads,
            limits,
            mode,
        ),
        "sharded" => cfa_core::run_fixpoint_parallel_on::<cfa_core::Sharded, _>(
            &mut machine,
            threads,
            limits,
            mode,
        ),
        other => {
            eprintln!("cfa: unknown store backend '{other}' (use replicated or sharded)");
            return ExitCode::from(2);
        }
    };
    if let Err(code) = check_status(&result.status) {
        return code;
    }
    let json = result.trace.to_chrome_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cfa: cannot write '{out_path}': {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out_path}: {} worker lanes, {} ring events",
        result.trace.workers.len(),
        result.trace.event_count()
    );
    println!("{}", result.trace.phase_profile().summary());
    ExitCode::SUCCESS
}

/// What a `serve` query asks of the fixpoint.
enum QueryKind {
    Callgraph,
    Races,
}

/// One admitted `serve` request: the submitted job plus what to render
/// from it — or an error already known at parse time, held in line so
/// responses stay in request order.
enum PendingReply {
    Job {
        kind: QueryKind,
        k: usize,
        program: std::sync::Arc<cfa_syntax::cps::CpsProgram>,
        job: cfa_core::kcfa::KcfaJob,
    },
    Malformed(String),
    /// A pool-metrics snapshot, captured when the request was read (so
    /// the numbers describe the pool at ask time, not at drain time).
    Stats(String),
}

fn run_serve<B: cfa_core::PoolBackend>() -> ExitCode {
    use std::io::BufRead as _;
    use std::io::Write as _;

    let pool = cfa_core::AnalysisPool::new(cfa_core::PoolConfig::from_env());
    let stdin = std::io::stdin().lock();
    let mut lines = stdin.lines();
    let mut pending: std::collections::VecDeque<(u64, PendingReply)> =
        std::collections::VecDeque::new();
    let mut next_id = 0u64;

    let drain_one = |id: u64, reply: PendingReply| {
        let mut out = std::io::stdout().lock();
        match reply {
            PendingReply::Malformed(reason) => {
                let _ = writeln!(out, "err {id} {reason}\n.");
            }
            PendingReply::Stats(json) => {
                let _ = writeln!(out, "ok {id} stats\n{json}\n.");
            }
            PendingReply::Job {
                kind,
                k,
                program,
                job,
            } => {
                let r = job.wait();
                if let Err(_code) = check_status(&r.metrics.status) {
                    // check_status printed the one-line diagnostic;
                    // mirror it into the protocol and keep serving.
                    let _ = writeln!(out, "err {id} analysis stopped: {:?}\n.", r.metrics.status);
                    return;
                }
                match kind {
                    QueryKind::Callgraph => {
                        let graph =
                            cfa_core::callgraph::CallGraph::from_metrics(&program, &r.metrics);
                        let _ = writeln!(
                            out,
                            "ok {id} callgraph k={k} sites={} edges={}",
                            graph.site_count(),
                            graph.edge_count()
                        );
                        let _ = write!(out, "{}", graph.to_dot(&program));
                        let _ = writeln!(out, ".");
                    }
                    QueryKind::Races => {
                        let report = cfa_core::races_kcfa(&program, k, &r.fixpoint);
                        let _ = writeln!(out, "ok {id} races k={k} count={}", report.races.len());
                        let _ = writeln!(out, "{}", report.render_json());
                        let _ = writeln!(out, ".");
                    }
                }
            }
        }
        let _ = out.flush();
    };

    loop {
        let header = match lines.next() {
            None => break,
            Some(Err(e)) => {
                eprintln!("cfa: stdin: {e}");
                break;
            }
            Some(Ok(line)) => line,
        };
        if header.trim().is_empty() {
            continue;
        }
        // Gather the request body up to the lone-`.` terminator before
        // deciding anything, so a malformed header cannot desync the
        // stream.
        let mut source = String::new();
        loop {
            match lines.next() {
                None => break,
                Some(Err(e)) => {
                    eprintln!("cfa: stdin: {e}");
                    break;
                }
                Some(Ok(line)) => {
                    if line.trim() == "." {
                        break;
                    }
                    source.push_str(&line);
                    source.push('\n');
                }
            }
        }
        let id = next_id;
        next_id += 1;
        let reply = parse_serve_request::<B>(&pool, &header, &source);
        pending.push_back((id, reply));
        // Opportunistically flush any responses that are already done,
        // preserving request order.
        loop {
            let ready = match pending.front() {
                Some((_, PendingReply::Malformed(_) | PendingReply::Stats(_))) => true,
                Some((_, PendingReply::Job { job, .. })) => job.is_finished(),
                None => false,
            };
            if !ready {
                break;
            }
            let (id, reply) = pending.pop_front().expect("front checked");
            drain_one(id, reply);
        }
    }
    // EOF: answer everything still in flight, in order.
    for (id, reply) in pending {
        drain_one(id, reply);
    }
    pool.shutdown();
    ExitCode::SUCCESS
}

/// Parses one `serve` header + body into a submitted job (or an
/// in-line error). Headers are `callgraph k=N` / `races k=N`.
fn parse_serve_request<B: cfa_core::PoolBackend>(
    pool: &cfa_core::AnalysisPool,
    header: &str,
    source: &str,
) -> PendingReply {
    let mut parts = header.split_whitespace();
    let kind = match parts.next() {
        Some("callgraph") => QueryKind::Callgraph,
        Some("races") => QueryKind::Races,
        Some("stats") => return PendingReply::Stats(pool.metrics().to_json()),
        other => {
            return PendingReply::Malformed(format!(
                "unknown query {:?} (use callgraph, races or stats)",
                other.unwrap_or("")
            ))
        }
    };
    let mut k = 1usize;
    for part in parts {
        match part.strip_prefix("k=").map(str::parse) {
            Some(Ok(depth)) => k = depth,
            _ => return PendingReply::Malformed(format!("bad parameter {part:?} (use k=N)")),
        }
    }
    let program = match cfa_syntax::compile(source) {
        Ok(p) => std::sync::Arc::new(p),
        Err(e) => return PendingReply::Malformed(format!("compile error: {e}")),
    };
    let job =
        cfa_core::kcfa::submit_kcfa::<B>(pool, std::sync::Arc::clone(&program), k, run_limits());
    PendingReply::Job {
        kind,
        k,
        program,
        job,
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let [file] = args else { return usage() };
    let src = match read_file(file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match cfa_concrete::eval_scheme(&src, cfa_concrete::Limits::default()) {
        Ok(value) => {
            println!("{value}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cfa: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_cps(args: &[String]) -> ExitCode {
    let [file] = args else { return usage() };
    let src = match read_file(file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match cfa_syntax::compile(&src) {
        Ok(program) => {
            print!("{}", cfa_syntax::pretty::pretty_program(&program));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cfa: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_fj(args: &[String]) -> ExitCode {
    let mut k = 1usize;
    let mut policy = cfa_fj::TickPolicy::OnInvocation;
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                let Ok(depth) = parse_usize(value, "k") else {
                    return usage();
                };
                k = depth;
                i += 2;
            }
            "--per-statement" => {
                policy = cfa_fj::TickPolicy::EveryStatement;
                i += 1;
            }
            other if !other.starts_with("--") => {
                file = Some(other.to_owned());
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let src = match read_file(&file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let program = match cfa_fj::parse_fj(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cfa: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = cfa_fj::FjAnalysisOptions {
        k,
        policy,
        cast_filtering: false,
    };
    let r = cfa_fj::analyze_fj(&program, options, run_limits());
    let m = &r.metrics;
    println!("{program}");
    println!("== {} ==", m.analysis);
    println!("  status:   {:?}", m.status);
    println!("  time:     {:.3?}", m.elapsed);
    println!("  configs:  {}", m.config_count);
    println!("  contexts: {}", m.time_count);
    println!(
        "  calls:    {} reachable, {} monomorphic",
        m.reachable_calls, m.monomorphic_calls
    );
    let classes: Vec<&str> = m
        .halt_classes
        .iter()
        .map(|&c| program.name(program.class(c).name))
        .collect();
    println!("  result classes: {{{}}}", classes.join(", "));
    if let Err(code) = check_status(&m.status) {
        return code;
    }
    ExitCode::SUCCESS
}

fn cmd_fj_run(args: &[String]) -> ExitCode {
    let [file] = args else { return usage() };
    let src = match read_file(file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let program = match cfa_fj::parse_fj(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cfa: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = cfa_fj::run_fj(&program, cfa_fj::FjLimits::default());
    match run.halted() {
        Some(value) => {
            println!("{value}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("cfa: {:?}", run.outcome);
            ExitCode::FAILURE
        }
    }
}

/// Parses `[--k K] FILE` argument lists shared by the FJ subcommands.
fn parse_k_and_file(args: &[String]) -> Result<(usize, String), ExitCode> {
    let mut k = 1usize;
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--k" => {
                let Some(value) = args.get(i + 1) else {
                    return Err(usage());
                };
                k = parse_usize(value, "k")?;
                i += 2;
            }
            other if !other.starts_with("--") => {
                file = Some(other.to_owned());
                i += 1;
            }
            _ => return Err(usage()),
        }
    }
    match file {
        Some(f) => Ok((k, f)),
        None => Err(usage()),
    }
}

fn load_fj(file: &str) -> Result<cfa_fj::FjProgram, ExitCode> {
    let src = read_file(file)?;
    cfa_fj::parse_fj(&src).map_err(|e| {
        eprintln!("cfa: {e}");
        ExitCode::FAILURE
    })
}

/// `cfa fj-dot [--k K] FILE.java` — method-level call graph as dot.
fn cmd_fj_dot(args: &[String]) -> ExitCode {
    let (k, file) = match parse_k_and_file(args) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let program = match load_fj(&file) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let r = cfa_fj::analyze_fj(&program, cfa_fj::FjAnalysisOptions::oo(k), run_limits());
    if let Err(code) = check_status(&r.metrics.status) {
        return code;
    }
    let graph = cfa_fj::FjCallGraph::from_metrics(&r.metrics);
    print!("{}", graph.to_dot(&program));
    ExitCode::SUCCESS
}

/// `cfa fj-datalog [--k K] FILE.java` — run the Datalog points-to
/// analysis and report agreement with the abstract machine.
fn cmd_fj_datalog(args: &[String]) -> ExitCode {
    let (k, file) = match parse_k_and_file(args) {
        Ok(v) => v,
        Err(code) => return code,
    };
    if k > 2 {
        eprintln!("cfa: the Datalog encoding tabulates contexts; use --k 0, 1 or 2");
        return ExitCode::from(2);
    }
    let program = match load_fj(&file) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let d = cfa_fj::analyze_fj_datalog(&program, cfa_fj::FjDatalogOptions::sensitive(k));
    let machine = cfa_fj::analyze_fj(&program, cfa_fj::FjAnalysisOptions::oo(k), run_limits());
    // A partial machine run would spuriously disagree with the Datalog
    // fixpoint; surface the early stop instead.
    if let Err(code) = check_status(&machine.metrics.status) {
        return code;
    }
    println!("== FJ points-to in Datalog (k = {k}) ==");
    println!(
        "  facts:    {} input, {} at fixpoint",
        d.edb_facts, d.total_facts
    );
    println!("  rounds:   {}", d.stats.rounds);
    println!("  time:     {:.3?}", d.stats.elapsed);
    println!(
        "  calls:    {} sites resolved, {} monomorphic",
        d.call_targets.len(),
        d.monomorphic_calls()
    );
    let classes: Vec<&str> = d
        .halt_classes
        .iter()
        .map(|&c| program.name(program.class(c).name))
        .collect();
    println!("  result classes: {{{}}}", classes.join(", "));
    let agree = machine.metrics.call_targets == d.call_targets
        && machine.metrics.halt_classes == d.halt_classes;
    println!("  machine agrees: {}", if agree { "yes" } else { "NO" });
    if agree {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `cfa fj-gc [--k K] FILE.java` — per-state search with abstract GC
/// and counting (ΓCFA for OO, §8).
fn cmd_fj_gc(args: &[String]) -> ExitCode {
    let (k, file) = match parse_k_and_file(args) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let program = match load_fj(&file) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let plain =
        cfa_fj::analyze_fj_naive(&program, cfa_fj::FjNaiveOptions::paper(k).with_counting());
    let gc = cfa_fj::analyze_fj_naive(
        &program,
        cfa_fj::FjNaiveOptions::paper(k).with_gc().with_counting(),
    );
    println!("== ΓCFA for Featherweight Java (k = {k}) ==");
    println!("                  plain        with GC");
    println!(
        "  states:    {:>10} {:>14}",
        plain.state_count, gc.state_count
    );
    println!(
        "  singular:  {:>9.1}% {:>13.1}%",
        100.0 * plain.singular_ratio(),
        100.0 * gc.singular_ratio()
    );
    let classes = |r: &cfa_fj::FjNaiveResult| {
        r.halt_classes
            .iter()
            .map(|&c| program.name(program.class(c).name).to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("  returns:   {:>10} {:>14}", classes(&plain), classes(&gc));
    if plain.halt_classes == gc.halt_classes {
        println!("  GC is precision-neutral: yes");
        ExitCode::SUCCESS
    } else {
        println!("  GC is precision-neutral: NO (bug)");
        ExitCode::FAILURE
    }
}

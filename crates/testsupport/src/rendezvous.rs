//! The forced-interleaving rendezvous machine: the one test machine
//! that *deterministically* provokes the sharded backend's
//! stale-snapshot race, shared by `tests/store_backends.rs` (which
//! pins the wakeup protocol) and `tests/fabric.rs` (which pins the
//! unified driver's counter identity on the same interleaving) — one
//! definition, so a change to the protocol cannot silently leave one
//! suite testing the old interleaving.

use cfa_core::engine::{AbstractMachine, TrackedStore};
use cfa_core::parallel::ParallelMachine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spins until `flag` is set, or a generous deadline passes — the
/// caller then proceeds and still asserts the fixpoint; it just stops
/// forcing the interleaving.
pub fn await_flag(flag: &AtomicBool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !flag.load(Ordering::Acquire) && Instant::now() < deadline {
        std::thread::yield_now();
    }
}

/// A two-party rendezvous machine that forces the stale-snapshot race
/// of the sharded backend:
///
/// * the **reader** (config 10) snapshots address 5 *before* the writer
///   has produced anything, then — still inside its step, i.e. before
///   its dependency on address 5 is registered at the owner — waits
///   until the writer's join call has happened;
/// * the **writer** (config 20) waits for the reader to be mid-step,
///   then joins 42 into address 5.
///
/// The reader's registration therefore arrives at the owner *after*
/// (or racing with) the growth it missed. Soundness demands the owner's
/// registration-time epoch check wake the reader anyway; the reader's
/// re-evaluation copies address 5 into address 6, which is what callers
/// assert. Without the stale-snapshot check the run still terminates —
/// with address 6 empty.
#[derive(Clone, Debug)]
pub struct Rendezvous {
    /// Set by the reader once it holds a (possibly stale) snapshot and
    /// is parked mid-step.
    pub reader_in_step: Arc<AtomicBool>,
    /// Set by the writer after its join has landed.
    pub writer_joined: Arc<AtomicBool>,
}

impl Rendezvous {
    /// A fresh machine with both flags down.
    pub fn new() -> Self {
        Rendezvous {
            reader_in_step: Arc::new(AtomicBool::new(false)),
            writer_joined: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl Default for Rendezvous {
    fn default() -> Self {
        Self::new()
    }
}

impl AbstractMachine for Rendezvous {
    type Config = u8;
    type Addr = u8;
    type Val = u8;

    fn initial(&self) -> u8 {
        0
    }

    fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
        match *c {
            0 => out.extend([10, 20]),
            10 => {
                // Snapshot first — on the forced schedule this sees ⊥
                // and records a pre-growth epoch.
                let seen = s.read(&5);
                if seen.is_empty() {
                    self.reader_in_step.store(true, Ordering::Release);
                    // Hold the step open until the writer has joined, so
                    // our dependency registration happens after (or
                    // racing) the growth.
                    await_flag(&self.writer_joined);
                }
                s.join_flow(&6, &seen);
            }
            20 => {
                await_flag(&self.reader_in_step);
                s.join(&5, [42u8]);
                self.writer_joined.store(true, Ordering::Release);
            }
            _ => {}
        }
    }
}

impl ParallelMachine for Rendezvous {
    fn fork(&self) -> Self {
        self.clone()
    }
    fn absorb(&mut self, _worker: Self) {}
}

//! Shared test harness for the differential and property suites.
//!
//! Every integration suite needs the same three ingredients, previously
//! re-declared ad hoc per file:
//!
//! * **random-program generators** — re-exported from
//!   [`cfa_workloads::gen`] (mini-Scheme) and [`cfa_workloads::gen_fj`]
//!   (Featherweight Java), plus the curated [`scheme_corpus`];
//! * **the engine-matrix runner** — [`assert_engines_agree`] runs a
//!   machine through the sequential engine, the replicated parallel
//!   engine, and the sharded parallel engine (both parallel backends at
//!   [`PAR_THREADS`] workers), each in both [`EvalMode`]s — six engines
//!   — plus the retained reference engine as oracle, and asserts all
//!   seven reach the identical fixpoint (the fixed point of a monotone
//!   transfer function is unique, so any divergence is a bug). The
//!   `CFA_STORE_BACKEND` environment variable (`replicated`, `sharded`,
//!   or the default `both`) narrows the parallel side — the CI matrix
//!   leg uses it to gate each backend in isolation;
//! * **fixpoint-equality assertions** — [`Fixpoint`] is the canonical
//!   comparable form (configuration set + materialized store), with
//!   conversions from both engine result types;
//! * **fault-injection plumbing** — [`limits_with_plan`] arms a
//!   [`FaultPlan`] on fresh limits (each run arms its own counters),
//!   [`assert_fixpoint_subset`] checks the partial-run soundness
//!   contract, and [`quiet_injected_panics`] keeps deliberately
//!   injected panics out of the test output.
//!
//! The analysis-family sweeps [`check_scheme_program`] and
//! [`check_fj_program`] run the quad across every machine the paper
//! compares (k-CFA, m-CFA, poly-k-CFA, FJ under both tick policies).

#![warn(missing_docs)]

use cfa_core::engine::{run_fixpoint_with, EngineLimits, EvalMode};
use cfa_core::fabric::FaultPlan;
use cfa_core::flatcfa::{FlatCfaMachine, FlatPolicy};
use cfa_core::kcfa::KCfaMachine;
use cfa_core::parallel::{run_fixpoint_parallel_on, ParallelMachine, Replicated, Sharded};
use cfa_core::reference::{run_fixpoint_reference, ReferenceMachine};
use cfa_fj::kcfa::{FjAnalysisOptions, FjMachine};
use cfa_fj::parse_fj;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt::Debug;
use std::hash::Hash;

pub use cfa_core::fabric::FaultPlan as EngineFaultPlan;
pub use cfa_workloads::gen::random_concurrent_program as random_concurrent_scheme_program;
pub use cfa_workloads::gen::random_program as random_scheme_program;
pub use cfa_workloads::gen_fj::{random_fj_program, FjGenConfig};

pub mod rendezvous;

/// Thread count for the parallel runs: enough workers that task
/// migration, fact broadcast/routing, and steals all actually happen.
pub const PAR_THREADS: usize = 3;

/// Which parallel store backends the differential runner exercises.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BackendSelection {
    /// Run the replicated (per-worker store copies) backend.
    pub replicated: bool,
    /// Run the sharded (one shared store) backend.
    pub sharded: bool,
}

/// Reads `CFA_STORE_BACKEND` (`replicated` | `sharded` | `both`,
/// default `both`). The CI backend matrix sets this per leg.
pub fn backend_selection() -> BackendSelection {
    match std::env::var("CFA_STORE_BACKEND").as_deref() {
        Ok("replicated") => BackendSelection {
            replicated: true,
            sharded: false,
        },
        Ok("sharded") => BackendSelection {
            replicated: false,
            sharded: true,
        },
        Ok("both") | Err(_) => BackendSelection {
            replicated: true,
            sharded: true,
        },
        Ok(other) => panic!("CFA_STORE_BACKEND={other:?}: expected replicated|sharded|both"),
    }
}

/// A fixpoint in canonical, comparable form: the set of reached
/// configurations and the fully materialized store.
#[derive(PartialEq, Eq, Debug)]
pub struct Fixpoint<C: Eq + Hash, A: Ord, V: Ord> {
    /// Reached configurations (order-insensitive).
    pub configs: HashSet<C>,
    /// Every `(address, flow set)` fact of the final store.
    pub store: BTreeMap<A, BTreeSet<V>>,
}

/// Canonicalizes a delta/parallel engine result.
pub fn fixpoint_of<C, A, V>(r: &cfa_core::engine::FixpointResult<C, A, V>) -> Fixpoint<C, A, V>
where
    C: Eq + Hash + Clone,
    A: Ord + Clone + Eq + Hash,
    V: Ord + Clone + Eq + Hash,
{
    Fixpoint {
        configs: r.configs.iter().cloned().collect(),
        store: r.store.iter().map(|(a, set)| (a.clone(), set)).collect(),
    }
}

/// Canonicalizes a reference engine result.
pub fn fixpoint_of_reference<C, A, V>(
    r: &cfa_core::reference::RefFixpointResult<C, A, V>,
) -> Fixpoint<C, A, V>
where
    C: Eq + Hash + Clone,
    A: Ord + Clone + Eq + Hash,
    V: Ord + Clone,
{
    Fixpoint {
        configs: r.configs.iter().cloned().collect(),
        store: r
            .store
            .iter()
            .map(|(a, set)| (a.clone(), set.clone()))
            .collect(),
    }
}

/// Runs fresh machine instances through the engine matrix — sequential,
/// replicated-parallel, and sharded-parallel ([`PAR_THREADS`] workers),
/// each in both semi-naive and full-re-evaluation mode (six engines),
/// plus the retained reference engine as oracle — and asserts identical
/// configuration sets and stores everywhere.
///
/// The parallel backends honor [`backend_selection`] (the
/// `CFA_STORE_BACKEND` environment variable), so a CI matrix leg can
/// gate each backend in isolation; by default both run.
///
/// # Panics
///
/// Panics (with `label` in the message) when any engine fails to
/// complete or any fixpoint diverges from the reference.
pub fn assert_engines_agree<M, R, F, G>(label: &str, mk_new: F, mk_ref: G)
where
    M: ParallelMachine,
    R: ReferenceMachine<Config = M::Config, Addr = M::Addr, Val = M::Val>,
    M::Config: Hash + Eq + Clone + Send + Sync + Debug,
    M::Addr: Ord + Clone + Send + Sync + Debug,
    M::Val: Ord + Clone + Hash + Send + Sync + Debug,
    F: Fn() -> M,
    G: FnOnce() -> R,
{
    let limits = EngineLimits::default;
    let backends = backend_selection();
    let reference = run_fixpoint_reference(&mut mk_ref(), limits());
    assert!(
        reference.status.is_complete(),
        "{label}: reference engine incomplete"
    );
    let expected = fixpoint_of_reference(&reference);

    for mode in [EvalMode::SemiNaive, EvalMode::FullReeval] {
        let r = run_fixpoint_with(&mut mk_new(), limits(), mode);
        assert!(
            r.status.is_complete(),
            "{label}: sequential {mode:?} engine incomplete"
        );
        assert_eq!(
            fixpoint_of(&r),
            expected,
            "{label}: sequential {mode:?} fixpoint diverges from reference"
        );

        if backends.replicated {
            let p = run_fixpoint_parallel_on::<Replicated, M>(
                &mut mk_new(),
                PAR_THREADS,
                limits(),
                mode,
            );
            assert!(
                p.status.is_complete(),
                "{label}: replicated-parallel {mode:?} engine incomplete"
            );
            assert_eq!(
                fixpoint_of(&p),
                expected,
                "{label}: replicated-parallel {mode:?} fixpoint diverges from reference"
            );
        }

        if backends.sharded {
            let s =
                run_fixpoint_parallel_on::<Sharded, M>(&mut mk_new(), PAR_THREADS, limits(), mode);
            assert!(
                s.status.is_complete(),
                "{label}: sharded-parallel {mode:?} engine incomplete"
            );
            assert_eq!(
                fixpoint_of(&s),
                expected,
                "{label}: sharded-parallel {mode:?} fixpoint diverges from reference"
            );
        }
    }
}

/// Runs [`assert_engines_agree`] for every CPS analysis family on one
/// mini-Scheme program: k-CFA at the given `ks`, and both flat-policy
/// machines (m-CFA, poly-k) at bounds 0..=2.
pub fn check_scheme_program(src: &str, name: &str, ks: &[usize]) {
    let p = cfa_syntax::compile(src).expect("program compiles");
    for &k in ks {
        assert_engines_agree(
            &format!("{name} k-CFA k={k}"),
            || KCfaMachine::new(&p, k),
            || KCfaMachine::new(&p, k),
        );
    }
    for (policy, tag) in [
        (FlatPolicy::TopMFrames, "m-CFA"),
        (FlatPolicy::LastKCalls, "poly-k"),
    ] {
        for bound in [0usize, 1, 2] {
            assert_engines_agree(
                &format!("{name} {tag} bound={bound}"),
                || FlatCfaMachine::new(&p, bound, policy),
                || FlatCfaMachine::new(&p, bound, policy),
            );
        }
    }
}

/// Runs [`assert_engines_agree`] for the Featherweight Java machine on
/// one program, under both tick policies at the given `ks`.
pub fn check_fj_program(src: &str, name: &str, ks: &[usize]) {
    let p = parse_fj(src).expect("program parses");
    for &k in ks {
        for options in [FjAnalysisOptions::paper(k), FjAnalysisOptions::oo(k)] {
            assert_engines_agree(
                &format!("{name} FJ {options:?}"),
                || FjMachine::new(&p, options),
                || FjMachine::new(&p, options),
            );
        }
    }
}

/// Runs fresh machine instances through the full engine matrix (like
/// [`assert_engines_agree`]) but compares *canonical snapshots*: every
/// engine's fixpoint is normalized via the given `canon_*` projections
/// and all serialized normal forms must be byte-identical. Returns the
/// agreed snapshot.
fn canon_across_engines<M, R, CF, CR, F, G>(
    label: &str,
    mk_new: F,
    mk_ref: G,
    canon_fix: CF,
    canon_ref: CR,
) -> cfa_core::CanonSnapshot
where
    M: ParallelMachine,
    R: ReferenceMachine<Config = M::Config, Addr = M::Addr, Val = M::Val>,
    M::Config: Hash + Eq + Clone + Send + Sync + Debug,
    M::Addr: Ord + Clone + Send + Sync + Debug,
    M::Val: Ord + Clone + Hash + Send + Sync + Debug,
    F: Fn() -> M,
    G: FnOnce() -> R,
    CF: Fn(
        &cfa_core::engine::FixpointResult<M::Config, M::Addr, M::Val>,
    ) -> Result<cfa_core::CanonSnapshot, cfa_core::NotComparable>,
    CR: Fn(
        &cfa_core::reference::RefFixpointResult<M::Config, M::Addr, M::Val>,
    ) -> Result<cfa_core::CanonSnapshot, cfa_core::NotComparable>,
{
    let limits = EngineLimits::default;
    let backends = backend_selection();
    let reference = run_fixpoint_reference(&mut mk_ref(), limits());
    let baseline = canon_ref(&reference)
        .unwrap_or_else(|e| panic!("{label}: reference engine has no normal form: {e}"));
    let expected = baseline.to_json();

    let check = |engine: &str, got: Result<cfa_core::CanonSnapshot, cfa_core::NotComparable>| {
        let snapshot = got.unwrap_or_else(|e| panic!("{label}: {engine} has no normal form: {e}"));
        let json = snapshot.to_json();
        if json != expected {
            let report = cfa_core::diff_snapshots(&baseline, &snapshot, 10);
            panic!(
                "{label}: {engine} normal form diverges from reference:\n{}",
                report.render()
            );
        }
    };

    for mode in [EvalMode::SemiNaive, EvalMode::FullReeval] {
        let r = run_fixpoint_with(&mut mk_new(), limits(), mode);
        check(&format!("sequential {mode:?}"), canon_fix(&r));
        if backends.replicated {
            let p = run_fixpoint_parallel_on::<Replicated, M>(
                &mut mk_new(),
                PAR_THREADS,
                limits(),
                mode,
            );
            check(&format!("replicated-parallel {mode:?}"), canon_fix(&p));
        }
        if backends.sharded {
            let s =
                run_fixpoint_parallel_on::<Sharded, M>(&mut mk_new(), PAR_THREADS, limits(), mode);
            check(&format!("sharded-parallel {mode:?}"), canon_fix(&s));
        }
    }
    baseline
}

/// Runs one analysis on `program` through the full engine matrix
/// (sequential, replicated-parallel, sharded-parallel × both eval
/// modes, plus the reference oracle — honoring [`backend_selection`])
/// and asserts every engine's canonical normal form serializes
/// byte-identically. Returns the agreed snapshot.
///
/// # Panics
///
/// Panics (with `label` and the engine name in the message, plus a
/// structural diff) when any engine's normal form diverges, or when any
/// engine fails to reach a complete fixpoint.
pub fn canon_snapshot_matrix(
    program: &cfa_syntax::cps::CpsProgram,
    label: &str,
    analysis: cfa_core::Analysis,
) -> cfa_core::CanonSnapshot {
    use cfa_core::Analysis;
    match analysis {
        Analysis::KCfa { k } => canon_across_engines(
            &format!("{label} [{analysis}]"),
            || KCfaMachine::new(program, k),
            || KCfaMachine::new(program, k),
            |r| cfa_core::canon_kcfa(program, k, r),
            |r| cfa_core::canon_kcfa_ref(program, k, r),
        ),
        Analysis::MCfa { m } => canon_across_engines(
            &format!("{label} [{analysis}]"),
            || FlatCfaMachine::new(program, m, FlatPolicy::TopMFrames),
            || FlatCfaMachine::new(program, m, FlatPolicy::TopMFrames),
            |r| cfa_core::canon_mcfa(program, m, r),
            |r| cfa_core::canon_mcfa_ref(program, m, r),
        ),
        Analysis::PolyKCfa { k } => canon_across_engines(
            &format!("{label} [{analysis}]"),
            || FlatCfaMachine::new(program, k, FlatPolicy::LastKCalls),
            || FlatCfaMachine::new(program, k, FlatPolicy::LastKCalls),
            |r| cfa_core::canon_poly_kcfa(program, k, r),
            |r| cfa_core::canon_poly_kcfa_ref(program, k, r),
        ),
    }
}

/// The repository-root `tests/golden/` directory where snapshot
/// artifacts are committed.
pub fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .canonicalize()
        .unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
        })
}

/// Whether `CFA_BLESS=1` is set: golden checks regenerate their
/// artifacts instead of comparing against them.
pub fn bless_requested() -> bool {
    std::env::var("CFA_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Turns a human-readable program name into a stable artifact file
/// stem: lowercased, every non-alphanumeric run collapsed to one `-`.
pub fn golden_slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.extend(c.to_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_owned()
}

/// Compares `actual` against the committed golden artifact at `path`
/// (relative to [`golden_dir`]). Under `CFA_BLESS=1` the artifact is
/// (re)written instead; otherwise a missing or differing file panics
/// with regeneration instructions.
///
/// # Panics
///
/// Panics when the artifact is missing or differs and blessing was not
/// requested.
pub fn check_golden(relative: &str, actual: &str) {
    let path = golden_dir().join(relative);
    if bless_requested() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create golden dir");
        }
        std::fs::write(&path, actual).expect("write golden artifact");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden artifact {}: {e}\n\
             regenerate with: CFA_BLESS=1 cargo test",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "golden artifact {} is stale\n\
         regenerate with: CFA_BLESS=1 cargo test",
        path.display()
    );
}

/// The marker every deliberately injected panic message carries.
/// [`quiet_injected_panics`] suppresses the default panic banner for
/// payloads containing it, so fault-injection suites don't spray
/// "thread panicked" noise over a passing run.
pub const INJECTED_FAULT_MARKER: &str = "injected fault:";

/// Installs (once, process-wide) a panic hook that swallows the default
/// backtrace banner for panics whose payload contains
/// [`INJECTED_FAULT_MARKER`]. Every other panic is forwarded to the
/// previous hook unchanged, so genuine failures still print.
pub fn quiet_injected_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if !message.is_some_and(|m| m.contains(INJECTED_FAULT_MARKER)) {
                previous(info);
            }
        }));
    });
}

/// Builds [`EngineLimits`] with `plan` armed, mirroring what
/// `EngineLimits::from_env` does for `CFA_FAULT_PLAN`. Each engine
/// entry point arms the plan's per-run counters and cancel token
/// itself, so these limits can safely be cloned across concurrent
/// runs — a `cancel_pop` clause fires only in the run whose own pop
/// count reaches it.
pub fn limits_with_plan(plan: FaultPlan) -> EngineLimits {
    EngineLimits {
        fault_plan: Some(std::sync::Arc::new(plan)),
        ..EngineLimits::default()
    }
}

/// Asserts every fact of `partial` appears in `full` — the soundness
/// contract for interrupted runs: a monotone engine only ever *adds*
/// configurations and store facts, so any prefix of a run (aborted,
/// cancelled, or iteration-limited) must be a subset of the completed
/// fixpoint.
///
/// # Panics
///
/// Panics (with `label` in the message) on the first configuration or
/// `(address, value)` fact present in `partial` but not in `full`.
pub fn assert_fixpoint_subset<C, A, V>(
    label: &str,
    partial: &Fixpoint<C, A, V>,
    full: &Fixpoint<C, A, V>,
) where
    C: Eq + Hash + Debug,
    A: Ord + Debug,
    V: Ord + Debug,
{
    for config in &partial.configs {
        assert!(
            full.configs.contains(config),
            "{label}: partial-run config {config:?} missing from the completed fixpoint"
        );
    }
    for (addr, vals) in &partial.store {
        let full_vals = full.store.get(addr);
        for val in vals {
            assert!(
                full_vals.is_some_and(|f| f.contains(val)),
                "{label}: partial-run fact {addr:?} ↦ {val:?} missing from the completed fixpoint"
            );
        }
    }
}

/// The cross-suite Scheme corpus: every workloads-suite program, the
/// paper's worst-case family, the Figure 1 `fn` program, and a band of
/// random programs — the program list the cross-validation suites
/// previously re-declared inline.
pub fn scheme_corpus() -> Vec<String> {
    let mut out: Vec<String> = cfa_workloads::suite()
        .iter()
        .map(|p| p.source.to_owned())
        .collect();
    out.push(cfa_workloads::worst_case_source(3));
    out.push(cfa_workloads::fn_program(2, 2));
    for seed in 0..20 {
        out.push(random_scheme_program(seed, 30));
    }
    out
}

/// The concurrent Scheme corpus: the golden race-detector programs
/// (racy, join-synchronized, and CAS-guarded shapes) plus a band of
/// random spawn/join/atom programs.
///
/// Kept separate from [`scheme_corpus`] on purpose: the naive
/// per-state-store machine and the concrete/abstract soundness
/// comparison only support sequential programs, while this corpus is
/// for the suites that must agree across *engines* (sequential,
/// replicated-parallel, sharded-parallel, reference) and for the race
/// detector's property tests.
pub fn concurrent_scheme_corpus() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = golden_racy_programs()
        .iter()
        .chain(golden_synchronized_programs().iter())
        .map(|&(name, src)| (name.to_owned(), src.to_owned()))
        .collect();
    for seed in 0..12 {
        out.push((
            format!("random-concurrent seed={seed}"),
            random_concurrent_scheme_program(seed, 25),
        ));
    }
    out
}

/// Golden concurrent programs that each contain a seeded race. The race
/// detector must report at least one race on every one of these (zero
/// false negatives).
pub fn golden_racy_programs() -> &'static [(&'static str, &'static str)] {
    &[
        (
            "unjoined read vs child write",
            "(let ((a (atom 0)))
               (let ((t (spawn (reset! a 1))))
                 (deref a)))",
        ),
        (
            "concurrent sibling writes",
            "(let ((a (atom 0)))
               (let ((t1 (spawn (reset! a 1))))
                 (let ((t2 (spawn (reset! a 2))))
                   (begin (join t1) (join t2)))))",
        ),
        (
            "plain write racing a cas",
            "(let ((a (atom 0)))
               (let ((t (spawn (cas! a 0 1))))
                 (begin (reset! a 2) (join t))))",
        ),
        (
            "child read vs later main write",
            "(let ((a (atom 0)))
               (let ((t (spawn (deref a))))
                 (begin (reset! a 1) (join t))))",
        ),
    ]
}

/// Golden concurrent programs whose accesses are fully ordered by
/// `join` or guarded by `cas!`. The race detector must report nothing
/// on any of these (zero false positives on synchronized code).
pub fn golden_synchronized_programs() -> &'static [(&'static str, &'static str)] {
    &[
        (
            "join before read",
            "(let ((a (atom 0)))
               (let ((t (spawn (reset! a 1))))
                 (begin (join t) (deref a))))",
        ),
        (
            "sequential spawn/join chain",
            "(let ((a (atom 0)))
               (let ((t1 (spawn (reset! a 1))))
                 (begin
                   (join t1)
                   (let ((t2 (spawn (reset! a 2))))
                     (begin (join t2) (deref a))))))",
        ),
        (
            "all updates via cas",
            "(let ((a (atom 0)))
               (let ((t (spawn (cas! a 0 1))))
                 (begin (cas! a 0 2) (join t))))",
        ),
        (
            "main write before any spawn",
            "(let ((a (atom 0)))
               (begin
                 (reset! a 1)
                 (let ((t (spawn (deref a))))
                   (join t))))",
        ),
    ]
}

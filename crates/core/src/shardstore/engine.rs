//! The sharded parallel fixpoint engine: N workers race monotonically
//! on **one** [`SharedStore`] instead of broadcasting facts between N
//! replicas. Scheduling (steal discipline, pinned wakeups, termination,
//! limit checks) is the generic [`crate::fabric`] driver; this module
//! contributes the store-specific half ([`fabric::BackendWorker`]).
//!
//! # How work and facts move
//!
//! Configurations are sharded by first touch exactly as in
//! [`crate::parallel`]: global hash-sharded dedup, stealable fresh
//! queues, wakeups pinned to the home worker. What changes is the
//! store side:
//!
//! * **reads** go straight to the shared store from any thread
//!   (epoch-stamped snapshots under a per-row mutex, epoch gates on a
//!   lock-free atomic);
//! * **writes** go through the shared row from any thread (the row
//!   mutex serializes them), so a worker's successors immediately read
//!   the arguments their parent just bound — the property that keeps
//!   the evaluation count in the replicated engine's regime. No fact
//!   is ever re-interned or re-joined per replica, which removes the
//!   all-to-all broadcast quadratic and makes store memory O(program)
//!   instead of O(program × threads). What *is* routed to the shard
//!   that owns a grown row is the **growth notification**
//!   (`Msg::Grew`) — addresses, never facts;
//! * **dependents are indexed at the row's owner**: after an
//!   evaluation, the home worker registers `(worker, config)` in the
//!   owner's dependency lists (`Msg::Deps`), and growth wakes exactly
//!   the registered dependents, point-to-point (`Msg::Wakes`) —
//!   never every replica.
//!
//! # The stale-snapshot race
//!
//! A reader can snapshot a row, and the owner can grow that row and
//! wake its *current* dependents before the reader's registration
//! arrives. Registrations therefore carry the epoch the reader
//! observed; the owner compares it against the row's current epoch when
//! it processes the registration and immediately wakes the reader if
//! the row has moved past it. Every read is thus covered: growth before
//! the read is in the snapshot, growth after it either finds the
//! dependent registered or is caught by the registration-time check.
//! (`tests/store_backends.rs` forces this interleaving with a
//! rendezvous machine.)
//!
//! # Semi-naive deltas without replicas
//!
//! A configuration's baseline is not one global epoch (racy on a shared
//! store — a concurrent owner may publish growth stamped below a
//! just-read counter) but the **per-row epochs its last evaluation
//! observed**, recorded under the same lock as each snapshot. Delta
//! reads answer "what landed after the epoch I actually saw", served
//! from the owner-written per-row delta logs.
//!
//! # Termination and result
//!
//! The fabric's single pending counter carries over unchanged: queued
//! tasks + in-flight evaluations + undelivered messages + queued
//! wakeups; `pending == 0` observed by an idle worker proves global
//! quiescence. The result needs **no `merge_from` union** — the shared
//! store *is* the fixpoint; it drains into an ordinary
//! [`crate::store::AbsStore`] without re-interning a value.

use super::store::{ShardBufs, ShardView, SharedStore};
use crate::engine::{EngineLimits, EvalMode, FixpointResult, SchedStats, TrackedStore};
use crate::fabric::{self, Fabric, WorkerCtx};
use crate::fxhash::FxHashMap;
use crate::parallel::ParallelMachine;
use std::sync::Arc;
use std::time::Instant;

/// An inter-worker message. Everything is id-level — the global
/// interner is what keeps the wire format free of values.
enum Msg {
    /// Rows owned by the receiving worker grew (sorted, unique address
    /// ids): wake their registered dependents. The facts themselves are
    /// already in the shared store — growth notifications carry
    /// addresses, never values.
    Grew(Vec<u32>),
    /// Dependency registration from `worker`: `adds` are
    /// `(addr_id, observed epoch, config index at `worker`)` — the
    /// observed epoch powers the stale-snapshot check — and `dels`
    /// deregister `(addr_id, config index)` pairs whose read sets
    /// shrank.
    Deps {
        worker: u32,
        adds: Vec<(u32, u64, u32)>,
        dels: Vec<(u32, u32)>,
    },
    /// Wake the given config indexes homed at the receiving worker.
    Wakes(Vec<u32>),
}

/// Per-owner outgoing dependency batch.
#[derive(Default)]
struct DepBatch {
    adds: Vec<(u32, u64, u32)>,
    dels: Vec<(u32, u32)>,
}

/// The store-specific half of a sharded worker: the home of the
/// configurations it first evaluated (their read sets) and the owner of
/// its row shard (their dependency lists). The loop that drives it is
/// [`crate::fabric`]. The store is held by `Arc` — shared ownership is
/// what lets a pool tenant (a `'static` [`crate::pool::TenantRun`])
/// outlive the submitting stack frame; the dedicated engine recovers
/// unique ownership with `Arc::try_unwrap` once the workers return.
struct ShardedWorker<M: ParallelMachine> {
    machine: M,
    store: Arc<SharedStore<M::Addr, M::Val>>,
    /// Locally homed configurations.
    configs: Vec<M::Config>,
    index: FxHashMap<M::Config, usize>,
    /// Per homed config: the `(addr_id, observed epoch)` pairs of its
    /// last evaluation, sorted by address id — gate input and
    /// semi-naive baselines in one.
    config_reads: Vec<Vec<(u32, u64)>>,
    evaluated: Vec<bool>,
    /// Dependents of *owned* rows: addr id → sorted `(worker, config)`.
    deps: FxHashMap<u32, Vec<(u32, u32)>>,
    bufs: ShardBufs,
    /// Per-target outgoing wake batches (scratch, drained per flush).
    out_wakes: Vec<Vec<u32>>,
    /// Per-owner outgoing dependency batches (scratch).
    out_deps: Vec<DepBatch>,
    /// Per-owner outgoing growth notifications (scratch).
    out_grew: Vec<Vec<u32>>,
    /// Local wake scratch.
    woken: Vec<usize>,
    /// Successor scratch, recycled across evaluations.
    successors: Vec<M::Config>,
    joins: u64,
    value_joins: u64,
}

impl<M> ShardedWorker<M>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    fn new(machine: M, store: Arc<SharedStore<M::Addr, M::Val>>) -> Self {
        let threads = store.shard_count();
        ShardedWorker {
            machine,
            store,
            configs: Vec::new(),
            index: FxHashMap::default(),
            config_reads: Vec::new(),
            evaluated: Vec::new(),
            deps: FxHashMap::default(),
            bufs: ShardBufs::default(),
            out_wakes: (0..threads).map(|_| Vec::new()).collect(),
            out_deps: (0..threads).map(|_| DepBatch::default()).collect(),
            out_grew: (0..threads).map(|_| Vec::new()).collect(),
            woken: Vec::new(),
            successors: Vec::new(),
            joins: 0,
            value_joins: 0,
        }
    }

    /// Wakes the dependents of every *self-owned* row among the
    /// (sorted, unique) grown rows — rows owned elsewhere are ignored
    /// (their owners are notified separately). Homed dependents enter
    /// the local wake queue, remote ones are batched per target worker
    /// (flushed by [`ShardedWorker::flush_wakes`]).
    fn wake_dependents_of(&mut self, grown: &[u32], ctx: &mut WorkerCtx<'_, M::Config, Msg>) {
        debug_assert!(self.woken.is_empty(), "woken scratch left dirty");
        let me = ctx.id();
        for &a in grown {
            if self.store.owner(a) != me {
                continue;
            }
            if let Some(list) = self.deps.get(&a) {
                for &(w, c) in list {
                    if w as usize == me {
                        self.woken.push(c as usize);
                    } else {
                        self.out_wakes[w as usize].push(c);
                    }
                }
            }
        }
        self.woken.sort_unstable();
        self.woken.dedup();
        if !self.woken.is_empty() {
            ctx.trace.wake_batch(self.woken.len() as u64);
        }
        for idx in 0..self.woken.len() {
            let j = self.woken[idx];
            ctx.wake_local(j);
        }
        self.woken.clear();
    }

    /// Ships the batched remote wakes, one message per target.
    fn flush_wakes(&mut self, ctx: &mut WorkerCtx<'_, M::Config, Msg>) {
        for target in 0..self.out_wakes.len() {
            if self.out_wakes[target].is_empty() {
                continue;
            }
            let mut batch = std::mem::take(&mut self.out_wakes[target]);
            batch.sort_unstable();
            batch.dedup();
            ctx.wakeups += batch.len() as u64;
            ctx.send(target, Msg::Wakes(batch));
        }
    }

    /// Ships the batched dependency registrations, one message per
    /// owner.
    fn flush_deps(&mut self, ctx: &mut WorkerCtx<'_, M::Config, Msg>) {
        for owner in 0..self.out_deps.len() {
            let batch = &mut self.out_deps[owner];
            if batch.adds.is_empty() && batch.dels.is_empty() {
                continue;
            }
            let msg = Msg::Deps {
                worker: ctx.id() as u32,
                adds: std::mem::take(&mut batch.adds),
                dels: std::mem::take(&mut batch.dels),
            };
            ctx.send(owner, msg);
        }
    }

    /// Partitions one evaluation's grown rows (sorted, unique): wakes
    /// local dependents of self-owned rows, batches growth
    /// notifications for foreign owners, and ships both.
    fn announce_growth(&mut self, grown: &[u32], ctx: &mut WorkerCtx<'_, M::Config, Msg>) {
        for &a in grown {
            let owner = self.store.owner(a);
            if owner != ctx.id() {
                self.out_grew[owner].push(a);
            }
        }
        self.wake_dependents_of(grown, ctx);
        self.flush_wakes(ctx);
        for owner in 0..self.out_grew.len() {
            if self.out_grew[owner].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.out_grew[owner]);
            ctx.send(owner, Msg::Grew(batch));
        }
    }

    /// Registers config `i`'s new read set: diffs it against the
    /// previous one, applies self-owned adds/dels in place (with the
    /// stale-snapshot wake check), batches foreign ones per owner, and
    /// installs the new read set.
    fn register_deps(
        &mut self,
        i: usize,
        new_reads: &mut Vec<(u32, u64)>,
        ctx: &mut WorkerCtx<'_, M::Config, Msg>,
    ) {
        let me = (ctx.id() as u32, i as u32);
        // Walk old and new (both sorted by addr id).
        let mut stale_self_wake = false;
        {
            let old = std::mem::take(&mut self.config_reads[i]);
            let (mut oi, mut ni) = (0, 0);
            while oi < old.len() || ni < new_reads.len() {
                let oa = old.get(oi).map(|&(a, _)| a);
                let na = new_reads.get(ni).map(|&(a, _)| a);
                let drop_old = match (oa, na) {
                    (Some(a), Some(b)) if a == b => {
                        oi += 1;
                        ni += 1;
                        continue;
                    }
                    (Some(a), Some(b)) => a < b,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => unreachable!("loop condition"),
                };
                if drop_old {
                    // Dropped address: deregister.
                    let a = old[oi].0;
                    let owner = self.store.owner(a);
                    if owner == ctx.id() {
                        if let Some(list) = self.deps.get_mut(&a) {
                            if let Ok(pos) = list.binary_search(&me) {
                                list.remove(pos);
                            }
                        }
                    } else {
                        self.out_deps[owner].dels.push((a, i as u32));
                    }
                    oi += 1;
                } else {
                    // Added address: register with the observed epoch
                    // for the stale-snapshot check.
                    let (b, e) = new_reads[ni];
                    let owner = self.store.owner(b);
                    if owner == ctx.id() {
                        let list = self.deps.entry(b).or_default();
                        if let Err(pos) = list.binary_search(&me) {
                            list.insert(pos, me);
                        }
                        if self.store.addr_epoch(b) > e {
                            stale_self_wake = true;
                        }
                    } else {
                        self.out_deps[owner].adds.push((b, e, i as u32));
                    }
                    ni += 1;
                }
            }
        }
        if stale_self_wake {
            ctx.wake_local(i);
        }
        std::mem::swap(&mut self.config_reads[i], new_reads);
        self.evaluated[i] = true;
        self.flush_deps(ctx);
    }
}

impl<M> fabric::BackendWorker for ShardedWorker<M>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    type Config = M::Config;
    type Msg = Msg;

    fn seed(&mut self, ctx: &mut WorkerCtx<'_, M::Config, Msg>) {
        // Every worker runs the (deterministic) seed, applying only
        // the rows it owns — each row is seeded exactly once, by its
        // owner, with no message traffic.
        let bufs = std::mem::take(&mut self.bufs);
        let view = ShardView::new(&self.store, ctx.id(), &[], false, true, bufs);
        let mut tracked = TrackedStore::wrap_shard(view);
        self.machine.seed(&mut tracked);
        let (view, _, _) = tracked.into_shard_parts();
        let (mut bufs, seed_joins, seed_value_joins) = view.into_bufs();
        self.joins += seed_joins;
        self.value_joins += seed_value_joins;
        // No dependents can be registered yet; drop the grow set.
        bufs.grew.clear();
        self.bufs = bufs;
    }

    fn intern(&mut self, cfg: M::Config) -> usize {
        if let Some(&i) = self.index.get(&cfg) {
            return i;
        }
        let i = self.configs.len();
        self.configs.push(cfg.clone());
        self.index.insert(cfg, i);
        self.config_reads.push(Vec::new());
        self.evaluated.push(false);
        i
    }

    fn gated(&self, i: usize) -> bool {
        // Epoch gate on lock-free row epochs: skip when no read row
        // moved past the epoch this config actually observed.
        self.evaluated[i]
            && self.config_reads[i]
                .iter()
                .all(|&(a, e)| self.store.addr_epoch(a) <= e)
    }

    /// Evaluates one homed configuration (by local index).
    fn evaluate(&mut self, i: usize, ctx: &mut WorkerCtx<'_, M::Config, Msg>) {
        let config = self.configs[i].clone();
        self.successors.clear();
        let baseline = ctx.mode() == EvalMode::SemiNaive && self.evaluated[i];
        let mut bufs = std::mem::take(&mut self.bufs);
        bufs.time_locks = ctx.trace.enabled();
        let prev_reads: &[(u32, u64)] = if baseline { &self.config_reads[i] } else { &[] };
        let view = ShardView::new(&self.store, ctx.id(), prev_reads, baseline, false, bufs);
        let mut tracked = TrackedStore::wrap_shard(view);
        self.machine
            .step(&config, &mut tracked, &mut self.successors);
        let (view, step_delta_facts, step_delta_applies) = tracked.into_shard_parts();
        let (mut bufs, step_joins, step_value_joins) = view.into_bufs();
        ctx.delta_facts += step_delta_facts;
        ctx.delta_applies += step_delta_applies;
        self.joins += step_joins;
        self.value_joins += step_value_joins;

        for &us in &bufs.lock_waits {
            ctx.trace.row_lock_wait(us);
        }
        bufs.lock_waits.clear();

        // Canonicalize the read set: sorted by address, earliest
        // observed epoch per address (reading conservatively early
        // epochs only widens the next delta — sound).
        bufs.reads.sort_unstable();
        bufs.reads.dedup_by_key(|&mut (a, _)| a);
        self.register_deps(i, &mut bufs.reads, ctx);

        ctx.submit_fresh(&mut self.successors);

        bufs.grew.sort_unstable();
        bufs.grew.dedup();
        let grew = std::mem::take(&mut bufs.grew);
        self.bufs = bufs;
        self.announce_growth(&grew, ctx);
        self.bufs.grew = grew;
    }

    fn describe(&self, i: usize) -> String {
        format!("{:?}", self.configs[i])
    }

    /// Processes one delivered message. The fabric releases the
    /// message's pending count after this returns — everything the
    /// delivery spawns (wakes, forwarded messages) is counted inside.
    fn on_msg(&mut self, msg: Msg, ctx: &mut WorkerCtx<'_, M::Config, Msg>) {
        match msg {
            Msg::Grew(addrs) => {
                debug_assert!(
                    addrs.iter().all(|&a| self.store.owner(a) == ctx.id()),
                    "misrouted growth notification"
                );
                self.wake_dependents_of(&addrs, ctx);
                self.flush_wakes(ctx);
            }
            Msg::Deps { worker, adds, dels } => {
                for (a, seen_epoch, cfg) in adds {
                    debug_assert_eq!(self.store.owner(a), ctx.id(), "misrouted dep");
                    let key = (worker, cfg);
                    let list = self.deps.entry(a).or_default();
                    if let Err(pos) = list.binary_search(&key) {
                        list.insert(pos, key);
                    }
                    // Stale-snapshot check: the row moved past the epoch
                    // the reader observed before this registration
                    // landed — wake it now or it would wait forever.
                    // Self-owned registrations never arrive by message
                    // (register_deps applies them in place), so the
                    // sender is always remote.
                    debug_assert_ne!(worker as usize, ctx.id(), "self-registration by message");
                    if self.store.addr_epoch(a) > seen_epoch {
                        self.out_wakes[worker as usize].push(cfg);
                    }
                }
                for (a, cfg) in dels {
                    if let Some(list) = self.deps.get_mut(&a) {
                        if let Ok(pos) = list.binary_search(&(worker, cfg)) {
                            list.remove(pos);
                        }
                    }
                }
                self.flush_wakes(ctx);
            }
            Msg::Wakes(cfgs) => {
                for c in cfgs {
                    // The sender counted these as wakeups when it
                    // shipped the batch; only the pending count and the
                    // queue entry land here.
                    ctx.deliver_wake(c as usize);
                }
            }
        }
    }

    fn enforce_watermark(&mut self, watermark: usize, _threads: usize) {
        // The store tracks total delta-log bytes (the portion a trim
        // reclaims) in one atomic; whichever worker notices the overrun
        // trims every row — rows of idle owners included, since
        // trimming is safe from any thread.
        if self.store.delta_log_bytes() > watermark {
            self.store.trim_delta_logs();
        }
    }

    fn finish(&mut self, _sched: &mut SchedStats) {
        // Store-resident bytes are measured once, on the shared store,
        // by the driver — not per worker.
    }
}

/// Runs `machine` to its least fixed point on `threads` workers over
/// one shared address-sharded store (semi-naive re-evaluation).
///
/// The returned [`FixpointResult`] matches the sequential and
/// replicated engines on configurations and store facts (the fixed
/// point is unique). `delta_facts` counts each fact once, at the owner
/// that applied it — unlike the replicated backend, whose per-replica
/// broadcast multi-counts independent derivations.
pub fn run_fixpoint_sharded<M>(
    machine: &mut M,
    threads: usize,
    limits: EngineLimits,
) -> FixpointResult<M::Config, M::Addr, M::Val>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    run_fixpoint_sharded_with(machine, threads, limits, EvalMode::SemiNaive)
}

/// [`run_fixpoint_sharded`] under an explicit [`EvalMode`].
pub fn run_fixpoint_sharded_with<M>(
    machine: &mut M,
    threads: usize,
    limits: EngineLimits,
    mode: EvalMode,
) -> FixpointResult<M::Config, M::Addr, M::Val>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    let start = Instant::now();
    let threads = threads.max(1);

    let store: Arc<SharedStore<M::Addr, M::Val>> = Arc::new(SharedStore::new(threads));
    let fabric: Fabric<M::Config, Msg> = Fabric::new(threads);
    fabric.submit_root(machine.initial());

    let backends: Vec<ShardedWorker<M>> = (0..threads)
        .map(|_| ShardedWorker::new(machine.fork(), Arc::clone(&store)))
        .collect();
    let reports = fabric::drive(&fabric, backends, mode, &limits, start);
    let (status, configs) = fabric.finish();

    let (mut iterations, mut skipped, mut wakeups) = (0u64, 0u64, 0u64);
    let (mut delta_facts, mut delta_applies) = (0u64, 0u64);
    let (mut joins, mut value_joins) = (0u64, 0u64);
    let mut sched = SchedStats::default();
    let mut rings = Vec::new();
    for report in reports {
        iterations += report.iterations;
        skipped += report.skipped;
        wakeups += report.wakeups;
        delta_facts += report.delta_facts;
        delta_applies += report.delta_applies;
        joins += report.backend.joins;
        value_joins += report.backend.value_joins;
        sched.absorb(&report.sched);
        rings.push(report.trace);
        machine.absorb(report.backend.machine);
    }

    // The shared store *is* the result: measure it, then drain it into
    // an ordinary AbsStore without re-interning a single value. Every
    // worker's Arc was dropped with its report, so ownership is unique
    // again.
    sched.store_resident_bytes = store.approx_bytes() as u64;
    let store = Arc::try_unwrap(store)
        .unwrap_or_else(|_| panic!("all worker store references released"))
        .into_abs_store(joins, value_joins);

    FixpointResult {
        configs,
        store,
        status,
        iterations,
        skipped,
        wakeups,
        delta_facts,
        delta_applies,
        sched,
        elapsed: start.elapsed(),
        queue_wait: std::time::Duration::ZERO,
        trace: crate::telemetry::RunTrace::from_buffers(rings),
    }
}

impl crate::pool::PoolBackend for crate::parallel::Sharded {
    fn tenant<M>(
        mut machine: M,
        limits: EngineLimits,
        mode: EvalMode,
        deposit: Box<dyn FnOnce(crate::pool::PoolRun<M>) + Send>,
    ) -> Box<dyn crate::pool::TenantRun>
    where
        M: ParallelMachine + 'static,
        M::Config: Send + Sync + 'static,
        M::Addr: Send + Sync + Ord + 'static,
        M::Val: Send + Sync + 'static,
    {
        let store: Arc<SharedStore<M::Addr, M::Val>> = Arc::new(SharedStore::new(1));
        let fabric: Fabric<M::Config, Msg> = Fabric::new(1);
        fabric.submit_root(machine.initial());
        let backend = ShardedWorker::new(machine.fork(), Arc::clone(&store));
        // Mirrors the tail of run_fixpoint_sharded_with for one worker:
        // absorb the worker machine, measure the store, drain it into
        // an AbsStore — the same assembly a solo run performs.
        let assemble =
            move |backend: ShardedWorker<M>, status, configs, totals: crate::pool::RunTotals| {
                let ShardedWorker {
                    machine: worker,
                    store: worker_store,
                    joins,
                    value_joins,
                    ..
                } = backend;
                // The unbound `..` fields live to the end of this closure,
                // so the worker's store reference must be released by hand
                // before ownership can be reclaimed below.
                drop(worker_store);
                machine.absorb(worker);
                let mut sched = totals.sched;
                sched.store_resident_bytes = store.approx_bytes() as u64;
                let store = Arc::try_unwrap(store)
                    .unwrap_or_else(|_| panic!("tenant store reference released"))
                    .into_abs_store(joins, value_joins);
                crate::pool::PoolRun {
                    machine,
                    fixpoint: FixpointResult {
                        configs,
                        store,
                        status,
                        iterations: totals.iterations,
                        skipped: totals.skipped,
                        wakeups: totals.wakeups,
                        delta_facts: totals.delta_facts,
                        delta_applies: totals.delta_applies,
                        sched,
                        elapsed: totals.elapsed,
                        queue_wait: totals.queue_wait,
                        trace: totals.trace,
                    },
                }
            };
        Box::new(crate::pool::SoloTenant::new(
            fabric, backend, limits, mode, assemble, deposit,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_fixpoint, AbstractMachine, Status};
    use std::time::Duration;

    /// The toy machine of the engine tests.
    #[derive(Clone)]
    struct Counter {
        n: u32,
    }

    impl AbstractMachine for Counter {
        type Config = u32;
        type Addr = u32;
        type Val = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn step(&mut self, c: &u32, s: &mut TrackedStore<'_, u32, u32>, out: &mut Vec<u32>) {
            let c = *c;
            if c < self.n {
                s.join(&(c % 3), [c]);
                out.push(c + 1);
            } else {
                let _ = s.read(&0);
            }
        }
    }

    impl ParallelMachine for Counter {
        fn fork(&self) -> Self {
            self.clone()
        }
        fn absorb(&mut self, _worker: Self) {}
    }

    #[test]
    fn sharded_matches_sequential_on_counter() {
        for threads in [1, 2, 4] {
            let seq = run_fixpoint(&mut Counter { n: 40 }, EngineLimits::default());
            let par =
                run_fixpoint_sharded(&mut Counter { n: 40 }, threads, EngineLimits::default());
            assert_eq!(par.status, Status::Completed, "threads={threads}");
            let mut seq_configs = seq.configs.clone();
            let mut par_configs = par.configs.clone();
            seq_configs.sort_unstable();
            par_configs.sort_unstable();
            assert_eq!(seq_configs, par_configs, "threads={threads}");
            for addr in 0..3u32 {
                assert_eq!(
                    seq.store.read(&addr),
                    par.store.read(&addr),
                    "threads={threads}"
                );
            }
            assert_eq!(
                seq.store.fact_count(),
                par.store.fact_count(),
                "threads={threads}"
            );
            assert_eq!(
                seq.delta_facts, par.delta_facts,
                "sharded growth is counted once per fact (threads={threads})"
            );
        }
    }

    /// Feedback machine: convergence requires many cross-config wakeups.
    struct Feedback;

    impl AbstractMachine for Feedback {
        type Config = u8;
        type Addr = u8;
        type Val = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
            if *c == 0 {
                s.join(&0, [1u8]);
                out.extend([1, 2]);
            } else {
                let seen = s.read(&(*c % 2));
                let next: Vec<u8> = seen
                    .iter()
                    .map(|id| *s.val(id))
                    .filter(|&v| v < 40)
                    .map(|v| v + 1)
                    .collect();
                s.join(&((*c + 1) % 2), next);
            }
        }
    }

    impl ParallelMachine for Feedback {
        fn fork(&self) -> Self {
            Feedback
        }
        fn absorb(&mut self, _worker: Self) {}
    }

    #[test]
    fn sharded_feedback_converges_across_thread_counts() {
        let seq = run_fixpoint(&mut Feedback, EngineLimits::default());
        for threads in [1, 2, 4] {
            let par = run_fixpoint_sharded(&mut Feedback, threads, EngineLimits::default());
            assert_eq!(par.status, Status::Completed, "threads={threads}");
            assert_eq!(par.store.read(&0), seq.store.read(&0), "threads={threads}");
            assert_eq!(par.store.read(&1), seq.store.read(&1), "threads={threads}");
            assert_eq!(par.config_count(), seq.config_count(), "threads={threads}");
        }
    }

    /// Both evaluation modes compute the same fixpoint over the shared
    /// store (semi-naive only narrows join inputs).
    #[test]
    fn sharded_modes_agree_and_semi_naive_scans_less() {
        let semi = run_fixpoint_sharded_with(
            &mut Feedback,
            2,
            EngineLimits::default(),
            EvalMode::SemiNaive,
        );
        let full = run_fixpoint_sharded_with(
            &mut Feedback,
            2,
            EngineLimits::default(),
            EvalMode::FullReeval,
        );
        assert_eq!(semi.store.read(&0), full.store.read(&0));
        assert_eq!(semi.store.read(&1), full.store.read(&1));
        assert_eq!(semi.store.fact_count(), full.store.fact_count());
    }

    #[test]
    fn iteration_limit_fires_sharded() {
        let r = run_fixpoint_sharded(
            &mut Counter { n: 1_000_000 },
            2,
            EngineLimits::iterations(100),
        );
        assert_eq!(r.status, Status::IterationLimit);
        assert!(r.iterations <= 100, "globally counted: {}", r.iterations);
    }

    #[test]
    fn timeout_fires_sharded() {
        struct Spin;
        impl AbstractMachine for Spin {
            type Config = u64;
            type Addr = u64;
            type Val = u64;
            fn initial(&self) -> u64 {
                0
            }
            fn step(&mut self, c: &u64, _s: &mut TrackedStore<'_, u64, u64>, out: &mut Vec<u64>) {
                std::thread::sleep(Duration::from_millis(1));
                out.push(c + 1);
            }
        }
        impl ParallelMachine for Spin {
            fn fork(&self) -> Self {
                Spin
            }
            fn absorb(&mut self, _worker: Self) {}
        }
        let r = run_fixpoint_sharded(
            &mut Spin,
            2,
            EngineLimits::timeout(Duration::from_millis(50)),
        );
        assert_eq!(r.status, Status::TimedOut);
    }

    /// A machine whose seed joins rows from every worker: each row must
    /// end up seeded exactly once (by its owner), and the root must see
    /// the seeds even if it races ahead of a slower seeder.
    struct Seeded;

    impl AbstractMachine for Seeded {
        type Config = u16;
        type Addr = u16;
        type Val = u16;

        fn initial(&self) -> u16 {
            0
        }

        fn seed(&mut self, s: &mut TrackedStore<'_, u16, u16>) {
            for a in 0..32u16 {
                s.join(&a, [a + 100]);
            }
        }

        fn step(&mut self, c: &u16, s: &mut TrackedStore<'_, u16, u16>, out: &mut Vec<u16>) {
            if *c < 32 {
                // Copy each seeded row into an output row.
                let f = s.read(c);
                s.join_flow(&(*c + 1000), &f);
                out.push(c + 1);
            }
        }
    }

    impl ParallelMachine for Seeded {
        fn fork(&self) -> Self {
            Seeded
        }
        fn absorb(&mut self, _worker: Self) {}
    }

    #[test]
    fn every_row_is_seeded_exactly_once_by_its_owner() {
        for threads in [1, 3, 4] {
            let r = run_fixpoint_sharded(&mut Seeded, threads, EngineLimits::default());
            assert_eq!(r.status, Status::Completed, "threads={threads}");
            for a in 0..32u16 {
                assert_eq!(
                    r.store.read(&a),
                    [a + 100].into_iter().collect(),
                    "seed row {a} (threads={threads})"
                );
                assert_eq!(
                    r.store.read(&(a + 1000)),
                    [a + 100].into_iter().collect(),
                    "copied row {a} (threads={threads})"
                );
            }
        }
    }
}

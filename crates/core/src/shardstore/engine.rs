//! The sharded parallel fixpoint engine: N workers race monotonically
//! on **one** [`SharedStore`] instead of broadcasting facts between N
//! replicas.
//!
//! # How work and facts move
//!
//! Configurations are sharded by first touch exactly as in
//! [`crate::parallel`]: global hash-sharded dedup, stealable fresh
//! queues, wakeups pinned to the home worker. What changes is the
//! store side:
//!
//! * **reads** go straight to the shared store from any thread
//!   (epoch-stamped snapshots under a per-row mutex, epoch gates on a
//!   lock-free atomic);
//! * **writes** go through the shared row from any thread (the row
//!   mutex serializes them), so a worker's successors immediately read
//!   the arguments their parent just bound — the property that keeps
//!   the evaluation count in the replicated engine's regime. No fact
//!   is ever re-interned or re-joined per replica, which removes the
//!   all-to-all broadcast quadratic and makes store memory O(program)
//!   instead of O(program × threads). What *is* routed to the shard
//!   that owns a grown row is the **growth notification**
//!   ([`Msg::Grew`]) — addresses, never facts;
//! * **dependents are indexed at the row's owner**: after an
//!   evaluation, the home worker registers `(worker, config)` in the
//!   owner's dependency lists ([`Msg::Deps`]), and growth wakes exactly
//!   the registered dependents, point-to-point ([`Msg::Wakes`]) —
//!   never every replica.
//!
//! # The stale-snapshot race
//!
//! A reader can snapshot a row, and the owner can grow that row and
//! wake its *current* dependents before the reader's registration
//! arrives. Registrations therefore carry the epoch the reader
//! observed; the owner compares it against the row's current epoch when
//! it processes the registration and immediately wakes the reader if
//! the row has moved past it. Every read is thus covered: growth before
//! the read is in the snapshot, growth after it either finds the
//! dependent registered or is caught by the registration-time check.
//! (`tests/store_backends.rs` forces this interleaving with a
//! rendezvous machine.)
//!
//! # Semi-naive deltas without replicas
//!
//! A configuration's baseline is not one global epoch (racy on a shared
//! store — a concurrent owner may publish growth stamped below a
//! just-read counter) but the **per-row epochs its last evaluation
//! observed**, recorded under the same lock as each snapshot. Delta
//! reads answer "what landed after the epoch I actually saw", served
//! from the owner-written per-row delta logs.
//!
//! # Termination and result
//!
//! The single pending counter of the replicated engine carries over
//! unchanged: queued tasks + in-flight evaluations + undelivered
//! messages + queued wakeups; `pending == 0` observed by an idle worker
//! proves global quiescence. The result needs **no `merge_from`
//! union** — the shared store *is* the fixpoint; it drains into an
//! ordinary [`crate::store::AbsStore`] without re-interning a value.

use super::store::{ShardBufs, ShardView, SharedStore};
use crate::engine::{EngineLimits, EvalMode, FixpointResult, SchedStats, Status, TrackedStore};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::parallel::{seen_shard, ParallelMachine, SEEN_SHARDS};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// An inter-worker message. Everything is id-level — the global
/// interner is what keeps the wire format free of values.
enum Msg {
    /// Rows owned by the receiving worker grew (sorted, unique address
    /// ids): wake their registered dependents. The facts themselves are
    /// already in the shared store — growth notifications carry
    /// addresses, never values.
    Grew(Vec<u32>),
    /// Dependency registration from `worker`: `adds` are
    /// `(addr_id, observed epoch, config index at `worker`)` — the
    /// observed epoch powers the stale-snapshot check — and `dels`
    /// deregister `(addr_id, config index)` pairs whose read sets
    /// shrank.
    Deps {
        worker: u32,
        adds: Vec<(u32, u64, u32)>,
        dels: Vec<(u32, u32)>,
    },
    /// Wake the given config indexes homed at the receiving worker.
    Wakes(Vec<u32>),
}

/// State shared by all workers (the scheduling fabric; the store is a
/// separate shared reference).
struct Shared<C> {
    /// Per-worker queues of fresh (never-evaluated) configurations;
    /// owners pop the front, thieves steal a batch from the back.
    queues: Vec<Mutex<VecDeque<C>>>,
    /// Per-worker message inboxes.
    inboxes: Vec<Mutex<Vec<Msg>>>,
    /// Global dedup of first-time configurations, sharded by hash.
    seen: Vec<Mutex<FxHashSet<C>>>,
    /// Queued tasks + in-flight evaluations + undelivered messages +
    /// queued wakeups.
    pending: AtomicU64,
    /// Raised once: fixpoint reached or a limit fired.
    done: AtomicBool,
    /// Global evaluation counter (for `max_iterations`).
    evals: AtomicU64,
    /// The limit that stopped the run, if any (first writer wins).
    stop_status: Mutex<Option<Status>>,
}

impl<C> Shared<C> {
    fn stop(&self, status: Status) {
        let mut slot = self.stop_status.lock().expect("status lock");
        slot.get_or_insert(status);
        self.done.store(true, Ordering::Release);
    }

    fn inbox(&self, id: usize) -> MutexGuard<'_, Vec<Msg>> {
        self.inboxes[id].lock().expect("inbox lock")
    }
}

/// Per-owner outgoing dependency batch.
#[derive(Default)]
struct DepBatch {
    adds: Vec<(u32, u64, u32)>,
    dels: Vec<(u32, u32)>,
}

/// One worker: the home of the configurations it first evaluated (their
/// read sets and wake queue) and the owner of its row shard (their
/// dependency lists and delta logs).
struct Worker<'s, M: ParallelMachine> {
    id: usize,
    machine: M,
    store: &'s SharedStore<M::Addr, M::Val>,
    shared: &'s Shared<M::Config>,
    /// Locally homed configurations.
    configs: Vec<M::Config>,
    index: FxHashMap<M::Config, usize>,
    /// Per homed config: the `(addr_id, observed epoch)` pairs of its
    /// last evaluation, sorted by address id — gate input and
    /// semi-naive baselines in one.
    config_reads: Vec<Vec<(u32, u64)>>,
    evaluated: Vec<bool>,
    /// Dependents of *owned* rows: addr id → sorted `(worker, config)`.
    deps: FxHashMap<u32, Vec<(u32, u32)>>,
    /// Pinned re-evaluations of homed configs. Dedup-free; the epoch
    /// gate absorbs duplicates.
    wakes: VecDeque<usize>,
    bufs: ShardBufs,
    /// Per-target outgoing wake batches (scratch, drained per flush).
    out_wakes: Vec<Vec<u32>>,
    /// Per-owner outgoing dependency batches (scratch).
    out_deps: Vec<DepBatch>,
    /// Per-owner outgoing growth notifications (scratch).
    out_grew: Vec<Vec<u32>>,
    /// Local wake scratch.
    woken: Vec<usize>,
    iterations: u64,
    skipped: u64,
    wakeups: u64,
    delta_facts: u64,
    delta_applies: u64,
    joins: u64,
    value_joins: u64,
    sched: SchedStats,
    mode: EvalMode,
}

/// What one worker hands back after the run.
struct WorkerOutput<M> {
    machine: M,
    iterations: u64,
    skipped: u64,
    wakeups: u64,
    delta_facts: u64,
    delta_applies: u64,
    joins: u64,
    value_joins: u64,
    sched: SchedStats,
}

impl<'s, M> Worker<'s, M>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    fn new(
        id: usize,
        machine: M,
        mode: EvalMode,
        store: &'s SharedStore<M::Addr, M::Val>,
        shared: &'s Shared<M::Config>,
    ) -> Self {
        let threads = store.shard_count();
        Worker {
            id,
            machine,
            store,
            shared,
            configs: Vec::new(),
            index: FxHashMap::default(),
            config_reads: Vec::new(),
            evaluated: Vec::new(),
            deps: FxHashMap::default(),
            wakes: VecDeque::new(),
            bufs: ShardBufs::default(),
            out_wakes: (0..threads).map(|_| Vec::new()).collect(),
            out_deps: (0..threads).map(|_| DepBatch::default()).collect(),
            out_grew: (0..threads).map(|_| Vec::new()).collect(),
            woken: Vec::new(),
            iterations: 0,
            skipped: 0,
            wakeups: 0,
            delta_facts: 0,
            delta_applies: 0,
            joins: 0,
            value_joins: 0,
            sched: SchedStats::default(),
            mode,
        }
    }

    fn intern_local(&mut self, cfg: M::Config) -> usize {
        if let Some(&i) = self.index.get(&cfg) {
            return i;
        }
        let i = self.configs.len();
        self.configs.push(cfg.clone());
        self.index.insert(cfg, i);
        self.config_reads.push(Vec::new());
        self.evaluated.push(false);
        i
    }

    fn push_fresh(&self, cfg: M::Config) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.queues[self.id]
            .lock()
            .expect("queue lock")
            .push_back(cfg);
    }

    fn pop_local(&self) -> Option<M::Config> {
        self.shared.queues[self.id]
            .lock()
            .expect("queue lock")
            .pop_front()
    }

    /// Steals up to half of a victim's fresh queue (same discipline and
    /// deadlock argument as the replicated engine).
    fn steal(&mut self) -> Option<M::Config> {
        let n = self.shared.queues.len();
        for off in 1..n {
            let victim = (self.id + off) % n;
            let mut stolen = {
                let mut q = self.shared.queues[victim].lock().expect("queue lock");
                let len = q.len();
                if len == 0 {
                    continue;
                }
                q.split_off(len - len.div_ceil(2))
            };
            let first = stolen.pop_front();
            if !stolen.is_empty() {
                self.shared.queues[self.id]
                    .lock()
                    .expect("queue lock")
                    .append(&mut stolen);
            }
            self.sched.steals += 1;
            return first;
        }
        self.sched.failed_steals += 1;
        None
    }

    /// Routes never-seen successors through the global dedup into this
    /// worker's stealable queue.
    fn submit_fresh(&self, successors: &mut Vec<M::Config>) {
        for succ in successors.drain(..) {
            let fresh = self.shared.seen[seen_shard(&succ)]
                .lock()
                .expect("seen lock")
                .insert(succ.clone());
            if fresh {
                self.push_fresh(succ);
            }
        }
    }

    /// Wakes the dependents of every *self-owned* row among the
    /// (sorted, unique) grown rows — rows owned elsewhere are ignored
    /// (their owners are notified separately). Homed dependents enter
    /// the local wake queue, remote ones are batched per target worker
    /// (flushed by [`Worker::flush_wakes`]).
    fn wake_dependents_of(&mut self, grown: &[u32]) {
        debug_assert!(self.woken.is_empty(), "woken scratch left dirty");
        for &a in grown {
            if self.store.owner(a) != self.id {
                continue;
            }
            if let Some(list) = self.deps.get(&a) {
                for &(w, c) in list {
                    if w as usize == self.id {
                        self.woken.push(c as usize);
                    } else {
                        self.out_wakes[w as usize].push(c);
                    }
                }
            }
        }
        self.woken.sort_unstable();
        self.woken.dedup();
        for idx in 0..self.woken.len() {
            let j = self.woken[idx];
            self.wakeups += 1;
            self.shared.pending.fetch_add(1, Ordering::AcqRel);
            self.wakes.push_back(j);
        }
        self.woken.clear();
    }

    /// Ships the batched remote wakes, one message per target.
    fn flush_wakes(&mut self) {
        for target in 0..self.out_wakes.len() {
            if self.out_wakes[target].is_empty() {
                continue;
            }
            let mut batch = std::mem::take(&mut self.out_wakes[target]);
            batch.sort_unstable();
            batch.dedup();
            self.wakeups += batch.len() as u64;
            self.shared.pending.fetch_add(1, Ordering::AcqRel);
            self.shared.inbox(target).push(Msg::Wakes(batch));
        }
    }

    /// Ships the batched dependency registrations, one message per
    /// owner.
    fn flush_deps(&mut self) {
        for owner in 0..self.out_deps.len() {
            let batch = &mut self.out_deps[owner];
            if batch.adds.is_empty() && batch.dels.is_empty() {
                continue;
            }
            let msg = Msg::Deps {
                worker: self.id as u32,
                adds: std::mem::take(&mut batch.adds),
                dels: std::mem::take(&mut batch.dels),
            };
            self.shared.pending.fetch_add(1, Ordering::AcqRel);
            self.shared.inbox(owner).push(msg);
        }
    }

    /// Partitions one evaluation's grown rows (sorted, unique): wakes
    /// local dependents of self-owned rows, batches growth
    /// notifications for foreign owners, and ships both.
    fn announce_growth(&mut self, grown: &[u32]) {
        for &a in grown {
            let owner = self.store.owner(a);
            if owner != self.id {
                self.out_grew[owner].push(a);
            }
        }
        self.wake_dependents_of(grown);
        self.flush_wakes();
        for owner in 0..self.out_grew.len() {
            if self.out_grew[owner].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.out_grew[owner]);
            self.shared.pending.fetch_add(1, Ordering::AcqRel);
            self.shared.inbox(owner).push(Msg::Grew(batch));
        }
    }

    /// Registers config `i`'s new read set: diffs it against the
    /// previous one, applies self-owned adds/dels in place (with the
    /// stale-snapshot wake check), batches foreign ones per owner, and
    /// installs the new read set.
    fn register_deps(&mut self, i: usize, new_reads: &mut Vec<(u32, u64)>) {
        let me = (self.id as u32, i as u32);
        // Walk old and new (both sorted by addr id).
        let mut stale_self_wake = false;
        {
            let old = std::mem::take(&mut self.config_reads[i]);
            let (mut oi, mut ni) = (0, 0);
            while oi < old.len() || ni < new_reads.len() {
                let oa = old.get(oi).map(|&(a, _)| a);
                let na = new_reads.get(ni).map(|&(a, _)| a);
                let drop_old = match (oa, na) {
                    (Some(a), Some(b)) if a == b => {
                        oi += 1;
                        ni += 1;
                        continue;
                    }
                    (Some(a), Some(b)) => a < b,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => unreachable!("loop condition"),
                };
                if drop_old {
                    // Dropped address: deregister.
                    let a = old[oi].0;
                    let owner = self.store.owner(a);
                    if owner == self.id {
                        if let Some(list) = self.deps.get_mut(&a) {
                            if let Ok(pos) = list.binary_search(&me) {
                                list.remove(pos);
                            }
                        }
                    } else {
                        self.out_deps[owner].dels.push((a, i as u32));
                    }
                    oi += 1;
                } else {
                    // Added address: register with the observed epoch
                    // for the stale-snapshot check.
                    let (b, e) = new_reads[ni];
                    let owner = self.store.owner(b);
                    if owner == self.id {
                        let list = self.deps.entry(b).or_default();
                        if let Err(pos) = list.binary_search(&me) {
                            list.insert(pos, me);
                        }
                        if self.store.addr_epoch(b) > e {
                            stale_self_wake = true;
                        }
                    } else {
                        self.out_deps[owner].adds.push((b, e, i as u32));
                    }
                    ni += 1;
                }
            }
        }
        if stale_self_wake {
            self.wakeups += 1;
            self.shared.pending.fetch_add(1, Ordering::AcqRel);
            self.wakes.push_back(i);
        }
        std::mem::swap(&mut self.config_reads[i], new_reads);
        self.evaluated[i] = true;
        self.flush_deps();
    }

    /// Processes one delivered message.
    fn handle_msg(&mut self, msg: Msg) {
        match msg {
            Msg::Grew(addrs) => {
                debug_assert!(
                    addrs.iter().all(|&a| self.store.owner(a) == self.id),
                    "misrouted growth notification"
                );
                self.wake_dependents_of(&addrs);
                self.flush_wakes();
            }
            Msg::Deps { worker, adds, dels } => {
                for (a, seen_epoch, cfg) in adds {
                    debug_assert_eq!(self.store.owner(a), self.id, "misrouted dep");
                    let key = (worker, cfg);
                    let list = self.deps.entry(a).or_default();
                    if let Err(pos) = list.binary_search(&key) {
                        list.insert(pos, key);
                    }
                    // Stale-snapshot check: the row moved past the epoch
                    // the reader observed before this registration
                    // landed — wake it now or it would wait forever.
                    // Self-owned registrations never arrive by message
                    // (register_deps applies them in place), so the
                    // sender is always remote.
                    debug_assert_ne!(worker as usize, self.id, "self-registration by message");
                    if self.store.addr_epoch(a) > seen_epoch {
                        self.out_wakes[worker as usize].push(cfg);
                    }
                }
                for (a, cfg) in dels {
                    if let Some(list) = self.deps.get_mut(&a) {
                        if let Ok(pos) = list.binary_search(&(worker, cfg)) {
                            list.remove(pos);
                        }
                    }
                }
                self.flush_wakes();
            }
            Msg::Wakes(cfgs) => {
                for c in cfgs {
                    self.shared.pending.fetch_add(1, Ordering::AcqRel);
                    self.wakes.push_back(c as usize);
                }
            }
        }
        // Only now is the message's own pending released: everything it
        // spawned (wakes, forwarded messages) is already counted.
        self.shared.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// Evaluates one homed configuration (by local index).
    fn process(&mut self, i: usize, limits: &EngineLimits, successors: &mut Vec<M::Config>) {
        // Epoch gate on lock-free row epochs: skip when no read row
        // moved past the epoch this config actually observed. Wake
        // queues are dedup-free, so duplicate pops die here.
        if self.evaluated[i]
            && self.config_reads[i]
                .iter()
                .all(|&(a, e)| self.store.addr_epoch(a) <= e)
        {
            self.skipped += 1;
            self.shared.pending.fetch_sub(1, Ordering::AcqRel);
            return;
        }

        if self.shared.evals.fetch_add(1, Ordering::AcqRel) >= limits.max_iterations {
            self.shared.stop(Status::IterationLimit);
            self.shared.pending.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        self.iterations += 1;

        let config = self.configs[i].clone();
        successors.clear();
        let baseline = self.mode == EvalMode::SemiNaive && self.evaluated[i];
        let bufs = std::mem::take(&mut self.bufs);
        let prev_reads: &[(u32, u64)] = if baseline { &self.config_reads[i] } else { &[] };
        let view = ShardView::new(self.store, self.id, prev_reads, baseline, false, bufs);
        let mut tracked = TrackedStore::wrap_shard(view);
        self.machine.step(&config, &mut tracked, successors);
        let (view, step_delta_facts, step_delta_applies) = tracked.into_shard_parts();
        let (mut bufs, step_joins, step_value_joins) = view.into_bufs();
        self.delta_facts += step_delta_facts;
        self.delta_applies += step_delta_applies;
        self.joins += step_joins;
        self.value_joins += step_value_joins;

        // Canonicalize the read set: sorted by address, earliest
        // observed epoch per address (reading conservatively early
        // epochs only widens the next delta — sound).
        bufs.reads.sort_unstable();
        bufs.reads.dedup_by_key(|&mut (a, _)| a);
        self.register_deps(i, &mut bufs.reads);

        self.submit_fresh(successors);

        bufs.grew.sort_unstable();
        bufs.grew.dedup();
        self.announce_growth(&bufs.grew);
        self.bufs = bufs;

        self.shared.pending.fetch_sub(1, Ordering::AcqRel);
    }

    fn run(mut self, limits: &EngineLimits, start: Instant) -> WorkerOutput<M> {
        {
            // Every worker runs the (deterministic) seed, applying only
            // the rows it owns — each row is seeded exactly once, by its
            // owner, with no message traffic.
            let bufs = std::mem::take(&mut self.bufs);
            let view = ShardView::new(self.store, self.id, &[], false, true, bufs);
            let mut tracked = TrackedStore::wrap_shard(view);
            self.machine.seed(&mut tracked);
            let (view, _, _) = tracked.into_shard_parts();
            let (mut bufs, seed_joins, seed_value_joins) = view.into_bufs();
            self.joins += seed_joins;
            self.value_joins += seed_value_joins;
            // No dependents can be registered yet; drop the grow set.
            bufs.grew.clear();
            self.bufs = bufs;
        }

        let mut successors: Vec<M::Config> = Vec::new();
        let mut pops: u64 = 0;
        let mut idle_spins: u32 = 0;

        loop {
            if self.shared.done.load(Ordering::Acquire) {
                break;
            }

            // Messages first: routed joins and registrations must land
            // before this worker commits to idling.
            let msgs = {
                let mut inbox = self.shared.inbox(self.id);
                std::mem::take(&mut *inbox)
            };
            if !msgs.is_empty() {
                self.sched.inbox_batches += msgs.len() as u64;
                self.sched.max_inbox_depth = self.sched.max_inbox_depth.max(msgs.len() as u64);
                for msg in msgs {
                    self.handle_msg(msg);
                }
                idle_spins = 0;
                continue;
            }

            let task: Option<usize> = match self.pop_local() {
                Some(cfg) => Some(self.intern_local(cfg)),
                None => match self.wakes.pop_front() {
                    Some(i) => Some(i),
                    None => self.steal().map(|cfg| self.intern_local(cfg)),
                },
            };
            let Some(i) = task else {
                if self.shared.pending.load(Ordering::Acquire) == 0 {
                    self.shared.done.store(true, Ordering::Release);
                    break;
                }
                idle_spins += 1;
                self.sched.idle_spins += 1;
                if idle_spins < 32 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
                continue;
            };
            idle_spins = 0;

            pops += 1;
            if pops.is_multiple_of(64) {
                if let Some(budget) = limits.time_budget {
                    if start.elapsed() > budget {
                        self.shared.stop(Status::TimedOut);
                        self.shared.pending.fetch_sub(1, Ordering::AcqRel);
                        break;
                    }
                }
                // Watermark: the store tracks total delta-log bytes
                // (the portion a trim reclaims) in one atomic;
                // whichever worker notices the overrun trims every
                // row — rows of idle owners included, since trimming
                // is safe from any thread.
                if let Some(watermark) = limits.store_bytes_watermark {
                    if self.store.delta_log_bytes() > watermark {
                        self.store.trim_delta_logs();
                    }
                }
            }

            self.process(i, limits, &mut successors);
        }

        WorkerOutput {
            machine: self.machine,
            iterations: self.iterations,
            skipped: self.skipped,
            wakeups: self.wakeups,
            delta_facts: self.delta_facts,
            delta_applies: self.delta_applies,
            joins: self.joins,
            value_joins: self.value_joins,
            sched: self.sched,
        }
    }
}

/// Runs `machine` to its least fixed point on `threads` workers over
/// one shared address-sharded store (semi-naive re-evaluation).
///
/// The returned [`FixpointResult`] matches the sequential and
/// replicated engines on configurations and store facts (the fixed
/// point is unique). `delta_facts` counts each fact once, at the owner
/// that applied it — unlike the replicated backend, whose per-replica
/// broadcast multi-counts independent derivations.
pub fn run_fixpoint_sharded<M>(
    machine: &mut M,
    threads: usize,
    limits: EngineLimits,
) -> FixpointResult<M::Config, M::Addr, M::Val>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    run_fixpoint_sharded_with(machine, threads, limits, EvalMode::SemiNaive)
}

/// [`run_fixpoint_sharded`] under an explicit [`EvalMode`].
pub fn run_fixpoint_sharded_with<M>(
    machine: &mut M,
    threads: usize,
    limits: EngineLimits,
    mode: EvalMode,
) -> FixpointResult<M::Config, M::Addr, M::Val>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    let start = Instant::now();
    let threads = threads.max(1);

    let store: SharedStore<M::Addr, M::Val> = SharedStore::new(threads);
    let shared: Shared<M::Config> = Shared {
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        inboxes: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
        seen: (0..SEEN_SHARDS)
            .map(|_| Mutex::new(FxHashSet::default()))
            .collect(),
        pending: AtomicU64::new(0),
        done: AtomicBool::new(false),
        evals: AtomicU64::new(0),
        stop_status: Mutex::new(None),
    };

    let root = machine.initial();
    shared.seen[seen_shard(&root)]
        .lock()
        .expect("seen lock")
        .insert(root.clone());
    shared.pending.fetch_add(1, Ordering::AcqRel);
    shared.queues[0].lock().expect("queue lock").push_back(root);

    let mut workers: Vec<Worker<'_, M>> = (0..threads)
        .map(|id| Worker::new(id, machine.fork(), mode, &store, &shared))
        .collect();

    let outputs: Vec<WorkerOutput<M>> = if threads == 1 {
        vec![workers.pop().expect("one worker").run(&limits, start)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .drain(..)
                .map(|w| scope.spawn(|| w.run(&limits, start)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };

    let status = shared
        .stop_status
        .into_inner()
        .expect("status lock")
        .unwrap_or(Status::Completed);

    let (mut iterations, mut skipped, mut wakeups) = (0u64, 0u64, 0u64);
    let (mut delta_facts, mut delta_applies) = (0u64, 0u64);
    let (mut joins, mut value_joins) = (0u64, 0u64);
    let mut sched = SchedStats::default();
    for out in outputs {
        iterations += out.iterations;
        skipped += out.skipped;
        wakeups += out.wakeups;
        delta_facts += out.delta_facts;
        delta_applies += out.delta_applies;
        joins += out.joins;
        value_joins += out.value_joins;
        sched.absorb(&out.sched);
        machine.absorb(out.machine);
    }

    // The shared store *is* the result: measure it, then drain it into
    // an ordinary AbsStore without re-interning a single value.
    sched.store_resident_bytes = store.approx_bytes() as u64;
    let store = store.into_abs_store(joins, value_joins);

    let configs: Vec<M::Config> = shared
        .seen
        .into_iter()
        .flat_map(|shard| shard.into_inner().expect("seen lock"))
        .collect();

    FixpointResult {
        configs,
        store,
        status,
        iterations,
        skipped,
        wakeups,
        delta_facts,
        delta_applies,
        sched,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_fixpoint, AbstractMachine};

    /// The toy machine of the engine tests.
    #[derive(Clone)]
    struct Counter {
        n: u32,
    }

    impl AbstractMachine for Counter {
        type Config = u32;
        type Addr = u32;
        type Val = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn step(&mut self, c: &u32, s: &mut TrackedStore<'_, u32, u32>, out: &mut Vec<u32>) {
            let c = *c;
            if c < self.n {
                s.join(&(c % 3), [c]);
                out.push(c + 1);
            } else {
                let _ = s.read(&0);
            }
        }
    }

    impl ParallelMachine for Counter {
        fn fork(&self) -> Self {
            self.clone()
        }
        fn absorb(&mut self, _worker: Self) {}
    }

    #[test]
    fn sharded_matches_sequential_on_counter() {
        for threads in [1, 2, 4] {
            let seq = run_fixpoint(&mut Counter { n: 40 }, EngineLimits::default());
            let par =
                run_fixpoint_sharded(&mut Counter { n: 40 }, threads, EngineLimits::default());
            assert_eq!(par.status, Status::Completed, "threads={threads}");
            let mut seq_configs = seq.configs.clone();
            let mut par_configs = par.configs.clone();
            seq_configs.sort_unstable();
            par_configs.sort_unstable();
            assert_eq!(seq_configs, par_configs, "threads={threads}");
            for addr in 0..3u32 {
                assert_eq!(
                    seq.store.read(&addr),
                    par.store.read(&addr),
                    "threads={threads}"
                );
            }
            assert_eq!(
                seq.store.fact_count(),
                par.store.fact_count(),
                "threads={threads}"
            );
            assert_eq!(
                seq.delta_facts, par.delta_facts,
                "sharded growth is counted once per fact (threads={threads})"
            );
        }
    }

    /// Feedback machine: convergence requires many cross-config wakeups.
    struct Feedback;

    impl AbstractMachine for Feedback {
        type Config = u8;
        type Addr = u8;
        type Val = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
            if *c == 0 {
                s.join(&0, [1u8]);
                out.extend([1, 2]);
            } else {
                let seen = s.read(&(*c % 2));
                let next: Vec<u8> = seen
                    .iter()
                    .map(|id| *s.val(id))
                    .filter(|&v| v < 40)
                    .map(|v| v + 1)
                    .collect();
                s.join(&((*c + 1) % 2), next);
            }
        }
    }

    impl ParallelMachine for Feedback {
        fn fork(&self) -> Self {
            Feedback
        }
        fn absorb(&mut self, _worker: Self) {}
    }

    #[test]
    fn sharded_feedback_converges_across_thread_counts() {
        let seq = run_fixpoint(&mut Feedback, EngineLimits::default());
        for threads in [1, 2, 4] {
            let par = run_fixpoint_sharded(&mut Feedback, threads, EngineLimits::default());
            assert_eq!(par.status, Status::Completed, "threads={threads}");
            assert_eq!(par.store.read(&0), seq.store.read(&0), "threads={threads}");
            assert_eq!(par.store.read(&1), seq.store.read(&1), "threads={threads}");
            assert_eq!(par.config_count(), seq.config_count(), "threads={threads}");
        }
    }

    /// Both evaluation modes compute the same fixpoint over the shared
    /// store (semi-naive only narrows join inputs).
    #[test]
    fn sharded_modes_agree_and_semi_naive_scans_less() {
        let semi = run_fixpoint_sharded_with(
            &mut Feedback,
            2,
            EngineLimits::default(),
            EvalMode::SemiNaive,
        );
        let full = run_fixpoint_sharded_with(
            &mut Feedback,
            2,
            EngineLimits::default(),
            EvalMode::FullReeval,
        );
        assert_eq!(semi.store.read(&0), full.store.read(&0));
        assert_eq!(semi.store.read(&1), full.store.read(&1));
        assert_eq!(semi.store.fact_count(), full.store.fact_count());
    }

    #[test]
    fn iteration_limit_fires_sharded() {
        let r = run_fixpoint_sharded(
            &mut Counter { n: 1_000_000 },
            2,
            EngineLimits::iterations(100),
        );
        assert_eq!(r.status, Status::IterationLimit);
        assert!(r.iterations <= 100, "globally counted: {}", r.iterations);
    }

    #[test]
    fn timeout_fires_sharded() {
        struct Spin;
        impl AbstractMachine for Spin {
            type Config = u64;
            type Addr = u64;
            type Val = u64;
            fn initial(&self) -> u64 {
                0
            }
            fn step(&mut self, c: &u64, _s: &mut TrackedStore<'_, u64, u64>, out: &mut Vec<u64>) {
                std::thread::sleep(Duration::from_millis(1));
                out.push(c + 1);
            }
        }
        impl ParallelMachine for Spin {
            fn fork(&self) -> Self {
                Spin
            }
            fn absorb(&mut self, _worker: Self) {}
        }
        let r = run_fixpoint_sharded(
            &mut Spin,
            2,
            EngineLimits::timeout(Duration::from_millis(50)),
        );
        assert_eq!(r.status, Status::TimedOut);
    }

    /// A machine whose seed joins rows from every worker: each row must
    /// end up seeded exactly once (by its owner), and the root must see
    /// the seeds even if it races ahead of a slower seeder.
    struct Seeded;

    impl AbstractMachine for Seeded {
        type Config = u16;
        type Addr = u16;
        type Val = u16;

        fn initial(&self) -> u16 {
            0
        }

        fn seed(&mut self, s: &mut TrackedStore<'_, u16, u16>) {
            for a in 0..32u16 {
                s.join(&a, [a + 100]);
            }
        }

        fn step(&mut self, c: &u16, s: &mut TrackedStore<'_, u16, u16>, out: &mut Vec<u16>) {
            if *c < 32 {
                // Copy each seeded row into an output row.
                let f = s.read(c);
                s.join_flow(&(*c + 1000), &f);
                out.push(c + 1);
            }
        }
    }

    impl ParallelMachine for Seeded {
        fn fork(&self) -> Self {
            Seeded
        }
        fn absorb(&mut self, _worker: Self) {}
    }

    #[test]
    fn every_row_is_seeded_exactly_once_by_its_owner() {
        for threads in [1, 3, 4] {
            let r = run_fixpoint_sharded(&mut Seeded, threads, EngineLimits::default());
            assert_eq!(r.status, Status::Completed, "threads={threads}");
            for a in 0..32u16 {
                assert_eq!(
                    r.store.read(&a),
                    [a + 100].into_iter().collect(),
                    "seed row {a} (threads={threads})"
                );
                assert_eq!(
                    r.store.read(&(a + 1000)),
                    [a + 100].into_iter().collect(),
                    "copied row {a} (threads={threads})"
                );
            }
        }
    }
}

//! The globally shared, address-sharded store, plus the per-evaluation
//! view the engine hands to machines.
//!
//! One [`SharedStore`] serves every worker:
//!
//! * values and addresses intern through the global
//!   `ConcurrentPool`s (the crate-private `pool` module) — ids are process-global, so a
//!   fact is interned exactly once for the whole run;
//! * each address id maps to one row slot; rows are *owned* by the
//!   shard `owner(addr_id)` (a hash of the id). Writes go through the
//!   row mutex from any thread (immediate read-your-writes); reads
//!   briefly lock the row and clone the epoch-stamped `Arc<Vec<u32>>`
//!   snapshot — exactly the [`Flow`] discipline of the single-threaded
//!   store. Ownership governs the *scheduling* state: the owner holds
//!   the row's dependency list and is the one notified of growth;
//! * each row keeps its append-only delta log (ids in arrival order
//!   with epoch marks) next to the snapshot, serialized by the same
//!   lock, so [`crate::engine::EvalMode::SemiNaive`] keeps exact
//!   deltas without pinning configurations to store replicas;
//! * the mirrored `AtomicU64` row epoch gives the scheduler's epoch
//!   gate a lock-free read.
//!
//! The epoch race of a shared store — "I read the global counter, then
//! a row published growth stamped *below* my baseline" — is closed by
//! never using a global baseline: every read records the **row epoch
//! observed under the row lock**, and semi-naive baselines are those
//! per-row epochs. A snapshot and its epoch are taken under one lock,
//! so the delta since a recorded epoch is exactly what that snapshot
//! missed.

use super::pool::{ChunkVec, ConcurrentPool};
use crate::fabric::LockRecovered as _;
use crate::store::{AbsStore, Flow, Row, ValuePool};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Row-lock acquisitions slower than this are reported as
/// [`crate::telemetry::TraceEventKind::RowLockWait`] events (timed only
/// while tracing is enabled — the untraced hot path never reads the
/// clock).
pub(crate) const LOCK_WAIT_THRESHOLD_US: u64 = 100;

/// The owner-written interior of a row.
#[derive(Default)]
struct RowInner {
    ids: Option<Arc<Vec<u32>>>,
    epoch: u64,
    bound: bool,
    log: Vec<u32>,
    marks: Vec<(u64, u32)>,
    /// Delta queries reaching behind this epoch report snapshot loss
    /// (logs before it were trimmed).
    floor: u64,
}

/// One shared row: the mutex guards the snapshot + delta log (held only
/// for O(1) clones on reads, O(delta) on owner writes); the atomic
/// mirrors the row's last-growth epoch for lock-free gate checks.
#[derive(Default)]
pub(crate) struct RowSlot {
    epoch: AtomicU64,
    inner: Mutex<RowInner>,
}

/// A globally shared, address-sharded monotone store.
///
/// `A` is the machine's address type, `V` its value type; both intern
/// into process-global dense ids. See the module docs for the
/// representation and the ownership protocol.
pub struct SharedStore<A, V> {
    addrs: ConcurrentPool<A>,
    vals: ConcurrentPool<V>,
    rows: ChunkVec<RowSlot>,
    epoch: AtomicU64,
    /// Approximate bytes held by all rows' delta logs — the portion a
    /// trim reclaims. Grows on every growing join; reset by
    /// [`SharedStore::trim_delta_logs`].
    log_bytes: AtomicUsize,
    shards: usize,
}

impl<A, V> std::fmt::Debug for SharedStore<A, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStore")
            .field("addrs", &self.addrs.len())
            .field("vals", &self.vals.len())
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("shards", &self.shards)
            .finish()
    }
}

impl<A: Eq + Hash + Clone, V: Eq + Hash + Clone> SharedStore<A, V> {
    /// An empty store whose rows are partitioned across `shards`
    /// owners.
    pub fn new(shards: usize) -> Self {
        SharedStore {
            addrs: ConcurrentPool::new(),
            vals: ConcurrentPool::new(),
            rows: ChunkVec::new(),
            epoch: AtomicU64::new(0),
            log_bytes: AtomicUsize::new(0),
            shards: shards.max(1),
        }
    }

    /// The shard that owns (may write) the row of `addr_id` — a
    /// multiplicative hash of the id, so consecutively interned
    /// addresses spread across owners.
    pub fn owner(&self, addr_id: u32) -> usize {
        (addr_id.wrapping_mul(0x9E37_79B9) >> 16) as usize % self.shards
    }

    /// Number of shards (owners).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Interns `addr`, returning its global id.
    pub fn addr_id(&self, addr: &A) -> u32 {
        self.addrs.intern_ref(addr)
    }

    /// Interns `value`, returning its global id.
    pub fn val_id(&self, value: &V) -> u32 {
        self.vals.intern_ref(value)
    }

    /// Interns an owned `value` — one clone cheaper than
    /// [`SharedStore::val_id`] on first sight (the machines' hot
    /// construction path).
    pub fn val_id_owned(&self, value: V) -> u32 {
        self.vals.intern_owned(value)
    }

    /// The value with id `id` (lock-free).
    pub fn val(&self, id: u32) -> &V {
        self.vals.get(id)
    }

    /// The address with id `id` (lock-free).
    pub fn addr(&self, id: u32) -> &A {
        self.addrs.get(id)
    }

    /// Number of distinct interned addresses.
    pub fn addr_count(&self) -> usize {
        self.addrs.len()
    }

    /// The epoch at which the row of `addr_id` last grew (0 = never) —
    /// a lock-free atomic load, the epoch gate's fast path.
    pub fn addr_epoch(&self, addr_id: u32) -> u64 {
        self.rows
            .get(addr_id as usize)
            .map_or(0, |slot| slot.epoch.load(Ordering::Acquire))
    }

    /// The current snapshot of a row and the epoch it carries, taken
    /// consistently under one row lock. Missing rows are `⊥` at epoch 0.
    pub fn snapshot(&self, addr_id: u32) -> (Flow, u64) {
        match self.rows.get(addr_id as usize) {
            None => (Flow::empty(), 0),
            Some(slot) => {
                let inner = slot.inner.lock_recovered();
                let flow = match &inner.ids {
                    Some(arc) => Flow::Shared(Arc::clone(arc)),
                    None => Flow::empty(),
                };
                (flow, inner.epoch)
            }
        }
    }

    /// [`SharedStore::snapshot`] plus the delta since `since`, all under
    /// one row lock (so `new ⊆ all` is guaranteed).
    ///
    /// The third component is `None` when no exact delta is available —
    /// no baseline was supplied, or the logs covering the span were
    /// trimmed (snapshot loss) — and callers fall back to `new = all`.
    pub fn snapshot_with_delta(
        &self,
        addr_id: u32,
        since: Option<u64>,
    ) -> (Flow, u64, Option<Flow>) {
        let Some(slot) = self.rows.get(addr_id as usize) else {
            return (Flow::empty(), 0, None);
        };
        let inner = slot.inner.lock_recovered();
        let flow = match &inner.ids {
            Some(arc) => Flow::Shared(Arc::clone(arc)),
            None => Flow::empty(),
        };
        let delta = match since {
            None => None,
            Some(s) if s >= inner.epoch => Some(Flow::empty()),
            Some(s) if s < inner.floor => None,
            Some(s) => {
                let idx = inner.marks.partition_point(|&(e, _)| e <= s);
                let start = if idx == 0 {
                    0
                } else {
                    inner.marks[idx - 1].1 as usize
                };
                Some(Flow::from_ids(inner.log[start..].to_vec()))
            }
        };
        (flow, inner.epoch, delta)
    }

    /// Joins already-interned `new_ids` (sorted, unique) into the row of
    /// `addr_id`, appending the exact delta to `delta`. Returns `true`
    /// if the row grew.
    ///
    /// **Write-through from any thread**: the row mutex serializes
    /// writers, the epoch is minted under that lock (so the row's marks
    /// stay strictly increasing), and the joining worker gets immediate
    /// read-your-writes — successors evaluated right after their parent
    /// see the arguments it just bound, exactly like the replicated
    /// backend's local replica. What stays with the *owner* shard is
    /// the scheduling side: dependency lists and wakeups — writers ship
    /// the owner a grown-address notification, never the facts.
    pub fn join_row(&self, addr_id: u32, new_ids: &[u32], delta: &mut Vec<u32>) -> bool {
        debug_assert!(
            new_ids.windows(2).all(|w| w[0] < w[1]),
            "join_row needs sorted ids"
        );
        let slot = self.rows.get_or_alloc(addr_id as usize);
        let mut inner = slot.inner.lock_recovered();
        inner.bound = true;
        let delta_start = delta.len();
        match &inner.ids {
            None => delta.extend_from_slice(new_ids),
            Some(cur) => {
                let cur = cur.as_slice();
                let mut i = 0;
                for &id in new_ids {
                    while i < cur.len() && cur[i] < id {
                        i += 1;
                    }
                    if i >= cur.len() || cur[i] != id {
                        delta.push(id);
                    }
                }
            }
        }
        if delta.len() == delta_start {
            return false;
        }
        let added = &delta[delta_start..];
        let merged = match &inner.ids {
            None => added.to_vec(),
            Some(cur) => {
                let mut merged = Vec::with_capacity(cur.len() + added.len());
                let (mut i, mut j) = (0, 0);
                while i < cur.len() && j < added.len() {
                    if cur[i] < added[j] {
                        merged.push(cur[i]);
                        i += 1;
                    } else {
                        merged.push(added[j]);
                        j += 1;
                    }
                }
                merged.extend_from_slice(&cur[i..]);
                merged.extend_from_slice(&added[j..]);
                merged
            }
        };
        inner.ids = Some(Arc::new(merged));
        // The global counter orders growth events; the row's marks stay
        // strictly increasing because the fetch_add happens under this
        // row's lock.
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        inner.epoch = epoch;
        inner.log.extend_from_slice(&delta[delta_start..]);
        let end = u32::try_from(inner.log.len()).expect("delta log overflow");
        inner.marks.push((epoch, end));
        self.log_bytes.fetch_add(
            (delta.len() - delta_start) * std::mem::size_of::<u32>()
                + std::mem::size_of::<(u64, u32)>(),
            Ordering::AcqRel,
        );
        // Publish the epoch for lock-free gate checks *before* the lock
        // drops: a reader that sees the new epoch and then locks the
        // row is guaranteed at least this snapshot.
        slot.epoch.store(epoch, Ordering::Release);
        true
    }

    /// Approximate bytes currently held by delta logs across all rows
    /// — what [`SharedStore::trim_delta_logs`] would reclaim.
    pub fn delta_log_bytes(&self) -> usize {
        self.log_bytes.load(Ordering::Acquire)
    }

    /// Drops every row's delta log, reclaiming the memory. Safe from
    /// any thread (each row is trimmed under its own lock; ownership
    /// governs scheduling state, not log storage). Subsequent delta
    /// queries baselined before the trim report snapshot loss and
    /// degrade to full re-evaluation. Racing trims are idempotent;
    /// joins landing mid-trim at worst leave the byte counter slightly
    /// conservative.
    pub fn trim_delta_logs(&self) {
        self.log_bytes.store(0, Ordering::Release);
        for id in 0..self.addrs.len() {
            if let Some(slot) = self.rows.get(id) {
                let mut inner = slot.inner.lock_recovered();
                inner.log = Vec::new();
                inner.marks = Vec::new();
                inner.floor = inner.epoch;
            }
        }
    }

    /// Approximate resident bytes: pools, the row-slot table, flow
    /// snapshots, and delta logs. Same caveats as
    /// [`AbsStore::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>()
            + self.addrs.approx_bytes()
            + self.vals.approx_bytes()
            + self.rows.allocated_slots() * std::mem::size_of::<RowSlot>();
        for id in 0..self.addrs.len() {
            if let Some(slot) = self.rows.get(id) {
                let inner = slot.inner.lock_recovered();
                if let Some(ids) = &inner.ids {
                    bytes += ids.len() * std::mem::size_of::<u32>();
                }
                bytes += inner.log.capacity() * std::mem::size_of::<u32>()
                    + inner.marks.capacity() * std::mem::size_of::<(u64, u32)>();
            }
        }
        bytes
    }

    /// Converts the quiescent shared store into an ordinary
    /// [`AbsStore`] result — **no re-interning and no row union**: ids
    /// are global, so pools drain in id order and rows move over
    /// verbatim. `joins`/`value_joins` are the workers' summed
    /// counters.
    pub fn into_abs_store(self, joins: u64, value_joins: u64) -> AbsStore<A, V> {
        let n_addrs = self.addrs.len();
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut rows: Vec<Row> = Vec::with_capacity(n_addrs);
        let mut log_floor = 0u64;
        for id in 0..n_addrs {
            match self.rows.get(id) {
                None => rows.push(Row::default()),
                Some(slot) => {
                    let inner = std::mem::take(&mut *slot.inner.lock_recovered());
                    log_floor = log_floor.max(inner.floor);
                    rows.push(Row {
                        ids: inner.ids,
                        bound: inner.bound,
                        epoch: inner.epoch,
                        log: inner.log,
                        marks: inner.marks,
                    });
                }
            }
        }
        AbsStore::assemble(
            ValuePool::from_items(self.addrs.into_items()),
            ValuePool::from_items(self.vals.into_items()),
            rows,
            joins,
            value_joins,
            epoch,
            log_floor,
        )
    }
}

/// Scratch buffers a sharded worker recycles across evaluations.
#[derive(Debug, Default)]
pub(crate) struct ShardBufs {
    pub(crate) reads: Vec<(u32, u64)>,
    pub(crate) grew: Vec<u32>,
    pub(crate) delta: Vec<u32>,
    /// Over-threshold row-lock waits (µs) observed this evaluation —
    /// drained into the worker's trace ring after the step.
    pub(crate) lock_waits: Vec<u64>,
    /// Whether store accesses time their lock acquisitions (set from
    /// the worker's trace level; false keeps the clock off the hot
    /// path).
    pub(crate) time_locks: bool,
}

/// One evaluation's view of the [`SharedStore`], parameterized by the
/// evaluating shard:
///
/// * reads snapshot any row and record `(addr_id, observed epoch)` —
///   the per-row baselines of the *next* semi-naive evaluation;
/// * joins write through to the shared row immediately (so successors
///   evaluated next on this worker read their arguments, exactly as on
///   a replicated backend's local replica) and record the grown rows;
///   after the step the engine wakes local dependents and ships the
///   owners of foreign grown rows a growth *notification* — addresses,
///   never facts.
pub struct ShardView<'a, A, V> {
    store: &'a SharedStore<A, V>,
    shard: usize,
    /// The config's previous read set, sorted by address id — the
    /// per-row baselines. Empty on first visits and under full
    /// re-evaluation.
    prev_reads: &'a [(u32, u64)],
    baseline: bool,
    /// Seed mode: every worker seeds identically, so writes to foreign
    /// rows are skipped (their owner performs them) — each row is
    /// seeded exactly once, with no cross-worker traffic.
    drop_remote: bool,
    pub(crate) bufs: ShardBufs,
    pub(crate) joins: u64,
    pub(crate) value_joins: u64,
}

impl<A, V> std::fmt::Debug for ShardView<'_, A, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardView")
            .field("shard", &self.shard)
            .field("baseline", &self.baseline)
            .finish()
    }
}

impl<'a, A: Eq + Hash + Clone, V: Eq + Hash + Clone + Ord> ShardView<'a, A, V> {
    /// A view for one evaluation by `shard`. `prev_reads` must be
    /// sorted by address id; pass an empty slice (and `baseline =
    /// false`) for first visits and full re-evaluation.
    pub(crate) fn new(
        store: &'a SharedStore<A, V>,
        shard: usize,
        prev_reads: &'a [(u32, u64)],
        baseline: bool,
        drop_remote: bool,
        mut bufs: ShardBufs,
    ) -> Self {
        bufs.reads.clear();
        bufs.grew.clear();
        ShardView {
            store,
            shard,
            prev_reads,
            baseline,
            drop_remote,
            bufs,
            joins: 0,
            value_joins: 0,
        }
    }

    /// Records a finished (timed) lock-guarded store access, keeping
    /// only waits past the reporting threshold.
    fn note_lock_wait(&mut self, timer: Option<Instant>) {
        if let Some(t) = timer {
            let us = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
            if us >= LOCK_WAIT_THRESHOLD_US {
                self.bufs.lock_waits.push(us);
            }
        }
    }

    pub(crate) fn read(&mut self, addr: &A) -> Flow {
        let id = self.store.addr_id(addr);
        let timer = self.bufs.time_locks.then(Instant::now);
        let (flow, epoch) = self.store.snapshot(id);
        self.note_lock_wait(timer);
        self.bufs.reads.push((id, epoch));
        flow
    }

    pub(crate) fn read_with_delta(&mut self, addr: &A) -> crate::engine::DeltaFlow {
        let id = self.store.addr_id(addr);
        let since = if self.baseline {
            self.prev_reads
                .binary_search_by_key(&id, |&(a, _)| a)
                .ok()
                .map(|i| self.prev_reads[i].1)
        } else {
            None
        };
        let timer = self.bufs.time_locks.then(Instant::now);
        let (all, epoch, delta) = self.store.snapshot_with_delta(id, since);
        self.note_lock_wait(timer);
        self.bufs.reads.push((id, epoch));
        let new = delta.unwrap_or_else(|| all.clone());
        crate::engine::DeltaFlow { all, new }
    }

    pub(crate) fn first_visit(&self) -> bool {
        !self.baseline
    }

    /// Joins sorted-unique `ids` into `addr`'s row, write-through,
    /// returning the exact fact delta. Grown rows are recorded; the
    /// engine notifies foreign owners after the step. Empty joins still
    /// bind the address (the store-entry metric counts ⊥-bound rows).
    pub(crate) fn join_ids(&mut self, addr: &A, ids: &[u32]) -> u64 {
        let addr_id = self.store.addr_id(addr);
        if self.drop_remote && self.store.owner(addr_id) != self.shard {
            return 0;
        }
        self.joins += 1;
        self.value_joins += ids.len() as u64;
        let timer = self.bufs.time_locks.then(Instant::now);
        self.bufs.delta.clear();
        let delta = &mut self.bufs.delta;
        let grew = self.store.join_row(addr_id, ids, delta);
        let delta_len = delta.len() as u64;
        self.note_lock_wait(timer);
        if grew {
            self.bufs.grew.push(addr_id);
            return delta_len;
        }
        0
    }

    pub(crate) fn intern(&mut self, value: V) -> u32 {
        self.store.val_id_owned(value)
    }

    pub(crate) fn val(&self, id: u32) -> &V {
        self.store.val(id)
    }

    pub(crate) fn materialize(&self, flow: &Flow) -> crate::store::FlowSet<V>
    where
        V: Ord,
    {
        flow.iter().map(|id| self.store.val(id).clone()).collect()
    }

    pub(crate) fn peek(&self, addr: &A) -> Flow {
        let id = self.store.addr_id(addr);
        self.store.snapshot(id).0
    }

    /// Hands the scratch buffers (with this eval's reads, grown owned
    /// rows, and routed batches) back to the worker.
    pub(crate) fn into_bufs(self) -> (ShardBufs, u64, u64) {
        (self.bufs, self.joins, self.value_joins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn join_row_reports_exact_deltas_and_epochs() {
        let s: SharedStore<u32, u32> = SharedStore::new(1);
        let a = s.addr_id(&7);
        let (v1, v2, v3) = (s.val_id(&10), s.val_id(&20), s.val_id(&30));
        let mut delta = Vec::new();
        assert!(s.join_row(a, &sorted(vec![v1, v2]), &mut delta));
        assert_eq!(delta.len(), 2);
        let e1 = s.addr_epoch(a);
        assert!(e1 > 0);
        delta.clear();
        assert!(!s.join_row(a, &sorted(vec![v1]), &mut delta), "no-op");
        assert_eq!(s.addr_epoch(a), e1, "no-op keeps the epoch");
        delta.clear();
        assert!(s.join_row(a, &sorted(vec![v2, v3]), &mut delta));
        assert_eq!(delta, vec![v3], "only the new id is a delta");
        assert!(s.addr_epoch(a) > e1);
    }

    #[test]
    fn snapshots_are_epoch_consistent_and_immutable() {
        let s: SharedStore<u32, u32> = SharedStore::new(2);
        let a = s.addr_id(&1);
        let mut delta = Vec::new();
        s.join_row(a, &sorted(vec![s.val_id(&10), s.val_id(&20)]), &mut delta);
        let (before, e_before) = s.snapshot(a);
        delta.clear();
        s.join_row(a, &sorted(vec![s.val_id(&30)]), &mut delta);
        let (after, e_after) = s.snapshot(a);
        assert_eq!(before.len(), 2, "old snapshot untouched by copy-on-grow");
        assert_eq!(after.len(), 3);
        assert!(e_after > e_before);
        assert_eq!(e_after, s.addr_epoch(a), "atomic mirror agrees");
    }

    #[test]
    fn snapshot_with_delta_is_exact_per_row_baseline() {
        let s: SharedStore<u32, u32> = SharedStore::new(2);
        let a = s.addr_id(&1);
        let mut delta = Vec::new();
        s.join_row(a, &sorted(vec![s.val_id(&1), s.val_id(&2)]), &mut delta);
        let (_, e1) = s.snapshot(a);
        delta.clear();
        s.join_row(a, &sorted(vec![s.val_id(&3)]), &mut delta);
        delta.clear();
        s.join_row(a, &sorted(vec![s.val_id(&4)]), &mut delta);
        let (all, _, new) = s.snapshot_with_delta(a, Some(e1));
        assert_eq!(all.len(), 4);
        let new: BTreeSet<u32> = new
            .expect("exact delta")
            .iter()
            .map(|id| *s.val(id))
            .collect();
        assert_eq!(new, [3u32, 4].into_iter().collect(), "both waves visible");
        // Baseline at the current epoch: empty delta.
        let (_, e_now, new_now) = s.snapshot_with_delta(a, Some(s.addr_epoch(a)));
        assert_eq!(e_now, s.addr_epoch(a));
        assert!(new_now.expect("empty delta").is_empty());
        // No baseline: no exact delta.
        assert!(s.snapshot_with_delta(a, None).2.is_none());
    }

    #[test]
    fn trim_reports_snapshot_loss_then_resumes() {
        let s: SharedStore<u32, u32> = SharedStore::new(1);
        let a = s.addr_id(&1);
        let mut delta = Vec::new();
        s.join_row(a, &sorted(vec![s.val_id(&10)]), &mut delta);
        let pre_trim = s.addr_epoch(a);
        s.trim_delta_logs();
        assert!(
            s.snapshot_with_delta(a, Some(0)).2.is_none(),
            "behind-the-trim baselines are unanswerable"
        );
        assert!(
            s.snapshot_with_delta(a, Some(pre_trim))
                .2
                .expect("kept")
                .is_empty(),
            "at-the-trim baselines keep working"
        );
        delta.clear();
        s.join_row(a, &sorted(vec![s.val_id(&11)]), &mut delta);
        let post = s.snapshot_with_delta(a, Some(pre_trim)).2.expect("resumed");
        assert_eq!(post.len(), 1);
    }

    #[test]
    fn into_abs_store_preserves_every_fact_without_reinterning() {
        let s: SharedStore<u32, u32> = SharedStore::new(3);
        let mut delta = Vec::new();
        for (addr, vals) in [(1u32, vec![10u32, 20]), (2, vec![20]), (3, vec![])] {
            let a = s.addr_id(&addr);
            let ids = sorted(vals.iter().map(|v| s.val_id(v)).collect());
            delta.clear();
            s.join_row(a, &ids, &mut delta);
        }
        let abs = s.into_abs_store(3, 3);
        assert_eq!(abs.read(&1), [10u32, 20].into_iter().collect());
        assert_eq!(abs.read(&2), [20u32].into_iter().collect());
        assert!(abs.read(&3).is_empty());
        assert_eq!(abs.len(), 3, "bound-⊥ row 3 stays bound");
        assert_eq!(abs.fact_count(), 3);
        assert_eq!(abs.join_count(), 3);
    }

    #[test]
    fn owner_partition_is_total_and_stable() {
        let s: SharedStore<u32, u32> = SharedStore::new(4);
        let mut per_shard = [0usize; 4];
        for id in 0..1000u32 {
            let o = s.owner(id);
            assert!(o < 4);
            assert_eq!(o, s.owner(id), "stable");
            per_shard[o] += 1;
        }
        assert!(
            per_shard.iter().all(|&n| n > 100),
            "hash partition is roughly balanced: {per_shard:?}"
        );
    }
}

//! A globally-shared, **address-sharded** store backend for the
//! parallel fixpoint engine.
//!
//! The replicated backend ([`crate::parallel`]) scales by full
//! per-worker store copies with all-to-all value-level fact broadcast:
//! every replica re-interns and re-joins every fact, so memory and
//! merge work grow linearly with the thread count. This module is the
//! alternative the concurrent-abstract-interpretation literature
//! licenses: the store is a single join-semilattice that workers race
//! on monotonically, so it can simply be *shared* —
//!
//! * `pool` — a global concurrent interner (sharded index, chunked
//!   append-only slots, lock-free `get`). Ids are process-global; a
//!   fact is interned once, ever;
//! * [`store`] — [`SharedStore`]: rows partitioned by address-id hash
//!   into one *owner* shard per worker. Writes go through the shared
//!   row (mutex-serialized, immediate read-your-writes); anyone reads
//!   via epoch-stamped `Arc<Vec<u32>>` snapshots (the same
//!   [`crate::store::Flow`] discipline as the single-threaded store);
//!   per-row delta logs live next to the snapshot so semi-naive
//!   evaluation keeps exact deltas;
//! * [`engine`] — [`run_fixpoint_sharded`]: the worker loop, with
//!   growth notifications and dependency registrations routed to row
//!   owners (who alone hold dependency lists), wakeups point-to-point
//!   instead of broadcast, the same pending-counter termination
//!   protocol as the replicated engine, and a result assembly that
//!   just drains the shared store (no `merge_from` union).
//!
//! Select between backends through
//! [`crate::parallel::StoreBackend`] ([`crate::parallel::Replicated`]
//! vs [`crate::parallel::Sharded`]).

pub mod engine;
pub(crate) mod pool;
pub mod store;

pub use engine::{run_fixpoint_sharded, run_fixpoint_sharded_with};
pub use store::{ShardView, SharedStore};

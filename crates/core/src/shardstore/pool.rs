//! Concurrent append-only building blocks for the shared store: a
//! chunked slot vector with lock-free indexed reads, and a sharded
//! global interner built on it.
//!
//! Both structures are strictly append-only — nothing is ever moved or
//! freed during a run — which is what makes the lock-free read side
//! sound: a published index refers to a slot whose location never
//! changes and whose contents were written exactly once before the
//! index escaped.

use crate::fxhash::{FxHashMap, FxHasher};
use std::cell::UnsafeCell;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::Mutex;

/// Number of doubling buckets. Bucket `b` holds `BASE << b` slots, so
/// 27 buckets cover `64 * (2^27 - 1)` ≈ 8.6 billion slots — strictly
/// more than the whole `u32` id space, so the interner's
/// `id < u32::MAX` overflow assert fires before any bucket index can
/// go out of range.
const NBUCKETS: usize = 27;

/// Capacity of bucket 0.
const BASE: usize = 64;

/// `(bucket, offset)` of slot `i`.
#[inline]
fn locate(i: usize) -> (usize, usize) {
    let q = i / BASE + 1;
    let b = (usize::BITS - 1 - q.leading_zeros()) as usize;
    (b, i - BASE * ((1usize << b) - 1))
}

/// Capacity of bucket `b`.
#[inline]
fn bucket_cap(b: usize) -> usize {
    BASE << b
}

/// A chunked, append-only slot vector: indexed reads are lock-free
/// (one atomic pointer load), growth allocates a doubling bucket and
/// publishes it with a CAS, and **slots never move** once their bucket
/// exists — handed-out references stay valid for the vector's lifetime.
pub(crate) struct ChunkVec<T> {
    buckets: [AtomicPtr<T>; NBUCKETS],
    _marker: PhantomData<T>,
}

impl<T: Default> ChunkVec<T> {
    pub(crate) fn new() -> Self {
        ChunkVec {
            buckets: [(); NBUCKETS].map(|()| AtomicPtr::new(std::ptr::null_mut())),
            _marker: PhantomData,
        }
    }

    /// The slot at `i`, if its bucket has been allocated. A `None` means
    /// nothing was ever written at or beyond `i`'s bucket.
    pub(crate) fn get(&self, i: usize) -> Option<&T> {
        let (b, off) = locate(i);
        let p = self.buckets[b].load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // Safety: the bucket was fully default-initialized before
            // its pointer was published, and buckets are never freed
            // while `self` lives.
            Some(unsafe { &*p.add(off) })
        }
    }

    /// The slot at `i`, allocating (default-filled) its bucket first if
    /// needed. Raced allocations are resolved by CAS; the loser frees
    /// its bucket.
    pub(crate) fn get_or_alloc(&self, i: usize) -> &T {
        let (b, off) = locate(i);
        let mut p = self.buckets[b].load(Ordering::Acquire);
        if p.is_null() {
            let fresh: Box<[T]> = (0..bucket_cap(b)).map(|_| T::default()).collect();
            let raw = Box::into_raw(fresh) as *mut T;
            match self.buckets[b].compare_exchange(
                std::ptr::null_mut(),
                raw,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => p = raw,
                Err(existing) => {
                    // Safety: `raw` came from `Box::into_raw` above and
                    // was never published.
                    unsafe {
                        drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                            raw,
                            bucket_cap(b),
                        )));
                    }
                    p = existing;
                }
            }
        }
        // Safety: as in `get`.
        unsafe { &*p.add(off) }
    }

    /// Total slots in currently allocated buckets (an upper bound on
    /// live entries; used for byte accounting).
    pub(crate) fn allocated_slots(&self) -> usize {
        (0..NBUCKETS)
            .filter(|&b| !self.buckets[b].load(Ordering::Acquire).is_null())
            .map(bucket_cap)
            .sum()
    }
}

impl<T> Drop for ChunkVec<T> {
    fn drop(&mut self) {
        for b in 0..NBUCKETS {
            let p = *self.buckets[b].get_mut();
            if !p.is_null() {
                // Safety: the pointer was produced by `Box::into_raw` of
                // a `Box<[T]>` with exactly `bucket_cap(b)` elements.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        p,
                        bucket_cap(b),
                    )));
                }
            }
        }
    }
}

/// One interner slot: written exactly once — by the thread that
/// allocated its id, inside the owning shard's critical section, before
/// the id is published — and read only through ids that crossed a
/// synchronizing channel (a row mutex, an inbox mutex, or a
/// release/acquire epoch store) after that write. Distinct slots never
/// alias, so concurrent access to *different* slots is always fine.
pub(crate) struct PoolSlot<T>(UnsafeCell<Option<T>>);

impl<T> Default for PoolSlot<T> {
    fn default() -> Self {
        PoolSlot(UnsafeCell::new(None))
    }
}

// Safety: see the `PoolSlot` docs — the write-once-before-publication
// protocol makes cross-thread reads race-free.
unsafe impl<T: Send> Send for PoolSlot<T> {}
unsafe impl<T: Send + Sync> Sync for PoolSlot<T> {}

/// Number of index shards in a [`ConcurrentPool`] — well above any sane
/// worker count, so intern contention stays negligible.
const POOL_SHARDS: usize = 16;

/// A global concurrent interner: items of type `T` map to dense,
/// **process-global** `u32` ids.
///
/// The id is the fact's identity everywhere — in flow snapshots, in
/// routed join messages, in the final store — so a value interned by
/// one worker is *never re-interned* by another (the replicated
/// backend's broadcast re-interns every fact per replica; killing that
/// is the point of this type).
///
/// Interning takes one shard mutex (sharded by item hash); `get` is
/// lock-free (one atomic load + slot deref). Ids are dense: a single
/// atomic counter allocates them in first-intern order across shards.
pub(crate) struct ConcurrentPool<T> {
    index: Vec<Mutex<FxHashMap<T, u32>>>,
    slots: ChunkVec<PoolSlot<T>>,
    next: AtomicU32,
}

impl<T> ConcurrentPool<T> {
    /// Number of interned items.
    pub(crate) fn len(&self) -> usize {
        self.next.load(Ordering::Acquire) as usize
    }
}

impl<T: Eq + Hash + Clone> ConcurrentPool<T> {
    pub(crate) fn new() -> Self {
        ConcurrentPool {
            index: (0..POOL_SHARDS).map(|_| Mutex::default()).collect(),
            slots: ChunkVec::new(),
            next: AtomicU32::new(0),
        }
    }

    /// High hash bits pick the shard (the map's buckets use the low
    /// bits of the same hash).
    fn shard_of(item: &T) -> usize {
        let mut h = FxHasher::default();
        item.hash(&mut h);
        (h.finish() >> 57) as usize % POOL_SHARDS
    }

    /// Interns an owned `item`, returning its global id. On first
    /// sight this clones once (slot + index key both need a copy, and
    /// the caller's copy moves into the index); on a hit it is
    /// clone-free.
    pub(crate) fn intern_owned(&self, item: T) -> u32 {
        let mut map = self.index[Self::shard_of(&item)]
            .lock()
            .expect("pool shard");
        if let Some(&id) = map.get(&item) {
            return id;
        }
        let id = self.next.fetch_add(1, Ordering::AcqRel);
        assert!(id < u32::MAX, "pool overflow");
        let slot = self.slots.get_or_alloc(id as usize);
        // Safety: we own slot `id` exclusively — the id was minted one
        // line up and has not escaped this critical section yet.
        unsafe { *slot.0.get() = Some(item.clone()) };
        map.insert(item, id);
        id
    }

    /// Interns `item` by reference, returning its global id; on first
    /// sight the borrowed item is cloned for both the slot and the
    /// index key (owning callers should use
    /// [`ConcurrentPool::intern_owned`], which saves one clone).
    pub(crate) fn intern_ref(&self, item: &T) -> u32 {
        let mut map = self.index[Self::shard_of(item)].lock().expect("pool shard");
        if let Some(&id) = map.get(item) {
            return id;
        }
        let id = self.next.fetch_add(1, Ordering::AcqRel);
        assert!(id < u32::MAX, "pool overflow");
        let slot = self.slots.get_or_alloc(id as usize);
        // Safety: we own slot `id` exclusively — the id was minted one
        // line up and has not escaped this critical section yet.
        unsafe { *slot.0.get() = Some(item.clone()) };
        map.insert(item.clone(), id);
        id
    }

    /// The item with id `id`. Lock-free.
    ///
    /// # Panics
    ///
    /// Panics on an id that was never published — callers only pass ids
    /// obtained from interning or from published flow snapshots.
    pub(crate) fn get(&self, id: u32) -> &T {
        let slot = self.slots.get(id as usize).expect("interned id in range");
        // Safety: the id was published after its slot write (PoolSlot
        // protocol), so the Option is Some and fully initialized.
        unsafe { (*slot.0.get()).as_ref().expect("published pool id") }
    }

    /// Drains the pool into a plain `Vec` in id order — the quiescent
    /// hand-off into the result store's [`crate::store::ValuePool`].
    pub(crate) fn into_items(mut self) -> Vec<T> {
        let n = *self.next.get_mut() as usize;
        (0..n)
            .map(|i| {
                let slot = self.slots.get(i).expect("allocated slot");
                // Safety: `&mut self` — no concurrent access remains.
                unsafe { (*slot.0.get()).take().expect("initialized slot") }
            })
            .collect()
    }

    /// Approximate resident bytes (allocated slot buckets + index maps;
    /// heap inside items is not chased).
    pub(crate) fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<T>() + std::mem::size_of::<(u32, u64)>();
        self.slots.allocated_slots() * std::mem::size_of::<PoolSlot<T>>()
            + self
                .index
                .iter()
                .map(|m| m.lock().expect("pool shard").capacity() * entry)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn locate_covers_the_id_space_contiguously() {
        let mut expect = 0usize;
        for b in 0..8 {
            for off in 0..bucket_cap(b) {
                assert_eq!(locate(expect), (b, off), "slot {expect}");
                expect += 1;
            }
        }
    }

    #[test]
    fn chunkvec_slots_are_stable_and_default_initialized() {
        let v: ChunkVec<PoolSlot<u64>> = ChunkVec::new();
        assert!(v.get(0).is_none(), "no bucket before first alloc");
        let s0 = v.get_or_alloc(0) as *const _;
        let s1000 = v.get_or_alloc(1000) as *const _;
        // Re-fetching yields the same slot addresses.
        assert_eq!(v.get(0).unwrap() as *const _, s0);
        assert_eq!(v.get(1000).unwrap() as *const _, s1000);
    }

    #[test]
    fn pool_ids_are_dense_and_stable() {
        let pool: ConcurrentPool<String> = ConcurrentPool::new();
        let a = pool.intern_ref(&"a".to_owned());
        let b = pool.intern_ref(&"b".to_owned());
        assert_eq!(pool.intern_ref(&"a".to_owned()), a, "re-intern is a hit");
        assert_eq!((a.min(b), a.max(b)), (0, 1), "ids are dense");
        assert_eq!(pool.get(a), "a");
        assert_eq!(pool.get(b), "b");
        assert_eq!(pool.len(), 2);
        let items = pool.into_items();
        assert_eq!(items[a as usize], "a");
        assert_eq!(items[b as usize], "b");
    }

    #[test]
    fn concurrent_interning_agrees_on_one_id_per_item() {
        let pool: Arc<ConcurrentPool<u64>> = Arc::new(ConcurrentPool::new());
        let n_threads = 4;
        let per_thread = 2000u64;
        let ids: Vec<Vec<u32>> = std::thread::scope(|scope| {
            (0..n_threads)
                .map(|t| {
                    let pool = Arc::clone(&pool);
                    scope.spawn(move || {
                        // Overlapping ranges: every item is interned by
                        // at least two threads.
                        (0..per_thread)
                            .map(|i| pool.intern_ref(&(i + (t as u64 % 2) * per_thread / 2)))
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("interner thread"))
                .collect()
        });
        // Every thread resolved every item to the same id.
        for (t, thread_ids) in ids.iter().enumerate() {
            for (i, &id) in thread_ids.iter().enumerate() {
                let item = i as u64 + (t as u64 % 2) * per_thread / 2;
                assert_eq!(*pool.get(id), item, "thread {t} item {item}");
            }
        }
        // Dense: len equals the number of distinct items.
        let distinct = (per_thread + per_thread / 2) as usize;
        assert_eq!(pool.len(), distinct);
        let items = Arc::try_unwrap(pool).ok().expect("sole owner").into_items();
        assert_eq!(items.len(), distinct);
    }
}

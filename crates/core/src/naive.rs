//! Naive k-CFA: reachable-states search with per-state stores (§3.6),
//! with ΓCFA extensions (abstract GC and abstract counting).
//!
//! This is k-CFA computed exactly as the abstract transition relation
//! defines it: the system space is a *set of whole states*, each carrying
//! its own store. The paper notes this is "deeply exponential, rather
//! than the expected cubic time", even for k = 0 — the single-threaded
//! store of §3.7 ([`crate::kcfa`]) is the practical algorithm. This
//! module exists to make that comparison measurable (experiment E6), and
//! to host the per-state machinery the paper's §8 builds on: abstract
//! garbage collection ([`crate::gc`], toggled by
//! [`GammaOptions::abstract_gc`]) and abstract counting
//! ([`GammaOptions::counting`]), whose μ̂ maps record which abstract
//! addresses are *singular* (stand for at most one concrete address —
//! the precondition for must-alias reasoning and strong updates).

use crate::domain::{AVal, AbsBasic, CallString};
use crate::engine::Status;
use crate::kcfa::{render_val, AddrK, BEnvK, ValK};
use crate::prim::{classify, PrimSpec};
use crate::store::FlowSet;
use cfa_concrete::base::Slot;
use cfa_syntax::cps::{AExp, CallId, CallKind, CpsProgram};
use cfa_syntax::intern::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// A per-state abstract store (immutable, structurally compared).
pub type NaiveStore = Rc<BTreeMap<AddrK, FlowSet<ValK>>>;

/// An abstract cardinality: how many concrete addresses an abstract
/// address may stand for (ΓCFA's abstract counting, saturating at ∞).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Count {
    /// At most one concrete address — must-alias reasoning is licensed.
    One,
    /// Possibly several concrete addresses.
    Many,
}

impl Count {
    /// The count after one more allocation hits the same address.
    pub fn bump(self) -> Count {
        Count::Many
    }
}

/// A per-state cardinality map μ̂ (empty unless counting is enabled).
pub type CountMap = Rc<BTreeMap<AddrK, Count>>;

/// Evidence gathered at one call site for the super-β inlining client
/// (ΓCFA's original motivation): which λs were applied here, and
/// whether every application's closure captured only *singular*
/// addresses. A site is environment-safe to inline when exactly one λ
/// arrives and its captures were always singular — a plural capture
/// means two different bindings may share the abstract address, so
/// substituting the body could conflate them.
#[derive(Clone, Debug)]
pub struct SiteEvidence {
    /// λ-terms applied at this site.
    pub lams: BTreeSet<cfa_syntax::cps::LamId>,
    /// Every application so far captured only singular addresses.
    pub captures_singular: bool,
}

/// A whole abstract state `(call, β̂, σ̂, t̂)` (plus μ̂ when counting).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NaiveState {
    /// Current call site.
    pub call: CallId,
    /// Current binding environment.
    pub benv: BEnvK,
    /// This state's own store.
    pub store: NaiveStore,
    /// Current abstract time.
    pub time: CallString,
    /// Abstract counts (empty unless counting is enabled).
    pub counts: CountMap,
}

/// Limits for the naive search.
#[derive(Copy, Clone, Debug)]
pub struct NaiveLimits {
    /// Maximum number of distinct states to explore.
    pub max_states: usize,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
}

impl Default for NaiveLimits {
    fn default() -> Self {
        NaiveLimits {
            max_states: 1_000_000,
            time_budget: None,
        }
    }
}

/// Result of the naive reachable-states computation.
#[derive(Debug)]
pub struct NaiveResult {
    /// Number of distinct states reached.
    pub state_count: usize,
    /// Completion status.
    pub status: Status,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Rendered values reaching `%halt` in any state.
    pub halt_values: BTreeSet<String>,
    /// Aggregated counts per address (empty unless counting was on).
    pub counts: BTreeMap<AddrK, Count>,
    /// Per-site super-β evidence (λs applied; captures singular).
    pub site_evidence: BTreeMap<CallId, SiteEvidence>,
}

impl NaiveResult {
    /// Addresses whose aggregated count stayed [`Count::One`].
    pub fn singular_addrs(&self) -> usize {
        self.counts.values().filter(|&&c| c == Count::One).count()
    }

    /// Fraction of counted addresses that remained singular.
    pub fn singular_ratio(&self) -> f64 {
        if self.counts.is_empty() {
            1.0
        } else {
            self.singular_addrs() as f64 / self.counts.len() as f64
        }
    }

    /// User call sites that are super-β inlinable: exactly one λ ever
    /// arrives and every application captured only singular addresses.
    /// Meaningful only when the search ran with
    /// [`GammaOptions::counting`]; without counting no site qualifies.
    pub fn super_beta_sites(&self, program: &CpsProgram) -> BTreeSet<CallId> {
        self.site_evidence
            .iter()
            .filter(|(&site, ev)| {
                program.is_user_call(site) && ev.lams.len() == 1 && ev.captures_singular
            })
            .map(|(&site, _)| site)
            .collect()
    }
}

/// Configuration for the naive search's ΓCFA extensions.
#[derive(Copy, Clone, Debug, Default)]
pub struct GammaOptions {
    /// Apply abstract garbage collection to every successor.
    pub abstract_gc: bool,
    /// Track abstract counts (μ̂) per state.
    pub counting: bool,
}

fn read(store: &NaiveStore, addr: &AddrK) -> FlowSet<ValK> {
    store.get(addr).cloned().unwrap_or_default()
}

/// Joins `entries` into `store`; when `counting`, bumps μ̂ for re-bound
/// addresses.
fn join(
    store: &NaiveStore,
    counts: &CountMap,
    counting: bool,
    entries: Vec<(AddrK, FlowSet<ValK>)>,
) -> (NaiveStore, CountMap) {
    if entries.is_empty() {
        return (store.clone(), counts.clone());
    }
    let mut next = (**store).clone();
    let mut next_counts = if counting {
        (**counts).clone()
    } else {
        BTreeMap::new()
    };
    for (addr, values) in entries {
        if counting {
            next_counts
                .entry(addr.clone())
                .and_modify(|c| *c = c.bump())
                .or_insert(Count::One);
        }
        next.entry(addr).or_default().extend(values);
    }
    (Rc::new(next), Rc::new(next_counts))
}

fn eval(program: &CpsProgram, e: &AExp, benv: &BEnvK, store: &NaiveStore) -> FlowSet<ValK> {
    match e {
        AExp::Lit(l) => std::iter::once(AVal::Basic(AbsBasic::from_lit(*l))).collect(),
        AExp::Var(v) => benv.get(*v).map(|a| read(store, a)).unwrap_or_default(),
        AExp::Lam(l) => {
            let captured = benv.restrict(program.free_vars(*l));
            std::iter::once(AVal::Clo {
                lam: *l,
                env: captured,
            })
            .collect()
        }
    }
}

/// Expands one state into its successors.
fn successors(
    program: &CpsProgram,
    k: usize,
    counting: bool,
    state: &NaiveState,
    halts: &mut BTreeSet<ValK>,
    evidence: &mut BTreeMap<CallId, SiteEvidence>,
) -> Vec<NaiveState> {
    let call_data = program.call(state.call);
    let mut out = Vec::new();
    let site = state.call;

    let apply = |fset: &FlowSet<ValK>,
                 args: &[FlowSet<ValK>],
                 t_new: &CallString,
                 store: &NaiveStore,
                 counts: &CountMap,
                 evidence: &mut BTreeMap<CallId, SiteEvidence>,
                 out: &mut Vec<NaiveState>| {
        for f in fset {
            let AVal::Clo { lam, env } = f else { continue };
            // Record super-β evidence: the applied λ, and whether its
            // captured addresses are all singular in this state's μ̂.
            let singular = counting
                && env
                    .iter()
                    .all(|(_, addr)| counts.get(addr).copied().unwrap_or(Count::One) == Count::One);
            let entry = evidence.entry(site).or_insert(SiteEvidence {
                lams: BTreeSet::new(),
                captures_singular: true,
            });
            entry.lams.insert(*lam);
            entry.captures_singular &= singular;
            let lam_data = program.lam(*lam);
            if lam_data.params.len() != args.len() {
                continue;
            }
            let bindings: Vec<(Symbol, AddrK)> = lam_data
                .params
                .iter()
                .map(|&p| {
                    (
                        p,
                        AddrK {
                            slot: Slot::Var(p),
                            time: t_new.clone(),
                        },
                    )
                })
                .collect();
            let entries: Vec<(AddrK, FlowSet<ValK>)> = bindings
                .iter()
                .zip(args)
                .map(|((_, a), vs)| (a.clone(), vs.clone()))
                .collect();
            let (next_store, next_counts) = join(store, counts, counting, entries);
            let extended = env.extend(bindings);
            out.push(NaiveState {
                call: lam_data.body,
                benv: extended,
                store: next_store,
                time: t_new.clone(),
                counts: next_counts,
            });
        }
    };

    match &call_data.kind {
        CallKind::App { func, args } => {
            let fset = eval(program, func, &state.benv, &state.store);
            let arg_sets: Vec<FlowSet<ValK>> = args
                .iter()
                .map(|a| eval(program, a, &state.benv, &state.store))
                .collect();
            let t_new = state.time.push(call_data.label, k);
            apply(
                &fset,
                &arg_sets,
                &t_new,
                &state.store,
                &state.counts,
                evidence,
                &mut out,
            );
        }
        CallKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let cset = eval(program, cond, &state.benv, &state.store);
            if cset.iter().any(AVal::maybe_truthy) {
                out.push(NaiveState {
                    call: *then_branch,
                    ..state.clone()
                });
            }
            if cset.iter().any(AVal::maybe_falsy) {
                out.push(NaiveState {
                    call: *else_branch,
                    ..state.clone()
                });
            }
        }
        CallKind::PrimCall { op, args, cont } => {
            let arg_sets: Vec<FlowSet<ValK>> = args
                .iter()
                .map(|a| eval(program, a, &state.benv, &state.store))
                .collect();
            let kset = eval(program, cont, &state.benv, &state.store);
            let t_new = state.time.push(call_data.label, k);
            let mut results: FlowSet<ValK> = FlowSet::new();
            let mut store = state.store.clone();
            let mut counts = state.counts.clone();
            match classify(*op) {
                PrimSpec::Abort => return out,
                PrimSpec::Basics(bs) => results.extend(bs.iter().map(|b| AVal::Basic(*b))),
                PrimSpec::AllocPair => {
                    let car = AddrK {
                        slot: Slot::Car(call_data.label),
                        time: t_new.clone(),
                    };
                    let cdr = AddrK {
                        slot: Slot::Cdr(call_data.label),
                        time: t_new.clone(),
                    };
                    let mut entries = Vec::new();
                    if let Some(vals) = arg_sets.first() {
                        entries.push((car.clone(), vals.clone()));
                    }
                    if let Some(vals) = arg_sets.get(1) {
                        entries.push((cdr.clone(), vals.clone()));
                    }
                    (store, counts) = join(&store, &counts, counting, entries);
                    results.insert(AVal::Pair { car, cdr });
                }
                PrimSpec::ReadCar | PrimSpec::ReadCdr => {
                    let want_car = classify(*op) == PrimSpec::ReadCar;
                    if let Some(vals) = arg_sets.first() {
                        for v in vals {
                            if let AVal::Pair { car, cdr } = v {
                                let addr = if want_car { car } else { cdr };
                                results.extend(read(&store, addr));
                            }
                        }
                    }
                }
                PrimSpec::AllocAtom => {
                    let cell = AddrK {
                        slot: Slot::Atom(call_data.label),
                        time: t_new.clone(),
                    };
                    let mut entries = Vec::new();
                    if let Some(vals) = arg_sets.first() {
                        entries.push((cell.clone(), vals.clone()));
                    }
                    (store, counts) = join(&store, &counts, counting, entries);
                    results.insert(AVal::Atom { cell });
                }
                PrimSpec::ReadAtom => {
                    if let Some(vals) = arg_sets.first() {
                        for v in vals {
                            if let AVal::Atom { cell } = v {
                                results.extend(read(&store, cell));
                            }
                        }
                    }
                }
                PrimSpec::WriteAtom => {
                    // Monotone store: a write joins into every possible
                    // cell; the expression's value is the new contents.
                    if let (Some(atoms), Some(vals)) = (arg_sets.first(), arg_sets.get(1)) {
                        let entries: Vec<(AddrK, FlowSet<ValK>)> = atoms
                            .iter()
                            .filter_map(|v| match v {
                                AVal::Atom { cell } => Some((cell.clone(), vals.clone())),
                                _ => None,
                            })
                            .collect();
                        (store, counts) = join(&store, &counts, counting, entries);
                        results.extend(vals.iter().cloned());
                    }
                }
                PrimSpec::CasAtom => {
                    // cas! may or may not succeed abstractly: join the
                    // replacement into the cell, answer boolean ⊤.
                    if let (Some(atoms), Some(vals)) = (arg_sets.first(), arg_sets.get(2)) {
                        let entries: Vec<(AddrK, FlowSet<ValK>)> = atoms
                            .iter()
                            .filter_map(|v| match v {
                                AVal::Atom { cell } => Some((cell.clone(), vals.clone())),
                                _ => None,
                            })
                            .collect();
                        (store, counts) = join(&store, &counts, counting, entries);
                        results.insert(AVal::Basic(AbsBasic::AnyBool));
                    }
                }
            }
            if !results.is_empty() {
                apply(
                    &kset,
                    &[results],
                    &t_new,
                    &store,
                    &counts,
                    evidence,
                    &mut out,
                );
            }
        }
        CallKind::Fix { bindings, body } => {
            let t_new = state.time.push(call_data.label, k);
            let addrs: Vec<(Symbol, AddrK)> = bindings
                .iter()
                .map(|(name, _)| {
                    (
                        *name,
                        AddrK {
                            slot: Slot::Var(*name),
                            time: t_new.clone(),
                        },
                    )
                })
                .collect();
            let extended = state.benv.extend(addrs.iter().cloned());
            let entries: Vec<(AddrK, FlowSet<ValK>)> = bindings
                .iter()
                .zip(&addrs)
                .map(|((_, lam), (_, addr))| {
                    let captured = extended.restrict(program.free_vars(*lam));
                    (
                        addr.clone(),
                        std::iter::once(AVal::Clo {
                            lam: *lam,
                            env: captured,
                        })
                        .collect(),
                    )
                })
                .collect();
            let (next_store, next_counts) = join(&state.store, &state.counts, counting, entries);
            out.push(NaiveState {
                call: *body,
                benv: extended,
                store: next_store,
                time: t_new,
                counts: next_counts,
            });
        }
        // Thread forms. The naive search gives every state its own
        // store, so writes made on the child branch can never reach the
        // parent branch: `spawn` forks two independent branches (one
        // entering the thunk with a thread-return continuation, one
        // continuing the parent with the handle), and a parent-side
        // `join` only sees thread results that were recorded in *its
        // own* store — i.e. none. Both thread bodies still get
        // analyzed, but cross-thread value flow is not modeled here.
        // Concurrent programs should be analyzed on the shared-store
        // engine (§3.7 and `crate::kcfa`/`crate::flatcfa`), which the
        // race detector builds on; this machine remains the sequential
        // §3.6 reference.
        CallKind::Spawn { thunk, cont } => {
            let tset = eval(program, thunk, &state.benv, &state.store);
            let kset = eval(program, cont, &state.benv, &state.store);
            let t_new = state.time.push(call_data.label, k);
            let ret = AddrK {
                slot: Slot::ThreadRet(call_data.label),
                time: t_new.clone(),
            };
            // Child branch: enter the thunk; its continuation is the
            // thread-return continuation for `ret`.
            let retk: FlowSet<ValK> = std::iter::once(AVal::RetK { ret: ret.clone() }).collect();
            apply(
                &tset,
                &[retk],
                &t_new,
                &state.store,
                &state.counts,
                evidence,
                &mut out,
            );
            // Parent branch: continue with the thread handle.
            let handle: FlowSet<ValK> = std::iter::once(AVal::Tid { ret }).collect();
            apply(
                &kset,
                &[handle],
                &t_new,
                &state.store,
                &state.counts,
                evidence,
                &mut out,
            );
        }
        CallKind::Join { target, cont } => {
            let tset = eval(program, target, &state.benv, &state.store);
            let kset = eval(program, cont, &state.benv, &state.store);
            let t_new = state.time.push(call_data.label, k);
            let mut results: FlowSet<ValK> = FlowSet::new();
            for v in &tset {
                if let AVal::Tid { ret } = v {
                    results.extend(read(&state.store, ret));
                }
            }
            if !results.is_empty() {
                apply(
                    &kset,
                    &[results],
                    &t_new,
                    &state.store,
                    &state.counts,
                    evidence,
                    &mut out,
                );
            }
        }
        CallKind::Halt { value } => {
            halts.extend(eval(program, value, &state.benv, &state.store));
        }
    }
    out
}

/// Computes the set of reachable abstract states with per-state stores.
pub fn analyze_kcfa_naive(program: &CpsProgram, k: usize, limits: NaiveLimits) -> NaiveResult {
    analyze_kcfa_naive_gamma(program, k, limits, GammaOptions::default())
}

/// Like [`analyze_kcfa_naive`], optionally applying abstract garbage
/// collection (ΓCFA, see [`crate::gc`]) to every successor state before
/// it enters the seen-set.
pub fn analyze_kcfa_naive_with(
    program: &CpsProgram,
    k: usize,
    limits: NaiveLimits,
    abstract_gc: bool,
) -> NaiveResult {
    analyze_kcfa_naive_gamma(
        program,
        k,
        limits,
        GammaOptions {
            abstract_gc,
            counting: false,
        },
    )
}

/// The full ΓCFA-instrumented naive search: optional abstract garbage
/// collection and optional abstract counting.
pub fn analyze_kcfa_naive_gamma(
    program: &CpsProgram,
    k: usize,
    limits: NaiveLimits,
    gamma: GammaOptions,
) -> NaiveResult {
    let start = Instant::now();
    let initial = NaiveState {
        call: program.entry(),
        benv: BEnvK::empty(),
        store: Rc::new(BTreeMap::new()),
        time: CallString::empty(),
        counts: Rc::new(BTreeMap::new()),
    };
    let mut seen: HashSet<NaiveState> = HashSet::new();
    let mut queue: VecDeque<NaiveState> = VecDeque::new();
    let mut halts: BTreeSet<ValK> = BTreeSet::new();
    let mut global_counts: BTreeMap<AddrK, Count> = BTreeMap::new();
    let mut evidence: BTreeMap<CallId, SiteEvidence> = BTreeMap::new();
    seen.insert(initial.clone());
    queue.push_back(initial);

    let mut status = Status::Completed;
    let mut processed: usize = 0;
    while let Some(state) = queue.pop_front() {
        if seen.len() > limits.max_states {
            status = Status::IterationLimit;
            break;
        }
        if processed.is_multiple_of(64) {
            if let Some(budget) = limits.time_budget {
                if start.elapsed() > budget {
                    status = Status::TimedOut;
                    break;
                }
            }
        }
        processed += 1;
        if gamma.counting {
            for (addr, &count) in state.counts.iter() {
                global_counts
                    .entry(addr.clone())
                    .and_modify(|c| {
                        if count == Count::Many {
                            *c = Count::Many;
                        }
                    })
                    .or_insert(count);
            }
        }
        for mut succ in successors(
            program,
            k,
            gamma.counting,
            &state,
            &mut halts,
            &mut evidence,
        ) {
            if gamma.abstract_gc {
                succ.store = crate::gc::collect(&succ.store, &succ.benv);
                if gamma.counting {
                    // Collected addresses lose their counts: a later
                    // re-binding is a fresh allocation (ΓCFA's
                    // GC/counting synergy).
                    let retained: BTreeMap<AddrK, Count> = succ
                        .counts
                        .iter()
                        .filter(|(a, _)| succ.store.contains_key(*a))
                        .map(|(a, c)| (a.clone(), *c))
                        .collect();
                    succ.counts = Rc::new(retained);
                }
            }
            if seen.insert(succ.clone()) {
                queue.push_back(succ);
            }
        }
    }

    NaiveResult {
        state_count: seen.len(),
        status,
        elapsed: start.elapsed(),
        halt_values: halts.iter().map(|v| render_val(program, v)).collect(),
        counts: global_counts,
        site_evidence: evidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineLimits;
    use crate::kcfa::analyze_kcfa;

    #[test]
    fn constant_program_reaches_halt() {
        let p = cfa_syntax::compile("42").unwrap();
        let r = analyze_kcfa_naive(&p, 0, NaiveLimits::default());
        assert_eq!(r.status, Status::Completed);
        assert!(r.halt_values.contains("42"));
    }

    #[test]
    fn agrees_with_single_store_on_halt_values() {
        // The single-threaded store over-approximates the naive search, so
        // naive halt values ⊆ single-store halt values; on simple programs
        // they coincide.
        for src in [
            "(define (id x) x) (id (id 42))",
            "(if (zero? 1) 10 20)",
            "(car (cons 7 8))",
            "(define (f g) (g 5)) (f (lambda (n) n))",
        ] {
            let p = cfa_syntax::compile(src).unwrap();
            let naive = analyze_kcfa_naive(&p, 1, NaiveLimits::default());
            let fast = analyze_kcfa(&p, 1, EngineLimits::default());
            assert!(
                naive.halt_values.is_subset(&fast.metrics.halt_values),
                "{src}: naive {:?} ⊄ fast {:?}",
                naive.halt_values,
                fast.metrics.halt_values
            );
        }
    }

    #[test]
    fn state_count_exceeds_config_count() {
        // Per-state stores split what the single-threaded store merges.
        let src = "(define (id x) x) (let ((a (id 3))) (id 4))";
        let p = cfa_syntax::compile(src).unwrap();
        let naive = analyze_kcfa_naive(&p, 1, NaiveLimits::default());
        let fast = analyze_kcfa(&p, 1, EngineLimits::default());
        assert!(
            naive.state_count >= fast.fixpoint.config_count(),
            "naive {} < fast {}",
            naive.state_count,
            fast.fixpoint.config_count()
        );
    }

    #[test]
    fn abstract_gc_preserves_halt_values_and_shrinks_search() {
        for src in [
            "(define (id x) x) (id (id (id (id 42))))",
            "(define (f g) (g 5)) (f (lambda (n) (+ n 1)))",
            "(car (cons (cons 1 2) 3))",
        ] {
            let p = cfa_syntax::compile(src).unwrap();
            let plain = analyze_kcfa_naive_with(&p, 1, NaiveLimits::default(), false);
            let gc = analyze_kcfa_naive_with(&p, 1, NaiveLimits::default(), true);
            assert_eq!(plain.halt_values, gc.halt_values, "{src}");
            assert!(
                gc.state_count <= plain.state_count,
                "{src}: gc {} > plain {}",
                gc.state_count,
                plain.state_count
            );
        }
    }

    #[test]
    fn abstract_gc_strictly_helps_on_worst_case() {
        let p = cfa_syntax::compile(&cfa_workloads_worst(3)).unwrap();
        let limits = NaiveLimits {
            max_states: 30_000,
            time_budget: None,
        };
        let plain = analyze_kcfa_naive_with(&p, 1, limits, false);
        let gc = analyze_kcfa_naive_with(&p, 1, limits, true);
        assert!(
            gc.state_count < plain.state_count,
            "gc {} !< plain {}",
            gc.state_count,
            plain.state_count
        );
    }

    /// Inline worst-case generator (avoids a dev-dependency cycle).
    fn cfa_workloads_worst(n: usize) -> String {
        let mut body = {
            let mut call = String::from("(z");
            for i in 1..=n {
                call.push_str(&format!(" x{i}"));
            }
            call.push(')');
            format!("(lambda (z) {call})")
        };
        for i in (1..=n).rev() {
            body = format!("((lambda (f{i}) (begin (f{i} 0) (f{i} 1))) (lambda (x{i}) {body}))");
        }
        body
    }

    #[test]
    fn counting_marks_rebinding_as_plural() {
        // `id` is called twice; at k=0 both calls bind x at the same
        // abstract address, so x must be counted Many.
        let p = cfa_syntax::compile("(define (id x) x) (let ((a (id 3))) (id 4))").unwrap();
        let r = analyze_kcfa_naive_gamma(
            &p,
            0,
            NaiveLimits::default(),
            GammaOptions {
                abstract_gc: false,
                counting: true,
            },
        );
        assert!(!r.counts.is_empty());
        assert!(
            r.singular_addrs() < r.counts.len(),
            "some address must be plural"
        );
    }

    #[test]
    fn counting_straight_line_is_singular() {
        // A single call path binds every address once.
        let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
        let r = analyze_kcfa_naive_gamma(
            &p,
            1,
            NaiveLimits::default(),
            GammaOptions {
                abstract_gc: false,
                counting: true,
            },
        );
        assert!(r.counts.values().all(|&c| c == Count::One));
        assert_eq!(r.singular_ratio(), 1.0);
    }

    #[test]
    fn context_improves_singularity() {
        let p = cfa_syntax::compile("(define (id x) x) (let ((a (id 3))) (id 4))").unwrap();
        let gamma = GammaOptions {
            abstract_gc: false,
            counting: true,
        };
        let k0 = analyze_kcfa_naive_gamma(&p, 0, NaiveLimits::default(), gamma);
        let k1 = analyze_kcfa_naive_gamma(&p, 1, NaiveLimits::default(), gamma);
        assert!(
            k1.singular_ratio() > k0.singular_ratio(),
            "k=1 {} !> k=0 {}",
            k1.singular_ratio(),
            k0.singular_ratio()
        );
    }

    #[test]
    fn gc_with_counting_preserves_halts_and_improves_singularity() {
        let p = cfa_syntax::compile(&cfa_workloads_worst(2)).unwrap();
        let plain = analyze_kcfa_naive_gamma(
            &p,
            1,
            NaiveLimits::default(),
            GammaOptions {
                abstract_gc: false,
                counting: true,
            },
        );
        let gc = analyze_kcfa_naive_gamma(
            &p,
            1,
            NaiveLimits::default(),
            GammaOptions {
                abstract_gc: true,
                counting: true,
            },
        );
        assert_eq!(plain.halt_values, gc.halt_values);
        assert!(gc.singular_ratio() >= plain.singular_ratio());
    }

    #[test]
    fn super_beta_accepts_singleton_singular_site() {
        // One λ, called once: inlinable.
        let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
        let r = analyze_kcfa_naive_gamma(
            &p,
            0,
            NaiveLimits::default(),
            GammaOptions {
                abstract_gc: false,
                counting: true,
            },
        );
        assert!(!r.super_beta_sites(&p).is_empty());
    }

    #[test]
    fn super_beta_rejects_plural_captures_at_k0() {
        // `make` closes over n, which is bound at two different calls;
        // at k=0 both share one address, so the closure call site's
        // captures are plural — inlining the body could conflate them.
        let src = "(define (make n) (lambda () n))
                   (let* ((f (make 1)) (g (make 2))) (f))";
        let p = cfa_syntax::compile(src).unwrap();
        let gamma = GammaOptions {
            abstract_gc: false,
            counting: true,
        };
        let k0 = analyze_kcfa_naive_gamma(&p, 0, NaiveLimits::default(), gamma);
        // The (f) application site applies the single thunk but with a
        // plural capture: some monomorphic user site must be rejected.
        let rejected: Vec<_> = k0
            .site_evidence
            .iter()
            .filter(|(&site, ev)| {
                p.is_user_call(site) && ev.lams.len() == 1 && !ev.captures_singular
            })
            .collect();
        assert!(
            !rejected.is_empty(),
            "a monomorphic site with plural captures must exist at k=0: {:?}",
            k0.site_evidence
        );
        for (site, _) in rejected {
            assert!(!k0.super_beta_sites(&p).contains(site));
        }
        // Context sensitivity splits n's address, restoring safety.
        let k1 = analyze_kcfa_naive_gamma(&p, 1, NaiveLimits::default(), gamma);
        assert!(
            k1.super_beta_sites(&p).len() > k0.super_beta_sites(&p).len(),
            "k=1 {:?} !> k=0 {:?}",
            k1.super_beta_sites(&p),
            k0.super_beta_sites(&p)
        );
    }

    #[test]
    fn super_beta_requires_counting() {
        let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
        let r = analyze_kcfa_naive_gamma(
            &p,
            0,
            NaiveLimits::default(),
            GammaOptions {
                abstract_gc: false,
                counting: false,
            },
        );
        assert!(r.super_beta_sites(&p).is_empty(), "no counting, no license");
    }

    #[test]
    fn super_beta_rejects_polymorphic_sites() {
        // Two different λs reach the same operator position.
        let src = "(define (call h) (h 1))
                   (let ((u (call (lambda (a) a))))
                     (call (lambda (b) (+ b 1))))";
        let p = cfa_syntax::compile(src).unwrap();
        let r = analyze_kcfa_naive_gamma(
            &p,
            0,
            NaiveLimits::default(),
            GammaOptions {
                abstract_gc: false,
                counting: true,
            },
        );
        // The (h 1) site sees both λs: not inlinable.
        let poly = r
            .site_evidence
            .values()
            .filter(|ev| ev.lams.len() >= 2)
            .count();
        assert!(poly >= 1, "some site must be polymorphic");
    }

    #[test]
    fn state_limit_fires() {
        // A chain of calls grows the store at every step, so every state
        // along the path is distinct — far more than 10 states.
        let p = cfa_syntax::compile(
            "(define (id x) x)
             (id (id (id (id (id (id (id (id 1))))))))",
        )
        .unwrap();
        let r = analyze_kcfa_naive(
            &p,
            1,
            NaiveLimits {
                max_states: 10,
                time_budget: None,
            },
        );
        assert_eq!(r.status, Status::IterationLimit);
    }
}

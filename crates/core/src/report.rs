//! Human-readable analysis reports.
//!
//! Renders the result of an analysis the way the bottom halves of the
//! paper's Figures 1 and 2 do: per-context variable flow facts
//! (`context: var -> {values}`), the call graph, and summary counters.
//! Used by the CLI's `--report` flag and handy in tests.

use crate::flatcfa::FlatCfaResult;
use crate::kcfa::{render_val, KcfaResult};
use cfa_concrete::base::Slot;
use cfa_syntax::cps::CpsProgram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Options for report rendering.
#[derive(Copy, Clone, Debug)]
pub struct ReportOptions {
    /// Maximum number of store rows to print (0 = unlimited).
    pub max_rows: usize,
    /// Include the call-target table.
    pub call_targets: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            max_rows: 200,
            call_targets: true,
        }
    }
}

fn render_slot(program: &CpsProgram, slot: &Slot) -> String {
    match slot {
        Slot::Var(v) => program.name(*v).to_owned(),
        Slot::Car(l) => format!("car@{l}"),
        Slot::Cdr(l) => format!("cdr@{l}"),
        Slot::Atom(l) => format!("atom@{l}"),
        Slot::ThreadRet(l) => format!("thread-ret@{l}"),
    }
}

fn push_rows(out: &mut String, rows: BTreeMap<(String, String), Vec<String>>, max_rows: usize) {
    let total = rows.len();
    for (i, ((ctx, slot), vals)) in rows.into_iter().enumerate() {
        if max_rows != 0 && i >= max_rows {
            let _ = writeln!(out, "  … {} more rows", total - i);
            break;
        }
        let _ = writeln!(out, "  {ctx}: {slot} -> {{{}}}", vals.join(", "));
    }
}

/// Renders a k-CFA result in `context: var -> {values}` form.
pub fn report_kcfa(program: &CpsProgram, result: &KcfaResult, opts: ReportOptions) -> String {
    let mut out = String::new();
    let m = &result.metrics;
    let _ = writeln!(out, "{}", m);
    let _ = writeln!(out, "store ({} addresses):", m.store_entries);
    let mut rows: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for (addr, values) in result.fixpoint.store.iter() {
        let ctx = addr.time.to_string();
        let slot = render_slot(program, &addr.slot);
        let rendered: Vec<String> = values.iter().map(|v| render_val(program, v)).collect();
        rows.insert((ctx, slot), rendered);
    }
    push_rows(&mut out, rows, opts.max_rows);
    if opts.call_targets {
        append_call_targets(&mut out, program, &m.call_targets);
    }
    out
}

/// Renders an m-CFA / poly-k-CFA result.
pub fn report_flat(program: &CpsProgram, result: &FlatCfaResult, opts: ReportOptions) -> String {
    let mut out = String::new();
    let m = &result.metrics;
    let _ = writeln!(out, "{}", m);
    let _ = writeln!(out, "store ({} addresses):", m.store_entries);
    let mut rows: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for (addr, values) in result.fixpoint.store.iter() {
        let ctx = addr.env.to_string();
        let slot = render_slot(program, &addr.slot);
        let rendered: Vec<String> = values.iter().map(|v| render_val(program, v)).collect();
        rows.insert((ctx, slot), rendered);
    }
    push_rows(&mut out, rows, opts.max_rows);
    if opts.call_targets {
        append_call_targets(&mut out, program, &m.call_targets);
    }
    out
}

fn append_call_targets(
    out: &mut String,
    program: &CpsProgram,
    targets: &BTreeMap<cfa_syntax::cps::CallId, std::collections::BTreeSet<cfa_syntax::cps::LamId>>,
) {
    let _ = writeln!(out, "call targets ({} sites):", targets.len());
    for (site, lams) in targets {
        let names: Vec<String> = lams
            .iter()
            .map(|&l| format!("λ{}", program.lam(l).label))
            .collect();
        let _ = writeln!(
            out,
            "  call@{} -> {{{}}}",
            program.call(*site).label,
            names.join(", ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineLimits;
    use crate::flatcfa::analyze_mcfa;
    use crate::kcfa::analyze_kcfa;

    #[test]
    fn kcfa_report_contains_store_rows_and_targets() {
        let p = cfa_syntax::compile("(define (id x) x) (id (id 7))").unwrap();
        let r = analyze_kcfa(&p, 1, EngineLimits::default());
        let text = report_kcfa(&p, &r, ReportOptions::default());
        assert!(text.contains("store ("), "{text}");
        assert!(text.contains("->"), "{text}");
        assert!(text.contains("call targets"), "{text}");
        assert!(text.contains("id"), "variables are named: {text}");
    }

    #[test]
    fn flat_report_shows_contexts() {
        let p = cfa_syntax::compile("(define (id x) x) (id (id 7))").unwrap();
        let r = analyze_mcfa(&p, 1, EngineLimits::default());
        let text = report_flat(&p, &r, ReportOptions::default());
        assert!(text.contains('⟨'), "contexts rendered: {text}");
    }

    #[test]
    fn row_cap_applies() {
        let p = cfa_syntax::compile(&cfa_workloads_like(6)).unwrap();
        let r = analyze_kcfa(&p, 1, EngineLimits::default());
        let text = report_kcfa(
            &p,
            &r,
            ReportOptions {
                max_rows: 3,
                call_targets: false,
            },
        );
        assert!(text.contains("more rows"), "{text}");
    }

    fn cfa_workloads_like(n: usize) -> String {
        let mut src = String::from("(define (id x) x)\n(begin");
        for i in 0..n {
            src.push_str(&format!(" (id {i})"));
        }
        src.push(')');
        src
    }
}

//! The retained original engine — the pre-interning store and worklist,
//! kept verbatim as a differential oracle and benchmark baseline.
//!
//! [`crate::engine`] rebuilt the fixpoint hot path around interned
//! values and zero-copy flow sets. Because the fixed point of a monotone
//! transfer function is unique, the rebuilt engine must reach *exactly*
//! the same configurations and store facts as this one; the differential
//! tests in `tests/engine_differential.rs` and the `engine_bench`
//! binary both run the two side by side (the former to prove equality,
//! the latter to measure the speedup).
//!
//! Nothing here should be used on new code paths: the clone-per-read
//! [`RefStore`] is the cost model the new engine exists to beat.
//!
//! The oracle deliberately has **no delta interface**: a
//! [`ReferenceMachine`] step always sees materialized full value sets
//! and always re-derives the full product, so it cannot share a
//! semi-naive bug with the engines it checks. The shared runner
//! (`cfa_testsupport::assert_engines_agree`) compares it against the
//! delta engine in both evaluation modes, sequential and parallel.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::time::{Duration, Instant};

pub use crate::engine::{EngineLimits, Status};

/// The original store: a `HashMap` of `BTreeSet`s, cloned on every read.
#[derive(Clone, Debug)]
pub struct RefStore<A, V> {
    map: HashMap<A, BTreeSet<V>>,
    joins: u64,
}

impl<A: Eq + Hash + Clone, V: Ord + Clone> Default for RefStore<A, V> {
    fn default() -> Self {
        RefStore {
            map: HashMap::new(),
            joins: 0,
        }
    }
}

impl<A: Eq + Hash + Clone, V: Ord + Clone> RefStore<A, V> {
    /// An empty store (`⊥`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the flow set at `addr` — **by value**: this is the
    /// clone-per-read cost the interned store removes.
    pub fn read(&self, addr: &A) -> BTreeSet<V> {
        self.map.get(addr).cloned().unwrap_or_default()
    }

    /// Borrows the flow set at `addr` if bound.
    pub fn get(&self, addr: &A) -> Option<&BTreeSet<V>> {
        self.map.get(addr)
    }

    /// Joins `values` into the flow set at `addr`; `true` on growth.
    pub fn join(&mut self, addr: A, values: impl IntoIterator<Item = V>) -> bool {
        self.joins += 1;
        let set = self.map.entry(addr).or_default();
        let before = set.len();
        set.extend(values);
        set.len() != before
    }

    /// Number of bound addresses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no address is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of `(address, value)` facts.
    pub fn fact_count(&self) -> usize {
        self.map.values().map(BTreeSet::len).sum()
    }

    /// Number of join operations performed (including no-ops).
    pub fn join_count(&self) -> u64 {
        self.joins
    }

    /// Iterates over `(address, flow set)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&A, &BTreeSet<V>)> {
        self.map.iter()
    }
}

/// The original tracked view: reads clone, dependencies are recorded as
/// owned addresses (duplicates and all).
#[derive(Debug)]
pub struct RefTrackedStore<'a, A, V> {
    store: &'a mut RefStore<A, V>,
    reads: Vec<A>,
    grew: Vec<A>,
}

impl<'a, A: Eq + Hash + Clone, V: Ord + Clone> RefTrackedStore<'a, A, V> {
    /// Wraps a store for a one-off step outside the engine loop — how
    /// the race detector re-steps saturated configurations against the
    /// final store. Recorded reads and growth are simply discarded.
    pub(crate) fn wrap(store: &'a mut RefStore<A, V>) -> Self {
        RefTrackedStore {
            store,
            reads: Vec::new(),
            grew: Vec::new(),
        }
    }

    /// Reads the flow set at `addr`, recording the dependency.
    pub fn read(&mut self, addr: &A) -> BTreeSet<V> {
        self.reads.push(addr.clone());
        self.store.read(addr)
    }

    /// Joins values into `addr`, recording growth.
    pub fn join(&mut self, addr: A, values: impl IntoIterator<Item = V>) {
        if self.store.join(addr.clone(), values) {
            self.grew.push(addr);
        }
    }

    /// Reads without recording a dependency.
    pub fn peek(&self, addr: &A) -> BTreeSet<V> {
        self.store.read(addr)
    }
}

/// The machine interface of the original engine: step functions work on
/// materialized value sets.
pub trait ReferenceMachine {
    /// A configuration (see [`crate::engine::AbstractMachine::Config`]).
    /// `Debug` lets an aborted oracle run name the panicking
    /// configuration, as the main engine does.
    type Config: Clone + Eq + Hash + std::fmt::Debug;
    /// Abstract addresses.
    type Addr: Clone + Eq + Hash;
    /// Abstract values.
    type Val: Clone + Ord;

    /// The initial configuration.
    fn initial(&self) -> Self::Config;

    /// Seeds the store before exploration begins.
    fn seed(&mut self, store: &mut RefTrackedStore<'_, Self::Addr, Self::Val>) {
        let _ = store;
    }

    /// Computes the successors of `config`.
    fn step(
        &mut self,
        config: &Self::Config,
        store: &mut RefTrackedStore<'_, Self::Addr, Self::Val>,
        out: &mut Vec<Self::Config>,
    );
}

/// The original engine's output.
#[derive(Debug)]
pub struct RefFixpointResult<C, A, V> {
    /// All reached configurations, in first-visit order.
    pub configs: Vec<C>,
    /// The final single-threaded store.
    pub store: RefStore<A, V>,
    /// Why the run stopped.
    pub status: Status,
    /// Number of configuration evaluations.
    pub iterations: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// The run's telemetry (one lane; empty when tracing is off).
    pub trace: crate::telemetry::RunTrace,
}

impl<C, A, V> RefFixpointResult<C, A, V> {
    /// Number of distinct configurations reached.
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }
}

/// Runs `machine` to its least fixed point with the original scheduling
/// and store representation (kept byte-for-byte from the pre-interning
/// engine, including its quirk of registering duplicate read-deps per
/// occurrence — but *not* its limit-check quirks: the oracle now shares
/// the main engine's discipline of checking limits before the pop,
/// keyed on the pop count, so an oracle run can't silently overrun its
/// `time_budget` and a budget-cut configuration stays queued; it also
/// honors [`EngineLimits::cancel`] and contains transfer-function
/// panics the same way, returning [`Status::Aborted`] instead of
/// unwinding into the caller).
pub fn run_fixpoint_reference<M: ReferenceMachine>(
    machine: &mut M,
    limits: EngineLimits,
) -> RefFixpointResult<M::Config, M::Addr, M::Val> {
    let start = Instant::now();
    let mut trace = crate::telemetry::TraceBuffer::new(limits.trace);
    trace.set_origin(start);
    let mut store: RefStore<M::Addr, M::Val> = RefStore::new();
    let mut configs: Vec<M::Config> = Vec::new();
    let mut index: HashMap<M::Config, usize> = HashMap::new();
    let mut deps: HashMap<M::Addr, HashSet<usize>> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued: HashSet<usize> = HashSet::new();

    let intern = |cfg: M::Config,
                  configs: &mut Vec<M::Config>,
                  index: &mut HashMap<M::Config, usize>|
     -> (usize, bool) {
        if let Some(&i) = index.get(&cfg) {
            (i, false)
        } else {
            let i = configs.len();
            configs.push(cfg.clone());
            index.insert(cfg, i);
            (i, true)
        }
    };

    {
        let mut tracked = RefTrackedStore {
            store: &mut store,
            reads: Vec::new(),
            grew: Vec::new(),
        };
        machine.seed(&mut tracked);
    }
    let (root, _) = intern(machine.initial(), &mut configs, &mut index);
    queue.push_back(root);
    queued.insert(root);

    let mut iterations: u64 = 0;
    let mut status = Status::Completed;
    let mut successors: Vec<M::Config> = Vec::new();

    // The reference has no epoch gate, so every pop evaluates and the
    // pop count equals `iterations` — the counter is still kept
    // separate so the oracle's limit checks read exactly like the main
    // engine's pop-keyed ones (the PR 2 fix, ported here).
    let mut pops: u64 = 0;

    while queue.front().is_some() {
        // Check limits *before* popping (the main engine's discipline):
        // a configuration the budget cuts off stays queued.
        if iterations >= limits.max_iterations {
            status = Status::IterationLimit;
            break;
        }
        if pops.is_multiple_of(256) {
            if let Some(token) = &limits.cancel {
                if token.is_cancelled() {
                    status = Status::Cancelled;
                    break;
                }
            }
            if let Some(budget) = limits.time_budget {
                if start.elapsed() > budget {
                    status = Status::TimedOut;
                    break;
                }
            }
        }
        let i = queue.pop_front().expect("peeked element present");
        queued.remove(&i);
        pops += 1;
        iterations += 1;

        let config = configs[i].clone();
        successors.clear();
        let mut tracked = RefTrackedStore {
            store: &mut store,
            reads: Vec::new(),
            grew: Vec::new(),
        };
        trace.eval_start(i as u64);
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            machine.step(&config, &mut tracked, &mut successors)
        }));
        trace.eval_end(i as u64);
        if let Err(payload) = step {
            status = Status::Aborted {
                config: format!("{config:?}"),
                message: crate::engine::panic_message(payload.as_ref()),
            };
            break;
        }
        let RefTrackedStore { reads, grew, .. } = tracked;

        for addr in reads {
            deps.entry(addr).or_default().insert(i);
        }
        for succ in successors.drain(..) {
            let (j, fresh) = intern(succ, &mut configs, &mut index);
            if fresh && queued.insert(j) {
                queue.push_back(j);
            }
        }
        for addr in grew {
            if let Some(dependents) = deps.get(&addr) {
                for &j in dependents {
                    if queued.insert(j) {
                        queue.push_back(j);
                    }
                }
            }
        }
    }

    RefFixpointResult {
        configs,
        store,
        status,
        iterations,
        elapsed: start.elapsed(),
        trace: crate::telemetry::RunTrace::from_buffers(vec![trace]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        n: u32,
    }

    impl ReferenceMachine for Counter {
        type Config = u32;
        type Addr = u32;
        type Val = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn step(
            &mut self,
            config: &u32,
            store: &mut RefTrackedStore<'_, u32, u32>,
            out: &mut Vec<u32>,
        ) {
            let c = *config;
            if c < self.n {
                store.join(c % 3, [c]);
                out.push(c + 1);
            } else {
                let _ = store.read(&0);
            }
        }
    }

    #[test]
    fn reference_engine_reaches_fixpoint() {
        let mut m = Counter { n: 10 };
        let r = run_fixpoint_reference(&mut m, EngineLimits::default());
        assert_eq!(r.status, Status::Completed);
        assert_eq!(r.config_count(), 11);
        assert_eq!(r.store.read(&0), [0u32, 3, 6, 9].into_iter().collect());
    }

    #[test]
    fn reference_and_delta_engines_agree_on_toys() {
        struct C2(u32);
        impl crate::engine::AbstractMachine for C2 {
            type Config = u32;
            type Addr = u32;
            type Val = u32;
            fn initial(&self) -> u32 {
                0
            }
            fn step(
                &mut self,
                config: &u32,
                store: &mut crate::engine::TrackedStore<'_, u32, u32>,
                out: &mut Vec<u32>,
            ) {
                let c = *config;
                if c < self.0 {
                    store.join(&(c % 3), [c]);
                    out.push(c + 1);
                } else {
                    let _ = store.read(&0);
                }
            }
        }
        let reference = run_fixpoint_reference(&mut Counter { n: 25 }, EngineLimits::default());
        let delta = crate::engine::run_fixpoint(&mut C2(25), EngineLimits::default());
        let ref_configs: std::collections::BTreeSet<u32> =
            reference.configs.iter().copied().collect();
        let new_configs: std::collections::BTreeSet<u32> = delta.configs.iter().copied().collect();
        assert_eq!(ref_configs, new_configs);
        for (addr, set) in reference.store.iter() {
            assert_eq!(delta.store.read(addr), *set, "address {addr}");
        }
        assert_eq!(reference.store.len(), delta.store.len());
        assert_eq!(reference.store.fact_count(), delta.store.fact_count());
    }
}

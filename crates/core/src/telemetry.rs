//! Telemetry: a zero-cost-when-off tracing subsystem for every engine.
//!
//! Each fabric worker (and the sequential/reference loops) writes
//! fixed-size binary events — eval start/end with config id, epoch-gate
//! skip, steal, inbox drain, row-lock wait over a threshold, wake
//! batch, tenant suspend/resume, watchdog tick — into a per-worker
//! bounded ring buffer ([`TraceBuffer`]). The buffer is owned by
//! exactly one worker, so recording is lock-free by construction;
//! timestamps are microseconds from **one run-relative clock** (the
//! engine's start instant, installed via [`TraceBuffer::set_origin`]),
//! so rings merged across workers form a coherent timeline.
//!
//! A [`TraceConfig`] on [`crate::engine::EngineLimits`] selects the
//! level — [`TraceLevel::Off`] (the default: every emit is one
//! predictable branch and nothing else), [`TraceLevel::Counters`]
//! (per-kind event counts, no ring), or [`TraceLevel::Full`] (counts
//! plus the event ring) — parseable from the `CFA_TRACE` environment
//! variable. When the ring fills it drops **oldest-first** and sets a
//! `truncated` flag; the per-kind counts never drop, so totals stay
//! exact even on truncated rings.
//!
//! On completion the rings merge into a [`RunTrace`] exposed on
//! [`crate::engine::FixpointResult`], exportable as Chrome
//! `trace_event` JSON ([`RunTrace::to_chrome_json`] — loads in
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev), one lane
//! per worker) and as a derived [`PhaseProfile`] (eval vs lock-wait vs
//! everything-else time split, p50/p95/p99 eval latency).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// How much the engines record. See the module docs for the levels.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum TraceLevel {
    /// Record nothing; every emit site is a single branch.
    #[default]
    Off,
    /// Count events per [`TraceEventKind`]; no ring, no timestamps.
    Counters,
    /// Counts plus the full per-worker event ring.
    Full,
}

/// Default [`TraceBuffer`] capacity, in events, per worker.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Tracing configuration carried on [`crate::engine::EngineLimits`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceConfig {
    /// The recording level.
    pub level: TraceLevel,
    /// Per-worker ring capacity in events ([`TraceLevel::Full`] only).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            level: TraceLevel::Off,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Per-kind counters only.
    pub fn counters() -> Self {
        TraceConfig {
            level: TraceLevel::Counters,
            ..Self::default()
        }
    }

    /// Full event rings at the default capacity.
    pub fn full() -> Self {
        TraceConfig {
            level: TraceLevel::Full,
            ..Self::default()
        }
    }

    /// Parses a `CFA_TRACE` value: `off` | `counters` | `full`.
    ///
    /// # Panics
    ///
    /// Panics on any other value — a malformed knob should fail loudly,
    /// not silently run untraced (matches the other `CFA_*` parsers).
    pub fn parse(value: &str) -> Self {
        match value {
            "off" => Self::off(),
            "counters" => Self::counters(),
            "full" => Self::full(),
            other => panic!("CFA_TRACE={other:?}: expected off|counters|full"),
        }
    }
}

/// What happened — the fixed event taxonomy. Every variant is one
/// fixed-size [`TraceEvent`] record; `arg` meanings are listed per
/// variant.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum TraceEventKind {
    /// A configuration evaluation began (`arg` = interned config id).
    EvalStart = 0,
    /// The matching evaluation ended (`arg` = interned config id).
    EvalEnd = 1,
    /// The epoch gate absorbed a pop (`arg` = interned config id).
    GateSkip = 2,
    /// A steal succeeded (`arg` = configs taken from the victim).
    Steal = 3,
    /// A non-empty inbox drain (`arg` = messages processed).
    InboxDrain = 4,
    /// A row-lock acquisition waited past the reporting threshold
    /// (`arg` = wait in microseconds; sharded backend only).
    RowLockWait = 5,
    /// A batch of dependents was woken by address growth (`arg` =
    /// dependents enqueued).
    WakeBatch = 6,
    /// A pool tenant suspended at the end of a quantum (`arg` = pops
    /// consumed so far).
    TenantSuspend = 7,
    /// A pool tenant resumed for a quantum (`arg` = pops so far).
    TenantResume = 8,
    /// The stall watchdog examined an all-idle fabric (`arg` = 0).
    WatchdogTick = 9,
}

/// Number of [`TraceEventKind`] variants (the counts-array length).
pub const KIND_COUNT: usize = 10;

/// All kinds, in tag order — for iterating count tables.
pub const ALL_KINDS: [TraceEventKind; KIND_COUNT] = [
    TraceEventKind::EvalStart,
    TraceEventKind::EvalEnd,
    TraceEventKind::GateSkip,
    TraceEventKind::Steal,
    TraceEventKind::InboxDrain,
    TraceEventKind::RowLockWait,
    TraceEventKind::WakeBatch,
    TraceEventKind::TenantSuspend,
    TraceEventKind::TenantResume,
    TraceEventKind::WatchdogTick,
];

impl TraceEventKind {
    /// The event's name in Chrome trace output.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::EvalStart => "eval_start",
            TraceEventKind::EvalEnd => "eval_end",
            TraceEventKind::GateSkip => "gate_skip",
            TraceEventKind::Steal => "steal",
            TraceEventKind::InboxDrain => "inbox_drain",
            TraceEventKind::RowLockWait => "row_lock_wait",
            TraceEventKind::WakeBatch => "wake_batch",
            TraceEventKind::TenantSuspend => "tenant_suspend",
            TraceEventKind::TenantResume => "tenant_resume",
            TraceEventKind::WatchdogTick => "watchdog_tick",
        }
    }
}

/// One fixed-size binary trace record: 24 bytes, `Copy`, no heap.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Microseconds since the run-relative clock origin.
    pub t_us: u64,
    /// Kind-specific payload (config id, batch size, wait µs, …).
    pub arg: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// A per-worker bounded event ring: drop-oldest on overflow, per-kind
/// counts that never drop, timestamps from one run-relative origin.
///
/// Owned by exactly one worker at a time (it travels with the worker
/// context through pool suspend/resume), so writes are plain
/// single-owner stores — lock-free by construction. Every emit is
/// gated behind one branch on the level, so a disabled buffer costs a
/// predictable compare-and-branch per site and nothing else.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    level: TraceLevel,
    capacity: usize,
    origin: Instant,
    /// The ring storage; `head` is the next write slot once `events`
    /// has reached `capacity` (before that, writes append).
    events: Vec<TraceEvent>,
    head: usize,
    truncated: bool,
    counts: [u64; KIND_COUNT],
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(TraceConfig::off())
    }
}

impl TraceBuffer {
    /// An empty buffer recording at `config`'s level.
    pub fn new(config: TraceConfig) -> Self {
        TraceBuffer {
            level: config.level,
            capacity: config.ring_capacity.max(1),
            origin: Instant::now(),
            events: Vec::new(),
            head: 0,
            truncated: false,
            counts: [0; KIND_COUNT],
        }
    }

    /// Installs the run-relative clock origin (the engine's start
    /// instant). Every worker of a run shares one origin, so merged
    /// timelines are coherent.
    pub fn set_origin(&mut self, origin: Instant) {
        self.origin = origin;
    }

    /// Whether anything is recorded (`level != Off`). Emit-site guard
    /// for argument computations that are themselves costly (e.g.
    /// timing a lock acquisition).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// The recording level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    #[inline]
    fn emit(&mut self, kind: TraceEventKind, arg: u64) {
        // The one branch every disabled emit pays.
        if self.level == TraceLevel::Off {
            return;
        }
        self.record(kind, arg);
    }

    /// The cold path of [`TraceBuffer::emit`]: count, and ring-write
    /// under [`TraceLevel::Full`].
    fn record(&mut self, kind: TraceEventKind, arg: u64) {
        self.counts[kind as usize] += 1;
        if self.level != TraceLevel::Full {
            return;
        }
        let event = TraceEvent {
            t_us: u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX),
            arg,
            kind,
        };
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            // Full ring: overwrite the oldest slot.
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.truncated = true;
        }
    }

    /// An evaluation of the config with interned id `config` began.
    #[inline]
    pub fn eval_start(&mut self, config: u64) {
        self.emit(TraceEventKind::EvalStart, config);
    }

    /// The matching evaluation ended (also emitted after a contained
    /// panic, so eval starts and ends stay paired).
    #[inline]
    pub fn eval_end(&mut self, config: u64) {
        self.emit(TraceEventKind::EvalEnd, config);
    }

    /// The epoch gate absorbed a pop of config id `config`.
    #[inline]
    pub fn gate_skip(&mut self, config: u64) {
        self.emit(TraceEventKind::GateSkip, config);
    }

    /// A steal took `taken` configs from a victim.
    #[inline]
    pub fn steal(&mut self, taken: u64) {
        self.emit(TraceEventKind::Steal, taken);
    }

    /// A non-empty inbox drain processed `msgs` messages.
    #[inline]
    pub fn inbox_drain(&mut self, msgs: u64) {
        self.emit(TraceEventKind::InboxDrain, msgs);
    }

    /// A row-lock acquisition waited `wait_us` microseconds (over the
    /// backend's reporting threshold).
    #[inline]
    pub fn row_lock_wait(&mut self, wait_us: u64) {
        self.emit(TraceEventKind::RowLockWait, wait_us);
    }

    /// Address growth enqueued `woken` dependents in one batch.
    #[inline]
    pub fn wake_batch(&mut self, woken: u64) {
        self.emit(TraceEventKind::WakeBatch, woken);
    }

    /// A pool tenant suspended after `pops` total pops.
    #[inline]
    pub fn tenant_suspend(&mut self, pops: u64) {
        self.emit(TraceEventKind::TenantSuspend, pops);
    }

    /// A pool tenant resumed at `pops` total pops.
    #[inline]
    pub fn tenant_resume(&mut self, pops: u64) {
        self.emit(TraceEventKind::TenantResume, pops);
    }

    /// The stall watchdog examined an all-idle fabric.
    #[inline]
    pub fn watchdog_tick(&mut self) {
        self.emit(TraceEventKind::WatchdogTick, 0);
    }

    /// Events recorded so far (per-kind totals; never truncated).
    pub fn count(&self, kind: TraceEventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Freezes the ring into a [`WorkerTrace`] lane for `worker`,
    /// unrolling the ring into oldest-first order.
    pub fn into_worker_trace(self, worker: usize) -> WorkerTrace {
        let mut events = self.events;
        // `head` is the oldest slot only once the ring has wrapped.
        events.rotate_left(if self.truncated { self.head } else { 0 });
        WorkerTrace {
            worker,
            events,
            truncated: self.truncated,
            counts: self.counts,
        }
    }
}

/// One worker's merged lane of a [`RunTrace`].
#[derive(Clone, Debug, Default)]
pub struct WorkerTrace {
    /// The worker id (fabric worker index; 0 for sequential engines).
    pub worker: usize,
    /// The surviving ring contents, oldest first.
    pub events: Vec<TraceEvent>,
    /// Whether the ring overflowed and dropped oldest events.
    pub truncated: bool,
    /// Per-kind event totals — exact even when `truncated`.
    pub counts: [u64; KIND_COUNT],
}

impl WorkerTrace {
    /// This lane's total for `kind` (exact even when truncated).
    pub fn count(&self, kind: TraceEventKind) -> u64 {
        self.counts[kind as usize]
    }
}

/// The merged per-worker rings of one engine run, exposed on
/// [`crate::engine::FixpointResult`]. Empty (no lanes) when the run
/// traced at [`TraceLevel::Off`].
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// The level the run recorded at.
    pub level: TraceLevel,
    /// One lane per worker, in worker-id order.
    pub workers: Vec<WorkerTrace>,
}

impl RunTrace {
    /// Assembles a trace from per-worker buffers (lane order = vec
    /// order). Off-level runs collapse to the empty default so a
    /// disabled run carries no lanes at all.
    pub fn from_buffers(buffers: Vec<TraceBuffer>) -> Self {
        let level = buffers
            .iter()
            .map(|b| b.level)
            .max_by_key(|l| *l as u8)
            .unwrap_or_default();
        if level == TraceLevel::Off {
            return RunTrace::default();
        }
        RunTrace {
            level,
            workers: buffers
                .into_iter()
                .enumerate()
                .map(|(w, b)| b.into_worker_trace(w))
                .collect(),
        }
    }

    /// Total events across all lanes for `kind` (exact even under ring
    /// truncation — counts never drop).
    pub fn count(&self, kind: TraceEventKind) -> u64 {
        self.workers.iter().map(|w| w.count(kind)).sum()
    }

    /// Events surviving in the rings (≤ the counted totals when any
    /// lane truncated).
    pub fn event_count(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// Whether any lane's ring overflowed.
    pub fn truncated(&self) -> bool {
        self.workers.iter().any(|w| w.truncated)
    }

    /// Whether nothing was recorded (the `CFA_TRACE=off` shape).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
            || (self.event_count() == 0 && ALL_KINDS.iter().all(|&k| self.count(k) == 0))
    }

    /// Renders the trace as Chrome `trace_event` JSON (the "JSON
    /// object" flavor: `{"traceEvents": […], "displayTimeUnit": "ms"}`)
    /// — loadable in `chrome://tracing` and Perfetto. One `tid` lane
    /// per worker; evaluations and over-threshold lock waits render as
    /// complete (`"ph": "X"`) spans, everything else as instants.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let push = |out: &mut String, line: &str, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(line);
        };
        push(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"fixpoint fabric\"}}",
            &mut first,
        );
        for lane in &self.workers {
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                     \"args\":{{\"name\":\"worker {}{}\"}}}}",
                    lane.worker,
                    lane.worker,
                    if lane.truncated { " (truncated)" } else { "" }
                ),
                &mut first,
            );
            // Pair eval starts with their ends; a drop-oldest ring can
            // orphan an end (its start was overwritten) — orphans are
            // skipped rather than guessed at.
            let mut open_eval: Option<&TraceEvent> = None;
            for e in &lane.events {
                let mut line = String::new();
                match e.kind {
                    TraceEventKind::EvalStart => {
                        open_eval = Some(e);
                        continue;
                    }
                    TraceEventKind::EvalEnd => {
                        let Some(start) = open_eval.take().filter(|s| s.arg == e.arg) else {
                            continue;
                        };
                        let _ = write!(
                            line,
                            "{{\"name\":\"eval\",\"cat\":\"eval\",\"ph\":\"X\",\
                             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
                             \"args\":{{\"config\":{}}}}}",
                            start.t_us,
                            e.t_us.saturating_sub(start.t_us),
                            lane.worker,
                            e.arg
                        );
                    }
                    TraceEventKind::RowLockWait => {
                        // Emitted after the wait; back-date the span.
                        let _ = write!(
                            line,
                            "{{\"name\":\"row_lock_wait\",\"cat\":\"lock\",\"ph\":\"X\",\
                             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
                             \"args\":{{\"wait_us\":{}}}}}",
                            e.t_us.saturating_sub(e.arg),
                            e.arg,
                            lane.worker,
                            e.arg
                        );
                    }
                    kind => {
                        let _ = write!(
                            line,
                            "{{\"name\":\"{}\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\
                             \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"n\":{}}}}}",
                            kind.name(),
                            e.t_us,
                            lane.worker,
                            e.arg
                        );
                    }
                }
                push(&mut out, &line, &mut first);
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Derives the run's [`PhaseProfile`] from the recorded rings.
    pub fn phase_profile(&self) -> PhaseProfile {
        let mut eval_us = 0u64;
        let mut lock_wait_us = 0u64;
        let mut span_us = 0u64;
        let mut latencies: Vec<u64> = Vec::new();
        for lane in &self.workers {
            let mut open: Option<&TraceEvent> = None;
            for e in &lane.events {
                match e.kind {
                    TraceEventKind::EvalStart => open = Some(e),
                    TraceEventKind::EvalEnd => {
                        if let Some(start) = open.take().filter(|s| s.arg == e.arg) {
                            let d = e.t_us.saturating_sub(start.t_us);
                            eval_us += d;
                            latencies.push(d);
                        }
                    }
                    TraceEventKind::RowLockWait => lock_wait_us += e.arg,
                    _ => {}
                }
            }
            if let (Some(f), Some(l)) = (lane.events.first(), lane.events.last()) {
                span_us += l.t_us.saturating_sub(f.t_us);
            }
        }
        latencies.sort_unstable();
        let pct = |q: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            latencies[((latencies.len() - 1) as f64 * q).round() as usize]
        };
        PhaseProfile {
            eval: Duration::from_micros(eval_us),
            lock_wait: Duration::from_micros(lock_wait_us),
            other: Duration::from_micros(span_us.saturating_sub(eval_us + lock_wait_us)),
            eval_count: self.count(TraceEventKind::EvalStart),
            eval_p50_us: pct(0.50),
            eval_p95_us: pct(0.95),
            eval_p99_us: pct(0.99),
            events: ALL_KINDS.iter().map(|&k| self.count(k)).sum(),
            truncated: self.truncated(),
        }
    }
}

/// Where a run's worker time went, derived from a [`RunTrace`]
/// ([`TraceLevel::Full`] rings; a counters-only run yields zero
/// durations but exact event totals).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Total time inside configuration evaluations, summed over
    /// workers.
    pub eval: Duration,
    /// Total over-threshold row-lock wait (sharded backend only).
    pub lock_wait: Duration,
    /// The busy-span remainder: stealing, inbox drains, idle backoff,
    /// merge — everything between a lane's first and last event that
    /// was neither eval nor reported lock wait.
    pub other: Duration,
    /// Evaluations counted (exact even under ring truncation).
    pub eval_count: u64,
    /// Median paired-eval latency, microseconds.
    pub eval_p50_us: u64,
    /// 95th-percentile paired-eval latency, microseconds.
    pub eval_p95_us: u64,
    /// 99th-percentile paired-eval latency, microseconds.
    pub eval_p99_us: u64,
    /// Total events counted across all kinds.
    pub events: u64,
    /// Whether any worker ring dropped oldest events.
    pub truncated: bool,
}

impl PhaseProfile {
    /// One-paragraph human rendering (the `cfa trace` summary line).
    pub fn summary(&self) -> String {
        format!(
            "eval {:.3}s ({} evals, p50 {}µs, p95 {}µs, p99 {}µs), \
             lock-wait {:.3}s, other {:.3}s, {} events{}",
            self.eval.as_secs_f64(),
            self.eval_count,
            self.eval_p50_us,
            self.eval_p95_us,
            self.eval_p99_us,
            self.lock_wait.as_secs_f64(),
            self.other.as_secs_f64(),
            self.events,
            if self.truncated {
                " (rings truncated)"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_with_capacity(capacity: usize) -> TraceBuffer {
        TraceBuffer::new(TraceConfig {
            level: TraceLevel::Full,
            ring_capacity: capacity,
        })
    }

    #[test]
    fn off_level_records_nothing() {
        let mut b = TraceBuffer::new(TraceConfig::off());
        b.eval_start(1);
        b.eval_end(1);
        b.steal(3);
        let t = RunTrace::from_buffers(vec![b]);
        assert!(t.is_empty());
        assert_eq!(t.workers.len(), 0, "off-level runs carry no lanes");
    }

    #[test]
    fn counters_level_counts_without_ring() {
        let mut b = TraceBuffer::new(TraceConfig::counters());
        b.eval_start(1);
        b.eval_end(1);
        b.gate_skip(2);
        let t = RunTrace::from_buffers(vec![b]);
        assert_eq!(t.count(TraceEventKind::EvalStart), 1);
        assert_eq!(t.count(TraceEventKind::GateSkip), 1);
        assert_eq!(t.event_count(), 0, "no ring under Counters");
        assert!(!t.is_empty());
    }

    #[test]
    fn ring_overflow_drops_oldest_and_flags_truncation() {
        let mut b = full_with_capacity(4);
        for i in 0..10u64 {
            b.gate_skip(i);
        }
        let t = RunTrace::from_buffers(vec![b]);
        assert!(t.truncated());
        let lane = &t.workers[0];
        let args: Vec<u64> = lane.events.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9], "oldest dropped first, order kept");
        assert_eq!(
            t.count(TraceEventKind::GateSkip),
            10,
            "counts survive truncation"
        );
    }

    #[test]
    fn timestamps_are_monotone_within_a_lane() {
        let mut b = full_with_capacity(64);
        for i in 0..20u64 {
            b.eval_start(i);
            b.eval_end(i);
        }
        let t = RunTrace::from_buffers(vec![b]);
        let ts: Vec<u64> = t.workers[0].events.iter().map(|e| e.t_us).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn chrome_export_pairs_evals_and_names_lanes() {
        let mut b = full_with_capacity(64);
        b.eval_start(7);
        b.eval_end(7);
        b.steal(2);
        let json = RunTrace::from_buffers(vec![b]).to_chrome_json();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(
            json.contains("\"name\":\"eval\"") && json.contains("\"ph\":\"X\""),
            "{json}"
        );
        assert!(json.contains("\"name\":\"steal\""), "{json}");
    }

    #[test]
    fn chrome_export_skips_orphaned_eval_ends() {
        let mut b = full_with_capacity(1);
        b.eval_start(3);
        b.eval_end(3); // overwrites the start — the end is orphaned
        let json = RunTrace::from_buffers(vec![b]).to_chrome_json();
        assert!(!json.contains("\"name\":\"eval\""), "{json}");
    }

    #[test]
    fn phase_profile_sums_eval_time_and_percentiles() {
        let mut b = full_with_capacity(64);
        for i in 0..5u64 {
            b.eval_start(i);
            b.eval_end(i);
        }
        let p = RunTrace::from_buffers(vec![b]).phase_profile();
        assert_eq!(p.eval_count, 5);
        assert!(p.eval_p50_us <= p.eval_p95_us && p.eval_p95_us <= p.eval_p99_us);
        assert!(!p.summary().is_empty());
    }

    #[test]
    fn parse_accepts_the_three_levels() {
        assert_eq!(TraceConfig::parse("off").level, TraceLevel::Off);
        assert_eq!(TraceConfig::parse("counters").level, TraceLevel::Counters);
        assert_eq!(TraceConfig::parse("full").level, TraceLevel::Full);
    }

    #[test]
    #[should_panic(expected = "CFA_TRACE")]
    fn parse_rejects_unknown_levels() {
        let _ = TraceConfig::parse("verbose");
    }
}

//! A delta-driven worklist engine for single-threaded-store abstract
//! interpreters.
//!
//! The transfer function of §3.7 re-runs *every* reachable configuration
//! whenever the store grows. This engine implements the standard
//! refinement — re-enqueue only the dependents of addresses whose flow
//! sets grew — on top of the interned, zero-copy store representation of
//! [`crate::store`]:
//!
//! * configurations are interned to dense indices, and **dependency sets
//!   are plain `Vec`s indexed by interned address id** (no hashing on
//!   the scheduling path);
//! * a step's recorded reads are **deduplicated** before dependency
//!   registration, and each dependency list stays sorted/unique;
//! * dependency lists are **pruned**: when a configuration's read set
//!   shrinks on re-evaluation, it is removed from the dependent lists of
//!   the addresses it no longer reads, so growth of a dropped address
//!   cannot re-enqueue it for nothing;
//! * every configuration remembers the store **epoch** at its last
//!   evaluation; a popped configuration whose read addresses have not
//!   grown past that epoch is skipped outright (its re-evaluation would
//!   be a provable no-op). With exact (pruned) dependency lists every
//!   sequential wakeup is justified, so this gate is a safety net here —
//!   it is *load-bearing* in [`crate::parallel`], whose dedup-free wake
//!   queues make duplicate wakeups routine;
//! * joins report the **delta of newly added value ids**, surfaced in
//!   [`FixpointResult::delta_facts`] — the amount of real lattice growth
//!   the run performed, as opposed to raw join calls;
//! * re-evaluations are **semi-naive**: the engine hands the machine the
//!   store epoch of the configuration's last evaluation (its
//!   *baseline*), and [`TrackedStore::read_with_delta`] splits every
//!   read into `(all, new)` — the full flow set plus the values added
//!   since the baseline. Machines use the split at application sites to
//!   join `new closures × all args ∪ old closures × new args` instead
//!   of the full product (the Datalog semi-naive rule instantiated for
//!   transfer functions). First visits and snapshot loss
//!   ([`crate::store::AbsStore::trim_delta_logs`]) degrade to `new =
//!   all`, i.e. full re-evaluation; [`EvalMode::FullReeval`] forces
//!   that degradation everywhere, which is the pre-semi-naive engine,
//!   kept selectable for differential tests and benchmarks.
//!
//! The computed fixpoint is identical to the naive §3.7 transfer and to
//! the original clone-based engine (the fixed point of a monotone
//! function is unique); only the iteration order differs. The retained
//! original engine in [`crate::reference`] and the differential tests in
//! `tests/engine_differential.rs` enforce exactly that.
//!
//! The engine is generic over the abstract machine — the CPS k-CFA,
//! m-CFA / polynomial-k-CFA, and Featherweight Java analyzers all drive
//! their transitions through it.

use crate::fxhash::FxHashMap;
use crate::store::{AbsStore, Flow, FlowSet};
use std::collections::VecDeque;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// An abstract transition system with a single-threaded store.
pub trait AbstractMachine {
    /// A configuration: the store-less part of an abstract state (e.g.
    /// `(call, β̂, t̂)` for k-CFA). `Debug` is required so a panicking
    /// evaluation can name the configuration in [`Status::Aborted`].
    type Config: Clone + Eq + Hash + std::fmt::Debug;
    /// Abstract addresses.
    type Addr: Clone + Eq + Hash;
    /// Abstract values.
    type Val: Clone + Eq + Hash + Ord;

    /// The initial configuration `ς̂₀`.
    fn initial(&self) -> Self::Config;

    /// Seeds the store before exploration begins (e.g. the Featherweight
    /// Java machine pre-allocates the `Main` receiver and the halt
    /// continuation). Default: nothing.
    fn seed(&mut self, store: &mut TrackedStore<'_, Self::Addr, Self::Val>) {
        let _ = store;
    }

    /// Computes the successors of `config`, reading and joining through
    /// `store` (which records dependencies), pushing successors into
    /// `out`.
    fn step(
        &mut self,
        config: &Self::Config,
        store: &mut TrackedStore<'_, Self::Addr, Self::Val>,
        out: &mut Vec<Self::Config>,
    );
}

/// A flow set split against a configuration's baseline epoch: the full
/// current set plus the part that arrived after the baseline.
///
/// On a first visit (or after snapshot loss) `new` equals `all`, so
/// semi-naive code degrades to a full evaluation without a special
/// case. `new` always over-approximates the truly unseen values —
/// re-processing an already-seen value is a harmless idempotent join —
/// and both flows are sorted id sets.
#[derive(Clone, Debug)]
pub struct DeltaFlow {
    /// The full current flow set.
    pub all: Flow,
    /// The values added since the reader's baseline (== `all` when no
    /// baseline applies).
    pub new: Flow,
}

impl DeltaFlow {
    /// The empty split (`⊥`/`⊥`).
    pub fn empty() -> Self {
        DeltaFlow {
            all: Flow::empty(),
            new: Flow::empty(),
        }
    }

    /// Wraps a machine-*constructed* flow (literals, λ-closures, primop
    /// results): new on a first (full) visit, already-seen on
    /// re-evaluations — the same construction flowed last time.
    pub fn constructed(flow: Flow, first_visit: bool) -> Self {
        let new = if first_visit {
            flow.clone()
        } else {
            Flow::empty()
        };
        DeltaFlow { all: flow, new }
    }

    /// Upgrades this closure flow to all-new when every id in
    /// `results` is new: the reader's previous evaluation may then have
    /// produced no results at all, in which case the closures here were
    /// never applied and must receive the full product rather than the
    /// semi-naive narrowing. (If a previous evaluation *did* have
    /// results, at least one old id survives in `results.all` — unless
    /// every old id also re-arrived through a new source, where the
    /// upgrade is a harmless idempotent over-approximation.)
    pub fn upgraded_if_all_new(self, results: &DeltaFlow) -> DeltaFlow {
        if results.new.len() == results.all.len() {
            DeltaFlow {
                all: self.all.clone(),
                new: self.all,
            }
        } else {
            self
        }
    }

    /// Whether anything new arrived since the baseline.
    pub fn has_new(&self) -> bool {
        !self.new.is_empty()
    }

    /// Whether `id` is part of the post-baseline growth.
    pub fn is_new(&self, id: u32) -> bool {
        self.new.contains(id)
    }
}

/// A store view that records which addresses were read (for dependency
/// tracking) and which grew (to schedule re-analysis).
///
/// Reads hand out zero-copy [`Flow`] views; joins are id-level sorted
/// merges. Use [`TrackedStore::val`] to resolve an id from a flow back
/// to the abstract value it denotes. When the engine re-evaluates a
/// configuration it sets the view's *baseline* — the store epoch of the
/// configuration's previous evaluation — which powers the semi-naive
/// [`TrackedStore::read_with_delta`] split.
///
/// The view is backend-polymorphic: the sequential engine and the
/// replicated parallel workers wrap a thread-local [`AbsStore`]; the
/// sharded parallel workers wrap a [`crate::shardstore::ShardView`]
/// onto the globally shared store (reads snapshot any row, writes go
/// through the shared row, and growth notifications route to the row's
/// owner shard). Machines see one API either way.
#[derive(Debug)]
pub struct TrackedStore<'a, A, V> {
    view: View<'a, A, V>,
    delta_facts: u64,
    delta_applies: u64,
}

#[derive(Debug)]
enum View<'a, A, V> {
    Local(LocalView<'a, A, V>),
    Shard(crate::shardstore::ShardView<'a, A, V>),
}

/// The single-owner backend: a mutable borrow of one [`AbsStore`].
#[derive(Debug)]
struct LocalView<'a, A, V> {
    store: &'a mut AbsStore<A, V>,
    /// Epoch of the reader's last complete evaluation (None: first
    /// visit, or delta evaluation disabled).
    baseline: Option<u64>,
    reads: Vec<u32>,
    grew: Vec<u32>,
    delta: Vec<u32>,
}

impl<'a, A: Eq + Hash + Clone, V: Eq + Hash + Clone + Ord> TrackedStore<'a, A, V> {
    fn new(store: &'a mut AbsStore<A, V>) -> Self {
        Self::wrap(store, None, Vec::new(), Vec::new(), Vec::new())
    }

    /// Wraps `store` reusing caller-provided scratch buffers (the
    /// parallel engine's workers recycle theirs across steps, exactly
    /// like [`run_fixpoint`] does).
    pub(crate) fn wrap(
        store: &'a mut AbsStore<A, V>,
        baseline: Option<u64>,
        reads: Vec<u32>,
        grew: Vec<u32>,
        delta: Vec<u32>,
    ) -> Self {
        TrackedStore {
            view: View::Local(LocalView {
                store,
                baseline,
                reads,
                grew,
                delta,
            }),
            delta_facts: 0,
            delta_applies: 0,
        }
    }

    /// Wraps a sharded worker's view of the global store.
    pub(crate) fn wrap_shard(view: crate::shardstore::ShardView<'a, A, V>) -> Self {
        TrackedStore {
            view: View::Shard(view),
            delta_facts: 0,
            delta_applies: 0,
        }
    }

    /// Disassembles a local view into its tracking state: `(reads,
    /// grew, delta, delta_facts, delta_applies)`.
    pub(crate) fn into_parts(self) -> (Vec<u32>, Vec<u32>, Vec<u32>, u64, u64) {
        match self.view {
            View::Local(v) => (
                v.reads,
                v.grew,
                v.delta,
                self.delta_facts,
                self.delta_applies,
            ),
            View::Shard(_) => unreachable!("into_parts is the local-backend accessor"),
        }
    }

    /// Disassembles a sharded view: `(shard view, delta_facts,
    /// delta_applies)`.
    pub(crate) fn into_shard_parts(self) -> (crate::shardstore::ShardView<'a, A, V>, u64, u64) {
        match self.view {
            View::Shard(v) => (v, self.delta_facts, self.delta_applies),
            View::Local(_) => unreachable!("into_shard_parts is the sharded-backend accessor"),
        }
    }

    /// Reads the flow set at `addr`, recording the dependency.
    pub fn read(&mut self, addr: &A) -> Flow {
        match &mut self.view {
            View::Local(v) => {
                let id = v.store.addr_id(addr);
                v.reads.push(id);
                v.store.flow_by_id(id)
            }
            View::Shard(v) => v.read(addr),
        }
    }

    /// Reads the flow set at `addr` split against the baseline: the
    /// full set and the values added since this configuration's last
    /// evaluation. Records the dependency exactly like
    /// [`TrackedStore::read`].
    ///
    /// Without a baseline (first visit, [`EvalMode::FullReeval`]) or
    /// when the store's delta logs were trimmed past the baseline,
    /// `new == all`.
    pub fn read_with_delta(&mut self, addr: &A) -> DeltaFlow {
        match &mut self.view {
            View::Local(v) => {
                let id = v.store.addr_id(addr);
                v.reads.push(id);
                let all = v.store.flow_by_id(id);
                let new = match v.baseline {
                    Some(epoch) => v
                        .store
                        .delta_flow_since(id, epoch)
                        .unwrap_or_else(|| all.clone()),
                    None => all.clone(),
                };
                DeltaFlow { all, new }
            }
            View::Shard(v) => v.read_with_delta(addr),
        }
    }

    /// Whether this evaluation has no usable baseline — machines must
    /// treat every value as new (full evaluation).
    pub fn first_visit(&self) -> bool {
        match &self.view {
            View::Local(v) => v.baseline.is_none(),
            View::Shard(v) => v.first_visit(),
        }
    }

    /// Records one application site processed in narrowed (semi-naive)
    /// form — i.e. an already-seen closure paired only with argument
    /// deltas, or skipped outright. Surfaced as
    /// [`FixpointResult::delta_applies`].
    pub fn note_delta_apply(&mut self) {
        self.delta_applies += 1;
    }

    /// Joins values into `addr`, recording growth.
    pub fn join(&mut self, addr: &A, values: impl IntoIterator<Item = V>) {
        let ids: Vec<u32> = values.into_iter().map(|v| self.intern(v)).collect();
        self.join_flow(addr, &Flow::from_ids(ids));
    }

    /// Joins an id-level flow into `addr` — the zero-copy path for
    /// "copy the values at one address to another".
    pub fn join_flow(&mut self, addr: &A, flow: &Flow) {
        match &mut self.view {
            View::Local(v) => {
                let id = v.store.addr_id(addr);
                v.delta.clear();
                if v.store.join_ids(id, flow.ids(), &mut v.delta) {
                    v.grew.push(id);
                    self.delta_facts += v.delta.len() as u64;
                }
            }
            View::Shard(v) => {
                self.delta_facts += v.join_ids(addr, flow.ids());
            }
        }
    }

    /// Resolves a value id from a [`Flow`] to the value it denotes.
    pub fn val(&self, id: u32) -> &V {
        match &self.view {
            View::Local(v) => v.store.val(id),
            View::Shard(v) => v.val(id),
        }
    }

    /// Interns a value, returning its id (for building result flows).
    pub fn intern(&mut self, value: V) -> u32 {
        match &mut self.view {
            View::Local(v) => v.store.val_id(value),
            View::Shard(v) => v.intern(value),
        }
    }

    /// Materializes a flow into a value set (for machine-side metric
    /// accumulators; not a hot-path operation).
    pub fn materialize(&self, flow: &Flow) -> FlowSet<V> {
        match &self.view {
            View::Local(v) => v.store.materialize(flow),
            View::Shard(v) => v.materialize(flow),
        }
    }

    /// Reads without recording a dependency. Use only for metrics, never
    /// for values that influence successor computation.
    pub fn peek(&self, addr: &A) -> Flow {
        match &self.view {
            View::Local(v) => v.store.read_flow(addr),
            View::Shard(v) => v.peek(addr),
        }
    }
}

/// How woken configurations are re-evaluated.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum EvalMode {
    /// Semi-naive: re-evaluations receive a baseline epoch, so
    /// delta-aware machines join only the growth (the default).
    #[default]
    SemiNaive,
    /// Full re-evaluation: no baseline is ever passed, so every
    /// evaluation behaves like a first visit. This is exactly the
    /// pre-semi-naive engine; differential tests and `engine_bench`
    /// run it against [`EvalMode::SemiNaive`] to prove the fixpoints
    /// match and measure the saved join traffic.
    FullReeval,
}

/// Why the engine stopped.
///
/// Every non-[`Completed`](Status::Completed) status still comes with a
/// well-formed *partial* [`FixpointResult`]: the store holds only facts
/// the transfer functions legitimately derived, so by monotonicity it
/// is a subset of the completed run's fixpoint (`tests/faults.rs` pins
/// exactly that).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Status {
    /// The least fixed point was reached.
    Completed,
    /// The iteration budget was exhausted first.
    IterationLimit,
    /// The wall-clock deadline passed first.
    TimedOut,
    /// The run observed its [`CancelToken`] and stopped cooperatively.
    Cancelled,
    /// The run was aborted: a transfer function panicked (caught and
    /// contained — the process and sibling runs survive), or the stall
    /// watchdog detected a hung scheduler.
    Aborted {
        /// `Debug` rendering of the configuration whose evaluation
        /// panicked; [`Status::STALL_WATCHDOG`] when the stall watchdog
        /// fired instead.
        config: String,
        /// The panic payload (or the watchdog's diagnostic dump).
        message: String,
    },
}

impl Status {
    /// The sentinel `config` of an [`Status::Aborted`] raised by the
    /// stall watchdog rather than a panicking evaluation.
    pub const STALL_WATCHDOG: &'static str = "<stall-watchdog>";

    /// Whether the analysis ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, Status::Completed)
    }

    /// Whether the run was aborted (panic or watchdog) — the one status
    /// that signals a *fault* rather than an exhausted budget or an
    /// external request.
    pub fn is_aborted(&self) -> bool {
        matches!(self, Status::Aborted { .. })
    }
}

/// A shared cooperative-cancellation flag.
///
/// Clone it freely: all clones observe the same flag. Hand one to a run
/// via [`EngineLimits::cancel`] and flip it from any thread with
/// [`CancelToken::cancel`]; the run stops with [`Status::Cancelled`] at
/// its next pop-keyed limit check, returning the usual well-formed
/// partial result.
///
/// ```
/// use cfa_core::engine::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.cancelled
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// Resource limits (and scheduling knobs) for a run.
///
/// # Examples
///
/// Limits compose with struct-update syntax; the default is unbounded:
///
/// ```
/// use cfa_core::engine::EngineLimits;
/// use std::time::Duration;
///
/// let limits = EngineLimits {
///     max_iterations: 10_000,
///     time_budget: Some(Duration::from_secs(5)),
///     ..EngineLimits::default()
/// };
/// assert_eq!(limits.max_iterations, 10_000);
/// assert_eq!(EngineLimits::default().max_iterations, u64::MAX);
/// assert_eq!(EngineLimits::iterations(100).max_iterations, 100);
/// ```
#[derive(Clone, Debug)]
pub struct EngineLimits {
    /// Maximum number of configuration evaluations.
    pub max_iterations: u64,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Optional cooperative-cancellation token, checked at the same
    /// pop-keyed cadence as the wall clock. `None` (the default) means
    /// the run is not externally cancellable.
    pub cancel: Option<CancelToken>,
    /// Stall-watchdog threshold for the parallel fabric: if the pending
    /// counter stays nonzero while *every* worker is idle for longer
    /// than this, the run aborts with a diagnostic dump instead of
    /// hanging forever ([`Status::Aborted`] with
    /// [`Status::STALL_WATCHDOG`]). All-idle-with-work-pending is a
    /// terminal state — idle workers send no messages, so nothing can
    /// wake them — hence a true scheduler bug, never normal latency.
    /// `None` disables the watchdog; the sequential engine ignores it.
    pub stall_timeout: Option<Duration>,
    /// Optional deterministic fault plan
    /// ([`crate::fabric::FaultPlan`]): injected panics, forced
    /// cancellation, and forced delta-log trims, keyed on exact pop and
    /// evaluation counts. `None` (the default) arms nothing and costs
    /// one branch per pop.
    pub fault_plan: Option<std::sync::Arc<crate::fabric::FaultPlan>>,
    /// Optional store-bytes watermark: when the (approximate) bytes
    /// held by a store's **delta logs** — the portion a trim reclaims,
    /// tracked incrementally so the check is O(1) — exceed this, the
    /// logs are trimmed ([`AbsStore::trim_delta_logs`]) to reclaim the
    /// doubled-row memory. Configurations whose semi-naive baseline
    /// predates the trim hit the snapshot-loss fallback and soundly
    /// re-evaluate in full (`new == all`). `None` (the default) never
    /// trims.
    pub store_bytes_watermark: Option<usize>,
    /// Wake-batch coalescing policy of the parallel fabric
    /// ([`crate::fabric::WakeBatching`]) — how much of its message
    /// inbox a worker drains before returning to evaluation. Not a
    /// resource limit, but carried here so every parallel entry point
    /// inherits the scheduling knob without another parameter; the
    /// sequential engine (which has no inbox) ignores it.
    pub wake_batching: crate::fabric::WakeBatching,
    /// Telemetry configuration ([`crate::telemetry::TraceConfig`]):
    /// off (the default — one dead branch per would-be event),
    /// counters only, or full per-worker event rings merged into
    /// [`FixpointResult::trace`]. The CLI reads it from `CFA_TRACE`.
    pub trace: crate::telemetry::TraceConfig,
}

impl Default for EngineLimits {
    fn default() -> Self {
        EngineLimits {
            max_iterations: u64::MAX,
            time_budget: None,
            cancel: None,
            stall_timeout: Some(Duration::from_secs(30)),
            fault_plan: None,
            store_bytes_watermark: None,
            wake_batching: crate::fabric::WakeBatching::default(),
            trace: crate::telemetry::TraceConfig::default(),
        }
    }
}

impl EngineLimits {
    /// A limit of `max_iterations` configuration evaluations.
    pub fn iterations(max_iterations: u64) -> Self {
        EngineLimits {
            max_iterations,
            ..Self::default()
        }
    }

    /// A wall-clock budget.
    pub fn timeout(budget: Duration) -> Self {
        EngineLimits {
            time_budget: Some(budget),
            ..Self::default()
        }
    }

    /// A store-bytes watermark above which delta logs are trimmed.
    pub fn store_watermark(bytes: usize) -> Self {
        EngineLimits {
            store_bytes_watermark: Some(bytes),
            ..Self::default()
        }
    }

    /// Unbounded limits observing `token` — the run stops with
    /// [`Status::Cancelled`] once the token is flipped.
    pub fn cancellable(token: CancelToken) -> Self {
        EngineLimits {
            cancel: Some(token),
            ..Self::default()
        }
    }

    /// Limits read from the environment, for operational entry points
    /// (the CLI): `CFA_MAX_ITERS` (evaluation budget),
    /// `CFA_TIME_BUDGET_MS` (wall-clock budget in milliseconds),
    /// `CFA_FAULT_PLAN` (a deterministic fault plan — see
    /// [`crate::fabric::FaultPlan::parse`]; a `cancel_pop=N` clause
    /// flips the run's own armed token, which every engine observes
    /// exactly like an external [`CancelToken`]), and `CFA_TRACE`
    /// (`off` / `counters` / `full` — see
    /// [`crate::telemetry::TraceConfig::parse`]). Unset variables leave
    /// the default (unbounded, tracing off); a malformed value panics
    /// with the offending text, since silently ignoring an operator's
    /// budget would be worse.
    pub fn from_env() -> Self {
        let mut limits = Self::default();
        if let Ok(v) = std::env::var("CFA_MAX_ITERS") {
            limits.max_iterations = v
                .parse()
                .unwrap_or_else(|e| panic!("CFA_MAX_ITERS={v:?}: {e}"));
        }
        if let Ok(v) = std::env::var("CFA_TIME_BUDGET_MS") {
            let ms: u64 = v
                .parse()
                .unwrap_or_else(|e| panic!("CFA_TIME_BUDGET_MS={v:?}: {e}"));
            limits.time_budget = Some(Duration::from_millis(ms));
        }
        if let Ok(v) = std::env::var("CFA_FAULT_PLAN") {
            let plan = crate::fabric::FaultPlan::parse(&v)
                .unwrap_or_else(|e| panic!("CFA_FAULT_PLAN={v:?}: {e}"));
            limits.fault_plan = Some(std::sync::Arc::new(plan));
        }
        if let Ok(v) = std::env::var("CFA_TRACE") {
            limits.trace = crate::telemetry::TraceConfig::parse(&v);
        }
        limits
    }
}

/// Scheduler observability counters, accumulated across workers.
///
/// The sequential engine reports only `store_resident_bytes`; the
/// parallel backends fill in the scheduling traffic (ROADMAP: "measure
/// steal rates and idle spins first"). All counters are totals over the
/// whole run except `max_inbox_depth`, which is the deepest single
/// inbox drain any worker performed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Successful steals (a task taken from another worker's queue).
    pub steals: u64,
    /// Steal attempts that scanned every victim and found nothing.
    pub failed_steals: u64,
    /// Idle loop iterations with no task, no message, and no steal.
    pub idle_spins: u64,
    /// Inter-worker messages processed (fact batches for the replicated
    /// backend; join/dep/wake messages for the sharded backend).
    pub inbox_batches: u64,
    /// Non-empty inbox drains performed (`inbox_batches /
    /// inbox_drains` is the average batch one drain delivered;
    /// [`crate::fabric::WakeBatching::Adaptive`] sizes its bounded
    /// drains by the average *observed* depth, which delivered batch
    /// sizes under-report once the bound kicks in).
    pub inbox_drains: u64,
    /// Deepest inbox observed at any single drain (messages waiting,
    /// whether or not that drain delivered them all).
    pub max_inbox_depth: u64,
    /// Approximate store-resident bytes at quiescence: the one store of
    /// a sequential run, the *sum over replicas* for the replicated
    /// parallel backend (that is the memory the broadcast design pays),
    /// the single shared store for the sharded backend.
    pub store_resident_bytes: u64,
}

impl SchedStats {
    /// Folds one worker's counters into the run totals.
    pub(crate) fn absorb(&mut self, other: &SchedStats) {
        self.steals += other.steals;
        self.failed_steals += other.failed_steals;
        self.idle_spins += other.idle_spins;
        self.inbox_batches += other.inbox_batches;
        self.inbox_drains += other.inbox_drains;
        self.max_inbox_depth = self.max_inbox_depth.max(other.max_inbox_depth);
        self.store_resident_bytes += other.store_resident_bytes;
    }
}

/// The engine's output: reached configurations, final store, statistics.
#[derive(Debug)]
pub struct FixpointResult<C, A, V> {
    /// All reached configurations, in first-visit order.
    pub configs: Vec<C>,
    /// The final single-threaded store.
    pub store: AbsStore<A, V>,
    /// Why the run stopped.
    pub status: Status,
    /// Number of configuration evaluations (including re-evaluations).
    pub iterations: u64,
    /// Popped configurations skipped because no read address had grown
    /// past their last-evaluation epoch. Zero for every monotone machine
    /// under [`run_fixpoint`] (pruned dependency lists make sequential
    /// wakeups exact); routinely positive under
    /// [`crate::parallel::run_fixpoint_parallel`], where the epoch gate
    /// is the conflict detector for duplicate wakeups.
    pub skipped: u64,
    /// Dependent re-enqueues caused by address growth (wakeups). The
    /// stale-dependency regression tests count these.
    pub wakeups: u64,
    /// Total `(address, value)` facts added across all joins — the real
    /// lattice growth (compare with the raw join count in the store).
    pub delta_facts: u64,
    /// Application sites processed in narrowed semi-naive form (an
    /// already-seen closure paired with argument deltas only, or
    /// skipped because nothing it reads grew). Zero under
    /// [`EvalMode::FullReeval`] and for machines that never call
    /// [`TrackedStore::note_delta_apply`].
    pub delta_applies: u64,
    /// Scheduler observability: steals, idle spins, message traffic,
    /// and approximate store-resident bytes.
    pub sched: SchedStats,
    /// Wall-clock time of the run — counted from the run's *first
    /// evaluation quantum*, not from submission, so a pool-queued run's
    /// wait never eats its `time_budget`.
    pub elapsed: Duration,
    /// Time the run spent admission-queued before its first quantum.
    /// Always zero for the direct (non-pooled) entry points, which
    /// start executing at submission; the analysis pool records the
    /// submission→activation gap here, *outside* `elapsed` and the
    /// time-budget clock.
    pub queue_wait: Duration,
    /// The merged per-worker telemetry rings
    /// ([`crate::telemetry::RunTrace`]): one lane per worker under
    /// `CFA_TRACE=full`, counters only under `counters`, empty (zero
    /// lanes) when tracing was off.
    pub trace: crate::telemetry::RunTrace,
}

impl<C, A, V> FixpointResult<C, A, V> {
    /// Number of distinct configurations reached.
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }
}

/// Renders a caught panic payload for [`Status::Aborted`]: `panic!`
/// with a literal yields `&str`, formatted panics yield `String`,
/// anything else gets a placeholder.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Registers config `i` in the dependency lists of its just-recorded
/// read set and prunes it from the lists of addresses it no longer
/// reads — the sequential and parallel engines share this exact logic.
///
/// `reads_buf` holds the step's raw reads; it is sorted and deduped
/// here, swapped into `config_reads[i]` as the config's read set for
/// the epoch gate, and hands back the previous read set as scratch.
/// Without the pruning walk, dep lists are insert-only and growth of a
/// dropped address re-enqueues the config for a guaranteed no-op.
pub(crate) fn register_deps(
    deps: &mut Vec<Vec<usize>>,
    config_reads: &mut [Vec<u32>],
    i: usize,
    reads_buf: &mut Vec<u32>,
) {
    reads_buf.sort_unstable();
    reads_buf.dedup();
    // Prune dropped addresses: walk the previous read set (sorted,
    // unique) against the new one and deregister this config from
    // every address it no longer reads.
    {
        let old = &config_reads[i];
        let mut ni = 0;
        for &a in old {
            while ni < reads_buf.len() && reads_buf[ni] < a {
                ni += 1;
            }
            if ni < reads_buf.len() && reads_buf[ni] == a {
                continue;
            }
            if let Some(dependents) = deps.get_mut(a as usize) {
                if let Ok(pos) = dependents.binary_search(&i) {
                    dependents.remove(pos);
                }
            }
        }
    }
    for &a in reads_buf.iter() {
        if deps.len() <= a as usize {
            deps.resize_with(a as usize + 1, Vec::new);
        }
        let dependents = &mut deps[a as usize];
        if let Err(pos) = dependents.binary_search(&i) {
            dependents.insert(pos, i);
        }
    }
    std::mem::swap(&mut config_reads[i], reads_buf);
}

/// Runs `machine` to its least fixed point (or until a limit fires),
/// with semi-naive re-evaluation ([`EvalMode::SemiNaive`]).
///
/// # Examples
///
/// ```
/// use cfa_core::engine::{run_fixpoint, EngineLimits, Status};
/// use cfa_core::kcfa::KCfaMachine;
///
/// let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
/// let r = run_fixpoint(&mut KCfaMachine::new(&p, 1), EngineLimits::default());
/// assert_eq!(r.status, Status::Completed);
/// assert!(r.store.fact_count() > 0, "the identity application binds x");
/// ```
pub fn run_fixpoint<M: AbstractMachine>(
    machine: &mut M,
    limits: EngineLimits,
) -> FixpointResult<M::Config, M::Addr, M::Val> {
    run_fixpoint_with(machine, limits, EvalMode::SemiNaive)
}

/// Runs `machine` to its least fixed point under an explicit
/// [`EvalMode`]. The computed fixpoint is mode-independent (it is the
/// unique least fixed point); the mode only changes how much work
/// re-evaluations redo.
pub fn run_fixpoint_with<M: AbstractMachine>(
    machine: &mut M,
    limits: EngineLimits,
    mode: EvalMode,
) -> FixpointResult<M::Config, M::Addr, M::Val> {
    let start = Instant::now();
    let mut trace = crate::telemetry::TraceBuffer::new(limits.trace);
    trace.set_origin(start);
    let mut store: AbsStore<M::Addr, M::Val> = AbsStore::new();
    let mut configs: Vec<M::Config> = Vec::new();
    let mut index: FxHashMap<M::Config, usize> = FxHashMap::default();
    // Dependents of each address, indexed by interned address id; each
    // list is sorted and duplicate-free.
    let mut deps: Vec<Vec<usize>> = Vec::new();
    // Per config: the read set of its last evaluation and the store
    // epoch that evaluation started at (None = never evaluated).
    let mut config_reads: Vec<Vec<u32>> = Vec::new();
    let mut last_run_epoch: Vec<Option<u64>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued: Vec<bool> = Vec::new();

    let intern = |cfg: M::Config,
                  configs: &mut Vec<M::Config>,
                  index: &mut FxHashMap<M::Config, usize>,
                  config_reads: &mut Vec<Vec<u32>>,
                  last_run_epoch: &mut Vec<Option<u64>>,
                  queued: &mut Vec<bool>|
     -> (usize, bool) {
        if let Some(&i) = index.get(&cfg) {
            (i, false)
        } else {
            let i = configs.len();
            configs.push(cfg.clone());
            index.insert(cfg, i);
            config_reads.push(Vec::new());
            last_run_epoch.push(None);
            queued.push(false);
            (i, true)
        }
    };

    {
        let mut tracked = TrackedStore::new(&mut store);
        machine.seed(&mut tracked);
    }
    let (root, _) = intern(
        machine.initial(),
        &mut configs,
        &mut index,
        &mut config_reads,
        &mut last_run_epoch,
        &mut queued,
    );
    queue.push_back(root);
    queued[root] = true;

    let mut iterations: u64 = 0;
    let mut skipped: u64 = 0;
    let mut wakeups: u64 = 0;
    let mut delta_facts: u64 = 0;
    let mut delta_applies: u64 = 0;
    let mut status = Status::Completed;
    let mut successors: Vec<M::Config> = Vec::new();
    // Reused scratch buffers for the per-step tracking vectors.
    let (mut reads_buf, mut grew_buf, mut delta_buf) = (Vec::new(), Vec::new(), Vec::new());
    // Fault-injection hooks (None in production runs — one dead branch
    // per pop), armed for exactly this run: per-run counters and a
    // per-run cancel token, so concurrent runs sharing cloned limits
    // never trip each other's clauses. The sequential engine counts as
    // worker 0.
    let armed = limits
        .fault_plan
        .as_deref()
        .map(crate::fabric::ArmedFaultPlan::new);

    while let Some(&_head) = queue.front() {
        // Check limits *before* popping: a config that the budget cuts
        // off stays queued, so `queued` accounting remains truthful and
        // a resumed run would not lose it.
        if iterations >= limits.max_iterations {
            status = Status::IterationLimit;
            break;
        }
        // Checking the clock every pop would dominate small runs; every
        // 256 is fine-grained enough for the harness timeouts. Keyed on
        // *total pops* (iterations + skipped), not iterations alone: a
        // long run of gate-skipped pops must still consult the clock, or
        // it could overrun `time_budget` without ever noticing.
        if (iterations + skipped).is_multiple_of(256) {
            let external = limits
                .cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled);
            if external
                || armed
                    .as_ref()
                    .is_some_and(crate::fabric::ArmedFaultPlan::cancelled)
            {
                status = Status::Cancelled;
                break;
            }
            if let Some(budget) = limits.time_budget {
                if start.elapsed() > budget {
                    status = Status::TimedOut;
                    break;
                }
            }
            // Store-bytes watermark: trim the delta logs when they
            // outgrow the budget (O(1) — the store tracks log bytes
            // incrementally). Baselines behind the trim degrade to
            // full re-evaluation via the snapshot-loss fallback —
            // sound, just less incremental.
            if let Some(watermark) = limits.store_bytes_watermark {
                if store.delta_log_bytes() > watermark {
                    store.trim_delta_logs();
                }
            }
        }
        let i = queue.pop_front().expect("peeked element present");
        queued[i] = false;

        if let Some(plan) = &armed {
            let faults = plan.on_pop();
            if faults.trim {
                store.trim_delta_logs();
            }
            // `leak` targets the parallel fabric's pending counter;
            // the sequential engine has no termination protocol to
            // violate, so that clause is a no-op here.
        }

        // Epoch gate: if this config already ran and none of the
        // addresses it read has grown since, re-evaluation is a no-op.
        // With pruned dependency lists every sequential wakeup implies
        // growth, so this never fires for monotone machines here; it
        // stays as a cheap guard (and because the parallel workers share
        // the same pop discipline, where it is the conflict detector).
        if let Some(epoch) = last_run_epoch[i] {
            if config_reads[i]
                .iter()
                .all(|&a| store.addr_epoch(a) <= epoch)
            {
                skipped += 1;
                trace.gate_skip(i as u64);
                continue;
            }
        }

        let epoch_at_start = store.epoch();
        iterations += 1;

        let config = configs[i].clone();
        successors.clear();
        reads_buf.clear();
        grew_buf.clear();
        // The baseline for semi-naive reads: the epoch this config's
        // previous evaluation started at. FullReeval withholds it, so
        // delta-aware machines degrade to the full product.
        let baseline = match mode {
            EvalMode::SemiNaive => last_run_epoch[i],
            EvalMode::FullReeval => None,
        };
        let mut tracked = TrackedStore::wrap(
            &mut store,
            baseline,
            std::mem::take(&mut reads_buf),
            std::mem::take(&mut grew_buf),
            std::mem::take(&mut delta_buf),
        );
        // Panic isolation: a panicking transfer function aborts the
        // *run*, not the process. Whatever the step joined before
        // panicking was legitimately derived (joins are idempotent and
        // monotone), so the partial store stays sound — the result is
        // simply a subset of the fixpoint.
        trace.eval_start(i as u64);
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(plan) = &armed {
                plan.on_eval(0);
            }
            machine.step(&config, &mut tracked, &mut successors)
        }));
        trace.eval_end(i as u64);
        let (reads, grew, delta, step_delta, step_applies) = tracked.into_parts();
        (reads_buf, grew_buf, delta_buf) = (reads, grew, delta);
        delta_facts += step_delta;
        delta_applies += step_applies;
        if let Err(payload) = step {
            status = Status::Aborted {
                config: format!("{config:?}"),
                message: panic_message(payload.as_ref()),
            };
            break;
        }
        last_run_epoch[i] = Some(epoch_at_start);

        register_deps(&mut deps, &mut config_reads, i, &mut reads_buf);

        for succ in successors.drain(..) {
            let (j, fresh) = intern(
                succ,
                &mut configs,
                &mut index,
                &mut config_reads,
                &mut last_run_epoch,
                &mut queued,
            );
            if fresh && !queued[j] {
                queued[j] = true;
                queue.push_back(j);
            }
        }

        grew_buf.sort_unstable();
        grew_buf.dedup();
        for &a in &grew_buf {
            if let Some(dependents) = deps.get(a as usize) {
                for &j in dependents {
                    if !queued[j] {
                        queued[j] = true;
                        queue.push_back(j);
                        wakeups += 1;
                    }
                }
            }
        }
    }

    let sched = SchedStats {
        store_resident_bytes: store.approx_bytes() as u64,
        ..SchedStats::default()
    };
    FixpointResult {
        configs,
        store,
        status,
        iterations,
        skipped,
        wakeups,
        delta_facts,
        delta_applies,
        sched,
        elapsed: start.elapsed(),
        queue_wait: Duration::ZERO,
        trace: crate::telemetry::RunTrace::from_buffers(vec![trace]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy machine: configs are integers 0..n; config i writes i to
    /// address i % 3 and steps to i+1; config n reads address 0.
    struct Counter {
        n: u32,
    }

    impl AbstractMachine for Counter {
        type Config = u32;
        type Addr = u32;
        type Val = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn step(
            &mut self,
            config: &u32,
            store: &mut TrackedStore<'_, u32, u32>,
            out: &mut Vec<u32>,
        ) {
            let c = *config;
            if c < self.n {
                store.join(&(c % 3), [c]);
                out.push(c + 1);
            } else {
                // Terminal config reads address 0, so it re-runs whenever
                // address 0 grows; the fixpoint must still terminate.
                let _ = store.read(&0);
            }
        }
    }

    #[test]
    fn reaches_fixpoint() {
        let mut m = Counter { n: 10 };
        let r = run_fixpoint(&mut m, EngineLimits::default());
        assert_eq!(r.status, Status::Completed);
        assert_eq!(r.config_count(), 11);
        assert_eq!(r.store.read(&0), [0u32, 3, 6, 9].into_iter().collect());
    }

    #[test]
    fn iteration_limit_fires() {
        let mut m = Counter { n: 1_000_000 };
        let r = run_fixpoint(&mut m, EngineLimits::iterations(100));
        assert_eq!(r.status, Status::IterationLimit);
        assert!(r.iterations <= 100);
    }

    #[test]
    fn timeout_fires() {
        struct Spin;
        impl AbstractMachine for Spin {
            type Config = u64;
            type Addr = u64;
            type Val = u64;
            fn initial(&self) -> u64 {
                0
            }
            fn step(&mut self, c: &u64, _s: &mut TrackedStore<'_, u64, u64>, out: &mut Vec<u64>) {
                std::thread::sleep(Duration::from_millis(1));
                out.push(c + 1);
            }
        }
        let r = run_fixpoint(&mut Spin, EngineLimits::timeout(Duration::from_millis(50)));
        assert_eq!(r.status, Status::TimedOut);
    }

    #[test]
    fn dependents_rerun_on_store_growth() {
        /// Config 0 reads addr 0 and, per value v seen, writes v+1 to
        /// addr 0 (capped) — convergence requires re-running config 0.
        struct Feedback;
        impl AbstractMachine for Feedback {
            type Config = u8;
            type Addr = u8;
            type Val = u8;
            fn initial(&self) -> u8 {
                0
            }
            fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
                if *c == 0 {
                    s.join(&0, [1u8]);
                    out.push(1);
                } else {
                    let seen = s.read(&0);
                    let next: Vec<u8> = seen
                        .iter()
                        .map(|id| *s.val(id))
                        .filter(|&v| v < 5)
                        .map(|v| v + 1)
                        .collect();
                    s.join(&0, next);
                }
            }
        }
        let r = run_fixpoint(&mut Feedback, EngineLimits::default());
        assert_eq!(r.status, Status::Completed);
        assert_eq!(r.store.read(&0), (1u8..=5).collect());
    }

    #[test]
    fn delta_facts_count_real_growth() {
        let mut m = Counter { n: 9 };
        let r = run_fixpoint(&mut m, EngineLimits::default());
        // Each of 0..9 lands once in one of three flow sets: 9 new facts.
        assert_eq!(r.delta_facts, 9);
        assert_eq!(r.store.fact_count(), 9);
    }

    /// Address 0 is a "mode" cell, address 1 a "noise" cell. The root
    /// config reads the mode and — only while the mode is still empty —
    /// also reads the noise cell; once the marker lands its read set
    /// shrinks to `{mode}`. A chain of follow-up configs then grows the
    /// noise cell repeatedly.
    struct ShrinkingReader {
        noise: u8,
    }

    impl AbstractMachine for ShrinkingReader {
        type Config = u8;
        type Addr = u8;
        type Val = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
            match *c {
                0 => {
                    let mode = s.read(&0);
                    if mode.is_empty() {
                        let _ = s.read(&1);
                    }
                    out.push(1);
                }
                1 => {
                    s.join(&0, [1u8]);
                    out.push(2);
                }
                n if n < 2 + self.noise => {
                    s.join(&1, [100 + n]);
                    out.push(n + 1);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn shrunk_read_sets_are_pruned_from_dep_lists() {
        // Regression test for insert-only dependency lists: before the
        // pruning fix, every noise-cell growth re-woke the root config
        // (wakeups = 1 + noise, each wakeup then epoch-gate-skipped).
        // With pruning, the root is deregistered from the noise cell the
        // moment its read set shrinks, so the only wakeup is the
        // justified one from the mode-cell marker.
        let noise = 8;
        let r = run_fixpoint(&mut ShrinkingReader { noise }, EngineLimits::default());
        assert_eq!(r.status, Status::Completed);
        assert_eq!(r.wakeups, 1, "only the mode-marker wakeup is justified");
        assert_eq!(
            r.skipped, 0,
            "no spurious wakeups left for the gate to absorb"
        );
        // The root ran twice (initial + marker wakeup); the chain configs
        // once each; the terminal config once.
        assert_eq!(r.iterations, 1 + (2 + noise as u64) + 1);
        assert_eq!(r.store.read(&1).len(), noise as usize);
    }

    /// A delta-aware copier: configs `1..=writes` grow address 0 one
    /// value at a time; config 100 (scheduled before any write lands)
    /// semi-naively copies **only the delta** of address 0 into
    /// address 1. If the engine ever hands it a wrong baseline — or the
    /// store loses part of a delta — address 1 ends up a strict subset
    /// of address 0.
    struct DeltaCopier {
        writes: u8,
    }

    impl AbstractMachine for DeltaCopier {
        type Config = u8;
        type Addr = u8;
        type Val = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
            match *c {
                0 => out.extend([100, 1]),
                100 => {
                    let d = s.read_with_delta(&0);
                    s.join_flow(&1, &d.new);
                }
                c if c <= self.writes => {
                    s.join(&0, [c]);
                    out.push(c + 1);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn semi_naive_delta_copy_reaches_the_full_fixpoint() {
        let r = run_fixpoint(&mut DeltaCopier { writes: 9 }, EngineLimits::default());
        assert_eq!(r.status, Status::Completed);
        assert_eq!(r.store.read(&0), (1u8..=9).collect());
        assert_eq!(
            r.store.read(&1),
            r.store.read(&0),
            "delta copies must accumulate to the full set"
        );
        assert!(r.wakeups >= 2, "the copier re-ran on growth");
    }

    #[test]
    fn eval_modes_compute_identical_fixpoints() {
        let semi = run_fixpoint_with(
            &mut DeltaCopier { writes: 9 },
            EngineLimits::default(),
            EvalMode::SemiNaive,
        );
        let full = run_fixpoint_with(
            &mut DeltaCopier { writes: 9 },
            EngineLimits::default(),
            EvalMode::FullReeval,
        );
        assert_eq!(semi.store.read(&0), full.store.read(&0));
        assert_eq!(semi.store.read(&1), full.store.read(&1));
        assert_eq!(semi.configs, full.configs, "identical exploration order");
        assert_eq!(semi.iterations, full.iterations, "identical scheduling");
        assert_eq!(semi.delta_facts, full.delta_facts, "same lattice growth");
        // Semi-naive feeds strictly fewer value ids through joins: every
        // re-run of the copier re-joins the whole set under FullReeval.
        assert!(
            semi.store.value_join_count() < full.store.value_join_count(),
            "semi-naive {} !< full {}",
            semi.store.value_join_count(),
            full.store.value_join_count()
        );
    }

    #[test]
    fn snapshot_loss_degrades_delta_reads_to_full() {
        let mut store: AbsStore<u8, u8> = AbsStore::new();
        store.join(0, [1, 2]);
        let lost_baseline = 0u64; // predates the growth below the trim
        store.trim_delta_logs();
        let kept_baseline = store.epoch();
        store.join(0, [3]);
        {
            let mut t = TrackedStore::wrap(
                &mut store,
                Some(lost_baseline),
                Vec::new(),
                Vec::new(),
                Vec::new(),
            );
            let d = t.read_with_delta(&0);
            assert_eq!(d.all.len(), 3);
            assert_eq!(d.new.len(), 3, "snapshot loss must degrade to new == all");
        }
        {
            let mut t = TrackedStore::wrap(
                &mut store,
                Some(kept_baseline),
                Vec::new(),
                Vec::new(),
                Vec::new(),
            );
            let d = t.read_with_delta(&0);
            assert_eq!(d.all.len(), 3);
            assert_eq!(
                d.new.len(),
                1,
                "post-trim baselines keep exact deltas: {:?}",
                d.new
            );
        }
    }

    #[test]
    fn full_reeval_never_passes_a_baseline() {
        struct AssertFirst {
            evals: u32,
        }
        impl AbstractMachine for AssertFirst {
            type Config = u8;
            type Addr = u8;
            type Val = u8;
            fn initial(&self) -> u8 {
                0
            }
            fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
                assert!(s.first_visit(), "FullReeval must withhold the baseline");
                self.evals += 1;
                match *c {
                    0 => {
                        let _ = s.read(&0);
                        out.push(1);
                    }
                    1 => s.join(&0, [1u8]),
                    _ => {}
                }
            }
        }
        let mut m = AssertFirst { evals: 0 };
        let r = run_fixpoint_with(&mut m, EngineLimits::default(), EvalMode::FullReeval);
        assert_eq!(r.status, Status::Completed);
        assert!(m.evals >= 3, "config 0 re-ran after the growth");
    }

    #[test]
    fn limit_cut_config_stays_queued_semantics() {
        // With a budget of exactly the config count minus one, the last
        // config must be reported as IterationLimit — not silently
        // dropped (the pre-pop limit check).
        let mut m = Counter { n: 5 };
        let full = run_fixpoint(&mut m, EngineLimits::default());
        let needed = full.iterations;
        let mut m2 = Counter { n: 5 };
        let cut = run_fixpoint(&mut m2, EngineLimits::iterations(needed - 1));
        assert_eq!(cut.status, Status::IterationLimit);
        let mut m3 = Counter { n: 5 };
        let exact = run_fixpoint(&mut m3, EngineLimits::iterations(needed));
        assert_eq!(exact.status, Status::Completed);
    }
}

//! A generic worklist engine for single-threaded-store abstract
//! interpreters.
//!
//! The transfer function of §3.7 re-runs *every* reachable configuration
//! whenever the store grows. This engine implements the standard
//! refinement: it tracks which configurations *read* which addresses and
//! re-enqueues only the dependents of addresses whose flow sets grew.
//! The result is identical (the fixed point of a monotone function is
//! unique); only the iteration order differs.
//!
//! The engine is generic over the abstract machine — the CPS k-CFA,
//! m-CFA / polynomial-k-CFA, and Featherweight Java analyzers all drive
//! their transitions through it.

use crate::store::{AbsStore, FlowSet};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::time::{Duration, Instant};

/// An abstract transition system with a single-threaded store.
pub trait AbstractMachine {
    /// A configuration: the store-less part of an abstract state (e.g.
    /// `(call, β̂, t̂)` for k-CFA).
    type Config: Clone + Eq + Hash;
    /// Abstract addresses.
    type Addr: Clone + Eq + Hash;
    /// Abstract values.
    type Val: Clone + Ord;

    /// The initial configuration `ς̂₀`.
    fn initial(&self) -> Self::Config;

    /// Seeds the store before exploration begins (e.g. the Featherweight
    /// Java machine pre-allocates the `Main` receiver and the halt
    /// continuation). Default: nothing.
    fn seed(&mut self, store: &mut TrackedStore<'_, Self::Addr, Self::Val>) {
        let _ = store;
    }

    /// Computes the successors of `config`, reading and joining through
    /// `store` (which records dependencies), pushing successors into
    /// `out`.
    fn step(
        &mut self,
        config: &Self::Config,
        store: &mut TrackedStore<'_, Self::Addr, Self::Val>,
        out: &mut Vec<Self::Config>,
    );
}

/// A store view that records which addresses were read (for dependency
/// tracking) and which grew (to schedule re-analysis).
#[derive(Debug)]
pub struct TrackedStore<'a, A, V> {
    store: &'a mut AbsStore<A, V>,
    reads: Vec<A>,
    grew: Vec<A>,
}

impl<'a, A: Eq + Hash + Clone, V: Ord + Clone> TrackedStore<'a, A, V> {
    /// Reads the flow set at `addr`, recording the dependency.
    pub fn read(&mut self, addr: &A) -> FlowSet<V> {
        self.reads.push(addr.clone());
        self.store.read(addr)
    }

    /// Joins values into `addr`, recording growth.
    pub fn join(&mut self, addr: A, values: impl IntoIterator<Item = V>) {
        if self.store.join(addr.clone(), values) {
            self.grew.push(addr);
        }
    }

    /// Reads without recording a dependency. Use only for metrics, never
    /// for values that influence successor computation.
    pub fn peek(&self, addr: &A) -> FlowSet<V> {
        self.store.read(addr)
    }
}

/// Why the engine stopped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Status {
    /// The least fixed point was reached.
    Completed,
    /// The iteration budget was exhausted first.
    IterationLimit,
    /// The wall-clock deadline passed first.
    TimedOut,
}

impl Status {
    /// Whether the analysis ran to completion.
    pub fn is_complete(self) -> bool {
        self == Status::Completed
    }
}

/// Resource limits for a run.
#[derive(Copy, Clone, Debug)]
pub struct EngineLimits {
    /// Maximum number of configuration evaluations.
    pub max_iterations: u64,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
}

impl Default for EngineLimits {
    fn default() -> Self {
        EngineLimits { max_iterations: u64::MAX, time_budget: None }
    }
}

impl EngineLimits {
    /// A limit of `max_iterations` configuration evaluations.
    pub fn iterations(max_iterations: u64) -> Self {
        EngineLimits { max_iterations, ..Self::default() }
    }

    /// A wall-clock budget.
    pub fn timeout(budget: Duration) -> Self {
        EngineLimits { time_budget: Some(budget), ..Self::default() }
    }
}

/// The engine's output: reached configurations, final store, statistics.
#[derive(Debug)]
pub struct FixpointResult<C, A, V> {
    /// All reached configurations, in first-visit order.
    pub configs: Vec<C>,
    /// The final single-threaded store.
    pub store: AbsStore<A, V>,
    /// Why the run stopped.
    pub status: Status,
    /// Number of configuration evaluations (including re-evaluations).
    pub iterations: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl<C, A, V> FixpointResult<C, A, V> {
    /// Number of distinct configurations reached.
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }
}

/// Runs `machine` to its least fixed point (or until a limit fires).
pub fn run_fixpoint<M: AbstractMachine>(
    machine: &mut M,
    limits: EngineLimits,
) -> FixpointResult<M::Config, M::Addr, M::Val> {
    let start = Instant::now();
    let mut store: AbsStore<M::Addr, M::Val> = AbsStore::new();
    let mut configs: Vec<M::Config> = Vec::new();
    let mut index: HashMap<M::Config, usize> = HashMap::new();
    let mut deps: HashMap<M::Addr, HashSet<usize>> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued: HashSet<usize> = HashSet::new();

    let intern = |cfg: M::Config,
                      configs: &mut Vec<M::Config>,
                      index: &mut HashMap<M::Config, usize>|
     -> (usize, bool) {
        if let Some(&i) = index.get(&cfg) {
            (i, false)
        } else {
            let i = configs.len();
            configs.push(cfg.clone());
            index.insert(cfg, i);
            (i, true)
        }
    };

    {
        let mut tracked =
            TrackedStore { store: &mut store, reads: Vec::new(), grew: Vec::new() };
        machine.seed(&mut tracked);
    }
    let (root, _) = intern(machine.initial(), &mut configs, &mut index);
    queue.push_back(root);
    queued.insert(root);

    let mut iterations: u64 = 0;
    let mut status = Status::Completed;
    let mut successors: Vec<M::Config> = Vec::new();

    while let Some(i) = queue.pop_front() {
        queued.remove(&i);
        if iterations >= limits.max_iterations {
            status = Status::IterationLimit;
            break;
        }
        // Checking the clock every iteration would dominate small runs;
        // every 256 is fine-grained enough for the harness timeouts.
        if iterations.is_multiple_of(256) {
            if let Some(budget) = limits.time_budget {
                if start.elapsed() > budget {
                    status = Status::TimedOut;
                    break;
                }
            }
        }
        iterations += 1;

        let config = configs[i].clone();
        successors.clear();
        let mut tracked = TrackedStore { store: &mut store, reads: Vec::new(), grew: Vec::new() };
        machine.step(&config, &mut tracked, &mut successors);
        let TrackedStore { reads, grew, .. } = tracked;

        for addr in reads {
            deps.entry(addr).or_default().insert(i);
        }
        for succ in successors.drain(..) {
            let (j, fresh) = intern(succ, &mut configs, &mut index);
            if fresh && queued.insert(j) {
                queue.push_back(j);
            }
        }
        for addr in grew {
            if let Some(dependents) = deps.get(&addr) {
                for &j in dependents {
                    if queued.insert(j) {
                        queue.push_back(j);
                    }
                }
            }
        }
    }

    FixpointResult { configs, store, status, iterations, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy machine: configs are integers 0..n; config i writes i to
    /// address i % 3 and steps to i+1; config k reads address 0.
    struct Counter {
        n: u32,
    }

    impl AbstractMachine for Counter {
        type Config = u32;
        type Addr = u32;
        type Val = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn step(
            &mut self,
            config: &u32,
            store: &mut TrackedStore<'_, u32, u32>,
            out: &mut Vec<u32>,
        ) {
            let c = *config;
            if c < self.n {
                store.join(c % 3, [c]);
                out.push(c + 1);
            } else {
                // Terminal config reads address 0, so it re-runs whenever
                // address 0 grows; the fixpoint must still terminate.
                let _ = store.read(&0);
            }
        }
    }

    #[test]
    fn reaches_fixpoint() {
        let mut m = Counter { n: 10 };
        let r = run_fixpoint(&mut m, EngineLimits::default());
        assert_eq!(r.status, Status::Completed);
        assert_eq!(r.config_count(), 11);
        assert_eq!(r.store.read(&0), [0u32, 3, 6, 9].into_iter().collect());
    }

    #[test]
    fn iteration_limit_fires() {
        let mut m = Counter { n: 1_000_000 };
        let r = run_fixpoint(&mut m, EngineLimits::iterations(100));
        assert_eq!(r.status, Status::IterationLimit);
        assert!(r.iterations <= 100);
    }

    #[test]
    fn timeout_fires() {
        struct Spin;
        impl AbstractMachine for Spin {
            type Config = u64;
            type Addr = u64;
            type Val = u64;
            fn initial(&self) -> u64 {
                0
            }
            fn step(&mut self, c: &u64, _s: &mut TrackedStore<'_, u64, u64>, out: &mut Vec<u64>) {
                std::thread::sleep(Duration::from_millis(1));
                out.push(c + 1);
            }
        }
        let r = run_fixpoint(&mut Spin, EngineLimits::timeout(Duration::from_millis(50)));
        assert_eq!(r.status, Status::TimedOut);
    }

    #[test]
    fn dependents_rerun_on_store_growth() {
        /// Config 0 reads addr 0 and, per value v seen, writes v+1 to
        /// addr 0 (capped) — convergence requires re-running config 0.
        struct Feedback;
        impl AbstractMachine for Feedback {
            type Config = u8;
            type Addr = u8;
            type Val = u8;
            fn initial(&self) -> u8 {
                0
            }
            fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
                if *c == 0 {
                    s.join(0, [1u8]);
                    out.push(1);
                } else {
                    let seen = s.read(&0);
                    let next: Vec<u8> = seen.iter().filter(|&&v| v < 5).map(|&v| v + 1).collect();
                    s.join(0, next);
                }
            }
        }
        let r = run_fixpoint(&mut Feedback, EngineLimits::default());
        assert_eq!(r.status, Status::Completed);
        assert_eq!(r.store.read(&0), (1u8..=5).collect());
    }
}

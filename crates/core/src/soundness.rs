//! Soundness checking: the abstraction maps `α` of §3.5 and §5.3,
//! executed against real concrete runs.
//!
//! The paper's soundness theorem (3.1) says the abstract semantics
//! simulates the concrete one: if `ς ⇒ ς′` and `α(ς) ⊑ ς̂`, a matching
//! abstract transition exists. Operationally that means every state a
//! concrete run visits must abstract into a configuration the analysis
//! reached, and every concrete store binding must be covered by the
//! abstract store. This module implements those checks:
//!
//! * [`check_kcfa`] — shared-environment runs vs. k-CFA;
//! * [`check_mcfa`] — flat-environment runs vs. m-CFA.
//!
//! The property tests in `tests/` drive these over randomized programs.

use crate::domain::{AVal, AbsBasic, CallString};
use crate::flatcfa::{AddrM, FlatCfaResult, MConfig, ValM};
use crate::kcfa::{AddrK, BEnvK, KConfig, KcfaResult, ValK};
use cfa_concrete::base::{Addr, Basic, Value};
use cfa_concrete::ctx::CtxTable;
use cfa_concrete::flat::FlatRun;
use cfa_concrete::shared::{BEnv, SharedRun};
use cfa_syntax::cps::CpsProgram;
use std::collections::HashSet;
use std::fmt;

/// A witness that the abstraction failed to cover the concrete run.
#[derive(Clone, Debug)]
pub struct SoundnessViolation {
    /// Human-readable description of the uncovered state or binding.
    pub detail: String,
}

impl fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "soundness violation: {}", self.detail)
    }
}

impl std::error::Error for SoundnessViolation {}

/// Does abstract value `abs` cover the abstraction of a concrete value
/// `conc` (i.e. `α(conc) ⊑ abs` pointwise on the flat constant lattice)?
fn basic_covers(abs: AbsBasic, conc: Basic) -> bool {
    match (abs, conc) {
        (AbsBasic::Int(a), Basic::Int(c)) => a == c,
        (AbsBasic::AnyInt, Basic::Int(_)) => true,
        (AbsBasic::Bool(a), Basic::Bool(c)) => a == c,
        (AbsBasic::AnyBool, Basic::Bool(_)) => true,
        (AbsBasic::Str, Basic::Str(_)) => true,
        (AbsBasic::Sym(a), Basic::Sym(c)) => a == c,
        (AbsBasic::Nil, Basic::Nil) => true,
        (AbsBasic::Void, Basic::Void) => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------
// k-CFA (shared environments)
// ---------------------------------------------------------------------

fn alpha_addr_k(addr: &Addr, times: &CtxTable, k: usize) -> AddrK {
    AddrK {
        slot: addr.slot,
        time: CallString::from_labels(times.first_k(addr.ctx, k), k),
    }
}

fn alpha_benv_k(benv: &BEnv, times: &CtxTable, k: usize) -> BEnvK {
    BEnvK::empty().extend(benv.iter().map(|(&v, a)| (v, alpha_addr_k(a, times, k))))
}

fn alpha_value_k(v: &Value<BEnv>, times: &CtxTable, k: usize) -> Option<ValK> {
    match v {
        Value::Basic(_) => unreachable!("handled by covers_k"),
        Value::Clo { lam, env } => Some(AVal::Clo {
            lam: *lam,
            env: alpha_benv_k(env, times, k),
        }),
        Value::Pair { car, cdr } => Some(AVal::Pair {
            car: alpha_addr_k(car, times, k),
            cdr: alpha_addr_k(cdr, times, k),
        }),
        // Thread handles, thread-return continuations, and atom cells
        // carry run-dependent identities (numeric thread ids, mutable
        // cells) that the trace does not relate back to spawn sites, so
        // the checker cannot abstract them. The soundness corpus is
        // deliberately sequential; on concurrent programs the checker
        // conservatively reports "not covered" rather than guessing.
        Value::Thread(_) | Value::RetK(_) | Value::Atom { .. } => None,
    }
}

fn covers_k(abs: &ValK, conc: &Value<BEnv>, times: &CtxTable, k: usize) -> bool {
    match (abs, conc) {
        (AVal::Basic(a), Value::Basic(c)) => basic_covers(*a, *c),
        (AVal::Basic(_), _) | (_, Value::Basic(_)) => false,
        _ => alpha_value_k(conc, times, k).as_ref() == Some(abs),
    }
}

/// Checks that a k-CFA result covers a traced shared-environment run.
///
/// # Errors
///
/// Returns the first uncovered visited state or store binding.
pub fn check_kcfa(
    program: &CpsProgram,
    k: usize,
    concrete: &SharedRun,
    result: &KcfaResult,
) -> Result<(), SoundnessViolation> {
    let configs: HashSet<&KConfig> = result.fixpoint.configs.iter().collect();
    for visit in &concrete.trace {
        let abs = KConfig {
            call: visit.call,
            benv: alpha_benv_k(&visit.benv, &concrete.times, k),
            time: CallString::from_labels(concrete.times.first_k(visit.time, k), k),
            // The concrete trace does not record thread lineage, so the
            // checker only supports the (sequential) main thread.
            tid: CallString::empty(),
        };
        if !configs.contains(&abs) {
            return Err(SoundnessViolation {
                detail: format!(
                    "visited state not covered: call {:?} abstracted to {:?}",
                    visit.call, abs
                ),
            });
        }
    }
    for (addr, value) in concrete.store.iter() {
        let abs_addr = alpha_addr_k(addr, &concrete.times, k);
        let flow = result.fixpoint.store.read(&abs_addr);
        if !flow.iter().any(|a| covers_k(a, value, &concrete.times, k)) {
            return Err(SoundnessViolation {
                detail: format!(
                    "store binding not covered: {:?} (abstract addr {:?}, flow {:?})",
                    addr,
                    abs_addr,
                    flow.len()
                ),
            });
        }
    }
    let _ = program;
    Ok(())
}

// ---------------------------------------------------------------------
// m-CFA (flat environments)
// ---------------------------------------------------------------------

fn alpha_env_m(ctx: cfa_concrete::base::Ctx, envs: &CtxTable, m: usize) -> CallString {
    CallString::from_labels(envs.first_k(ctx, m), m)
}

fn alpha_addr_m(addr: &Addr, envs: &CtxTable, m: usize) -> AddrM {
    AddrM {
        slot: addr.slot,
        env: alpha_env_m(addr.ctx, envs, m),
    }
}

fn covers_m(abs: &ValM, conc: &Value<cfa_concrete::base::Ctx>, envs: &CtxTable, m: usize) -> bool {
    match (abs, conc) {
        (AVal::Basic(a), Value::Basic(c)) => basic_covers(*a, *c),
        (AVal::Clo { lam: al, env: ae }, Value::Clo { lam: cl, env: ce }) => {
            al == cl && *ae == alpha_env_m(*ce, envs, m)
        }
        (AVal::Pair { car: ac, cdr: ad }, Value::Pair { car: cc, cdr: cd }) => {
            *ac == alpha_addr_m(cc, envs, m) && *ad == alpha_addr_m(cd, envs, m)
        }
        _ => false,
    }
}

/// Checks that an m-CFA result covers a traced flat-environment run.
///
/// # Errors
///
/// Returns the first uncovered visited state or store binding.
pub fn check_mcfa(
    program: &CpsProgram,
    m: usize,
    concrete: &FlatRun,
    result: &FlatCfaResult,
) -> Result<(), SoundnessViolation> {
    let configs: HashSet<&MConfig> = result.fixpoint.configs.iter().collect();
    for visit in &concrete.trace {
        let abs = MConfig {
            call: visit.call,
            env: alpha_env_m(visit.env, &concrete.envs, m),
            // As for k-CFA: sequential main thread only.
            tid: CallString::empty(),
        };
        if !configs.contains(&abs) {
            return Err(SoundnessViolation {
                detail: format!(
                    "visited state not covered: call {:?} abstracted to {:?}",
                    visit.call, abs
                ),
            });
        }
    }
    for (addr, value) in concrete.store.iter() {
        let abs_addr = alpha_addr_m(addr, &concrete.envs, m);
        let flow = result.fixpoint.store.read(&abs_addr);
        if !flow.iter().any(|a| covers_m(a, value, &concrete.envs, m)) {
            return Err(SoundnessViolation {
                detail: format!(
                    "store binding not covered: {:?} (abstract addr {:?})",
                    addr, abs_addr
                ),
            });
        }
    }
    let _ = program;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineLimits;
    use crate::flatcfa::analyze_mcfa;
    use crate::kcfa::analyze_kcfa;
    use cfa_concrete::base::Limits;
    use cfa_concrete::flat::run_flat_traced;
    use cfa_concrete::shared::run_shared_traced;

    const PROGRAMS: &[&str] = &[
        "42",
        "((lambda (x) x) 7)",
        "(define (id x) x) (let ((a (id 3))) (id 4))",
        "(if (zero? 1) 10 20)",
        "(car (cons 1 (cons 2 '())))",
        "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 6)",
        "(define (make-adder n) (lambda (m) (+ n m)))
         (+ ((make-adder 3) 10) ((make-adder 5) 100))",
        "(define (map f xs) (if (null? xs) '() (cons (f (car xs)) (map f (cdr xs)))))
         (map (lambda (n) (* n n)) (list 1 2 3))",
        "(let ((p (cons 1 2))) (+ (car p) (cdr p)))",
        "(define (even? n) (if (zero? n) #t (odd? (- n 1))))
         (define (odd? n) (if (zero? n) #f (even? (- n 1))))
         (even? 8)",
    ];

    #[test]
    fn kcfa_covers_concrete_runs() {
        for src in PROGRAMS {
            let p = cfa_syntax::compile(src).unwrap();
            let conc = run_shared_traced(&p, Limits::default(), true);
            for k in [0, 1, 2] {
                let res = analyze_kcfa(&p, k, EngineLimits::default());
                check_kcfa(&p, k, &conc, &res)
                    .unwrap_or_else(|e| panic!("k={k}, program {src:?}: {e}"));
            }
        }
    }

    #[test]
    fn mcfa_covers_concrete_runs() {
        for src in PROGRAMS {
            let p = cfa_syntax::compile(src).unwrap();
            let conc = run_flat_traced(&p, Limits::default(), true);
            for m in [0, 1, 2] {
                let res = analyze_mcfa(&p, m, EngineLimits::default());
                check_mcfa(&p, m, &conc, &res)
                    .unwrap_or_else(|e| panic!("m={m}, program {src:?}: {e}"));
            }
        }
    }

    #[test]
    fn violations_are_detected() {
        // Analyzing a *different* program must not cover the run.
        let p1 = cfa_syntax::compile("(define (id x) x) (id 1)").unwrap();
        let p2 = cfa_syntax::compile("((lambda (y) y) 2)").unwrap();
        let conc = run_shared_traced(&p1, Limits::default(), true);
        let res = analyze_kcfa(&p2, 1, EngineLimits::default());
        assert!(check_kcfa(&p1, 1, &conc, &res).is_err());
    }
}

//! Call-graph construction and Graphviz export.
//!
//! CFAs build the call graph *on the fly* — in points-to terminology,
//! "on-the-fly call-graph construction" (§2.1). [`Metrics`] already
//! records the per-site target sets; this module turns them into a
//! queryable [`CallGraph`] and a `dot` rendering for visualization.

use crate::results::Metrics;
use cfa_syntax::cps::{CallId, CpsProgram, LamId, LamSort};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// A resolved call graph: call sites to λ-term targets, and the
/// λ-term that (syntactically) contains each call site.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    edges: BTreeMap<CallId, BTreeSet<LamId>>,
    containing: BTreeMap<CallId, Option<LamId>>,
}

impl CallGraph {
    /// Builds the call graph from an analysis summary.
    pub fn from_metrics(program: &CpsProgram, metrics: &Metrics) -> Self {
        let mut containing: BTreeMap<CallId, Option<LamId>> = BTreeMap::new();
        // Map every call site to its syntactically enclosing λ-term.
        fn walk(
            program: &CpsProgram,
            call: CallId,
            owner: Option<LamId>,
            containing: &mut BTreeMap<CallId, Option<LamId>>,
        ) {
            containing.insert(call, owner);
            match &program.call(call).kind {
                cfa_syntax::cps::CallKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(program, *then_branch, owner, containing);
                    walk(program, *else_branch, owner, containing);
                }
                cfa_syntax::cps::CallKind::Fix { body, bindings } => {
                    for (_, lam) in bindings {
                        walk(program, program.lam(*lam).body, Some(*lam), containing);
                    }
                    walk(program, *body, owner, containing);
                }
                _ => {}
            }
        }
        for lam in program.lam_ids() {
            walk(program, program.lam(lam).body, Some(lam), &mut containing);
        }
        walk(program, program.entry(), None, &mut containing);

        CallGraph {
            edges: metrics.call_targets.clone(),
            containing,
        }
    }

    /// Targets of a call site.
    pub fn targets(&self, site: CallId) -> Option<&BTreeSet<LamId>> {
        self.edges.get(&site)
    }

    /// Number of resolved call sites.
    pub fn site_count(&self) -> usize {
        self.edges.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// λ-to-λ edges: caller λ (or `None` for top level) → callee λ,
    /// considering only procedure targets.
    pub fn lam_edges(&self, program: &CpsProgram) -> BTreeSet<(Option<LamId>, LamId)> {
        let mut out = BTreeSet::new();
        for (&site, targets) in &self.edges {
            let caller = self.containing.get(&site).copied().flatten();
            for &callee in targets {
                if program.lam(callee).sort == LamSort::Proc {
                    out.insert((caller, callee));
                }
            }
        }
        out
    }

    /// Renders the procedure-level call graph as Graphviz `dot`.
    pub fn to_dot(&self, program: &CpsProgram) -> String {
        let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n");
        let mut nodes: BTreeSet<Option<LamId>> = BTreeSet::new();
        let edges = self.lam_edges(program);
        for (from, to) in &edges {
            nodes.insert(*from);
            nodes.insert(Some(*to));
        }
        for node in &nodes {
            match node {
                None => {
                    let _ = writeln!(out, "  top [label=\"<top level>\", shape=box];");
                }
                Some(lam) => {
                    let data = program.lam(*lam);
                    let params: Vec<&str> = data.params.iter().map(|p| program.name(*p)).collect();
                    let _ = writeln!(
                        out,
                        "  l{} [label=\"λ{} ({})\"];",
                        lam.0,
                        data.label,
                        params.join(" ")
                    );
                }
            }
        }
        for (from, to) in &edges {
            let from_name = match from {
                None => "top".to_owned(),
                Some(l) => format!("l{}", l.0),
            };
            let _ = writeln!(out, "  {from_name} -> l{};", to.0);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineLimits;
    use crate::kcfa::analyze_kcfa;

    fn graph(src: &str) -> (CpsProgram, CallGraph) {
        let program = cfa_syntax::compile(src).unwrap();
        let r = analyze_kcfa(&program, 1, EngineLimits::default());
        let g = CallGraph::from_metrics(&program, &r.metrics);
        (program, g)
    }

    #[test]
    fn builds_edges_for_direct_calls() {
        let (p, g) = graph("(define (f x) x) (define (g y) (f y)) (g 1)");
        assert!(g.site_count() > 0);
        assert!(g.edge_count() >= g.site_count());
        let lam_edges = g.lam_edges(&p);
        // g calls f: there is an edge between two distinct proc lams.
        assert!(lam_edges
            .iter()
            .any(|(from, to)| from.is_some() && from != &Some(*to)));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let (p, g) = graph("(define (f x) x) (f (f 1))");
        let dot = g.to_dot(&p);
        assert!(dot.starts_with("digraph callgraph {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("->"));
    }

    #[test]
    fn top_level_caller_is_represented() {
        let (p, g) = graph("((lambda (x) x) 5)");
        let edges = g.lam_edges(&p);
        assert!(edges.iter().any(|(from, _)| from.is_none()));
    }
}

//! Canonical, engine-independent normal form for a completed fixpoint.
//!
//! Seven engine configurations (sequential/replicated/sharded ×
//! semi-naive/full re-evaluation, plus the reference oracle) must reach
//! the identical fixpoint — the fixed point of a monotone transfer
//! function is unique. Until now that guarantee lived only inside
//! in-process assertions (`cfa_testsupport::assert_engines_agree`),
//! so it could not catch cross-*version* regressions or ship a failure
//! as an artifact. This module turns a completed run into a persistent,
//! diffable JSON document:
//!
//! * [`canon_kcfa`] / [`canon_mcfa`] / [`canon_poly_kcfa`] (and their
//!   `_ref` twins for the reference engine) normalize a fixpoint into a
//!   [`CanonSnapshot`];
//! * [`CanonSnapshot::to_json`] serializes it deterministically (sorted
//!   keys, fixed field order, stable escaping), and
//!   [`CanonSnapshot::parse`] reads it back — `serialize → parse →
//!   re-serialize` is byte-identical;
//! * [`diff_snapshots`] compares two snapshots *structurally* and
//!   reports the first N divergent facts by name, not just a boolean.
//!
//! # Why interner ids cannot appear in the normal form
//!
//! The engines intern addresses and values into dense `u32` ids whose
//! numbering depends on discovery order — a perfectly healthy parallel
//! run assigns different ids than a sequential run, and the same
//! engine assigns different ids across versions. Every component of
//! the normal form is therefore rendered from **compile-deterministic**
//! data only: λ-term and call-site [`Label`](cfa_syntax::cps::Label)s,
//! interned variable
//! *names*, and call-string contexts. Two runs that compute the same
//! abstract semantics produce byte-identical snapshots no matter which
//! engine, thread count, or schedule produced them.
//!
//! Only a run with [`Status::Completed`] is canonicalizable: a
//! truncated or aborted fixpoint is a *partial* result, and diffing it
//! against a completed one would manufacture divergences. The builders
//! return [`NotComparable`] instead.
//!
//! # Examples
//!
//! ```
//! use cfa_core::canon::{canon_kcfa, diff_snapshots, DEFAULT_DIFF_LIMIT};
//! use cfa_core::engine::EngineLimits;
//!
//! let p = cfa_syntax::compile("((lambda (x) x) 42)").unwrap();
//! let r = cfa_core::analyze_kcfa(&p, 1, EngineLimits::default());
//! let snap = canon_kcfa(&p, 1, &r.fixpoint).unwrap();
//! assert!(snap.halt.contains(&"42".to_owned()));
//! let back = cfa_core::canon::CanonSnapshot::parse(&snap.to_json()).unwrap();
//! assert!(diff_snapshots(&snap, &back, DEFAULT_DIFF_LIMIT).is_identical());
//! ```

use crate::domain::{AVal, AbsBasic, CallString};
use crate::engine::{FixpointResult, Status};
use crate::flatcfa::{AddrM, MConfig, ValM};
use crate::kcfa::{AddrK, KConfig, ValK};
use crate::reference::RefFixpointResult;
use cfa_concrete::base::Slot;
use cfa_syntax::cps::{AExp, CallId, CallKind, CpsProgram, LamId};
use cfa_syntax::intern::Symbol;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Version of the normal-form layout. Bumped whenever the rendered
/// shape changes incompatibly; [`diff_snapshots`] reports a version
/// mismatch as its first divergence instead of comparing garbage.
pub const SCHEMA_VERSION: u64 = 1;

/// Default number of divergent facts [`diff_snapshots`] spells out.
pub const DEFAULT_DIFF_LIMIT: usize = 10;

/// A completed fixpoint in canonical, engine-independent form.
///
/// All collections are sorted and all entries are pretty-printed from
/// compile-deterministic data (labels, variable names, call strings) —
/// see the module docs for why interner ids are banned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CanonSnapshot {
    /// Normal-form layout version ([`SCHEMA_VERSION`] when built here).
    pub schema: u64,
    /// Machine family: `k-CFA`, `m-CFA`, or `poly-k-CFA`.
    pub machine: String,
    /// Context parameters, e.g. `[("k", 1)]`.
    pub params: Vec<(String, u64)>,
    /// Run status — always `complete` for snapshots built by the
    /// canonicalizers (partial runs are [`NotComparable`]).
    pub status: String,
    /// Every reached configuration, pretty-printed and sorted.
    pub configs: Vec<String>,
    /// Sorted call-graph edges: pretty call site → sorted λ targets.
    pub call_graph: Vec<(String, Vec<String>)>,
    /// Sorted flow facts: pretty address → sorted pretty values.
    pub flow: Vec<(String, Vec<String>)>,
    /// Sorted abstract values reaching `%halt`.
    pub halt: Vec<String>,
}

/// Error returned when a run cannot be canonicalized because it did
/// not complete — dumping it would masquerade a partial result as a
/// comparable snapshot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NotComparable {
    /// The offending run status (e.g. `timed-out`).
    pub status: String,
}

impl fmt::Display for NotComparable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "not comparable: run status is {} (only complete fixpoints have a normal form)",
            self.status
        )
    }
}

impl std::error::Error for NotComparable {}

/// Error returned by [`CanonSnapshot::parse`] on input that is not a
/// well-formed snapshot document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MalformedSnapshot {
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for MalformedSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed snapshot: {}", self.message)
    }
}

impl std::error::Error for MalformedSnapshot {}

/// Renders a [`Status`] as the stable lowercase token used in the
/// normal form and in "not comparable" diagnostics.
pub fn status_token(status: &Status) -> String {
    match status {
        Status::Completed => "complete".to_owned(),
        Status::TimedOut => "timed-out".to_owned(),
        Status::IterationLimit => "iteration-limit".to_owned(),
        Status::Cancelled => "cancelled".to_owned(),
        Status::Aborted { .. } => "aborted".to_owned(),
    }
}

// ---------------------------------------------------------------------
// Pretty rendering (compile-deterministic names only)
// ---------------------------------------------------------------------

fn render_basic(program: &CpsProgram, b: &AbsBasic) -> String {
    match b {
        // `AbsBasic`'s own Display prints the symbol's interner index;
        // the normal form must use the (stable) name instead.
        AbsBasic::Sym(s) => format!("'{}", program.name(*s)),
        other => other.to_string(),
    }
}

fn render_slot(program: &CpsProgram, slot: &Slot) -> String {
    match slot {
        Slot::Var(x) => program.name(*x).to_owned(),
        Slot::Car(l) => format!("car:ℓ{l}"),
        Slot::Cdr(l) => format!("cdr:ℓ{l}"),
        Slot::Atom(l) => format!("atom:ℓ{l}"),
        Slot::ThreadRet(l) => format!("tret:ℓ{l}"),
    }
}

fn call_site_name(program: &CpsProgram, call: CallId) -> String {
    format!("ℓ{}", program.call(call).label)
}

fn lam_name(program: &CpsProgram, lam: LamId) -> String {
    format!("λℓ{}", program.lam(lam).label)
}

/// One machine family's contribution to the normal form: how to render
/// its environments, addresses, and configurations, and how to resolve
/// atoms against the final store (for call-graph edges and halt
/// values). Everything rendered here must be compile-deterministic.
trait CanonFamily {
    /// Configuration type.
    type Config;
    /// Closure-environment component of values.
    type Env: Clone + Ord;
    /// Abstract address type.
    type Addr: Clone + Ord;

    fn machine(&self) -> &'static str;
    fn params(&self) -> Vec<(String, u64)>;
    fn program(&self) -> &CpsProgram;
    fn render_env(&self, e: &Self::Env) -> String;
    fn render_addr(&self, a: &Self::Addr) -> String;
    fn render_config(&self, c: &Self::Config) -> String;
    fn call_of(&self, c: &Self::Config) -> CallId;
    /// Address of variable `x` as seen from configuration `c`.
    fn var_addr(&self, c: &Self::Config, x: Symbol) -> Option<Self::Addr>;
    /// The closure a λ-atom evaluates to at configuration `c`.
    fn close(&self, c: &Self::Config, lam: LamId) -> AVal<Self::Env, Self::Addr>;
}

fn render_val<F: CanonFamily>(fam: &F, v: &AVal<F::Env, F::Addr>) -> String {
    match v {
        AVal::Clo { lam, env } => format!(
            "#<clo {} {}>",
            lam_name(fam.program(), *lam),
            fam.render_env(env)
        ),
        AVal::Basic(b) => render_basic(fam.program(), b),
        AVal::Pair { car, cdr } => format!(
            "#<pair {} · {}>",
            fam.render_addr(car),
            fam.render_addr(cdr)
        ),
        AVal::Tid { ret } => format!("#<tid {}>", fam.render_addr(ret)),
        AVal::RetK { ret } => format!("#<retk {}>", fam.render_addr(ret)),
        AVal::Atom { cell } => format!("#<atom {}>", fam.render_addr(cell)),
    }
}

struct KFam<'p> {
    program: &'p CpsProgram,
    k: u64,
}

impl<'p> CanonFamily for KFam<'p> {
    type Config = KConfig;
    type Env = crate::kcfa::BEnvK;
    type Addr = AddrK;

    fn machine(&self) -> &'static str {
        "k-CFA"
    }

    fn params(&self) -> Vec<(String, u64)> {
        vec![("k".to_owned(), self.k)]
    }

    fn program(&self) -> &CpsProgram {
        self.program
    }

    fn render_env(&self, e: &Self::Env) -> String {
        let binds: Vec<String> = e
            .iter()
            .map(|(x, a)| format!("{}↦{}", self.program.name(x), self.render_addr(a)))
            .collect();
        format!("{{{}}}", binds.join(", "))
    }

    fn render_addr(&self, a: &AddrK) -> String {
        format!("{}@{}", render_slot(self.program, &a.slot), a.time)
    }

    fn render_config(&self, c: &KConfig) -> String {
        format!(
            "({} t={} tid={} env={})",
            call_site_name(self.program, c.call),
            c.time,
            c.tid,
            self.render_env(&c.benv)
        )
    }

    fn call_of(&self, c: &KConfig) -> CallId {
        c.call
    }

    fn var_addr(&self, c: &KConfig, x: Symbol) -> Option<AddrK> {
        c.benv.get(x).cloned()
    }

    fn close(&self, c: &KConfig, lam: LamId) -> ValK {
        AVal::Clo {
            lam,
            env: c.benv.restrict(self.program.free_vars(lam)),
        }
    }
}

struct MFam<'p> {
    program: &'p CpsProgram,
    machine: &'static str,
    param_key: &'static str,
    bound: u64,
}

impl<'p> CanonFamily for MFam<'p> {
    type Config = MConfig;
    type Env = CallString;
    type Addr = AddrM;

    fn machine(&self) -> &'static str {
        self.machine
    }

    fn params(&self) -> Vec<(String, u64)> {
        vec![(self.param_key.to_owned(), self.bound)]
    }

    fn program(&self) -> &CpsProgram {
        self.program
    }

    fn render_env(&self, e: &CallString) -> String {
        e.to_string()
    }

    fn render_addr(&self, a: &AddrM) -> String {
        format!("{}@{}", render_slot(self.program, &a.slot), a.env)
    }

    fn render_config(&self, c: &MConfig) -> String {
        format!(
            "({} env={} tid={})",
            call_site_name(self.program, c.call),
            c.env,
            c.tid
        )
    }

    fn call_of(&self, c: &MConfig) -> CallId {
        c.call
    }

    fn var_addr(&self, c: &MConfig, x: Symbol) -> Option<AddrM> {
        Some(AddrM {
            slot: Slot::Var(x),
            env: c.env.clone(),
        })
    }

    fn close(&self, c: &MConfig, lam: LamId) -> ValM {
        AVal::Clo {
            lam,
            env: c.env.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// Building the normal form
// ---------------------------------------------------------------------

/// One family's value-set type: what a final store row holds.
type ValSet<F> = BTreeSet<AVal<<F as CanonFamily>::Env, <F as CanonFamily>::Addr>>;

/// One family's materialized final store: address → value set.
type CanonStore<F> = BTreeMap<<F as CanonFamily>::Addr, ValSet<F>>;

/// Resolves an atom to its value set against the *final* store, the
/// way the machines' own `eval` would — values for variables, a
/// constant for literals, a closure over the configuration's
/// environment for λ-terms.
fn atom_vals<F: CanonFamily>(
    fam: &F,
    c: &F::Config,
    atom: &AExp,
    store: &CanonStore<F>,
) -> ValSet<F> {
    match atom {
        AExp::Lit(l) => std::iter::once(AVal::Basic(AbsBasic::from_lit(*l))).collect(),
        AExp::Var(x) => fam
            .var_addr(c, *x)
            .and_then(|a| store.get(&a))
            .cloned()
            .unwrap_or_default(),
        AExp::Lam(l) => std::iter::once(fam.close(c, *l)).collect(),
    }
}

/// The operator-position atoms of a call — the atoms whose closure
/// flows become call-graph edges. Branches and `%fix` transfer control
/// directly (no operator flow); `%halt` contributes to the halt set
/// instead.
fn operator_atoms(kind: &CallKind) -> Vec<&AExp> {
    match kind {
        CallKind::App { func, .. } => vec![func],
        CallKind::PrimCall { cont, .. } => vec![cont],
        CallKind::Spawn { thunk, cont } => vec![thunk, cont],
        CallKind::Join { cont, .. } => vec![cont],
        CallKind::If { .. } | CallKind::Fix { .. } | CallKind::Halt { .. } => vec![],
    }
}

fn build<F: CanonFamily>(
    fam: &F,
    status: &Status,
    configs: &[F::Config],
    store_entries: Vec<(F::Addr, ValSet<F>)>,
) -> Result<CanonSnapshot, NotComparable> {
    if !status.is_complete() {
        return Err(NotComparable {
            status: status_token(status),
        });
    }
    let program = fam.program();
    let store: CanonStore<F> = store_entries.into_iter().collect();

    // Flow facts: pretty address → sorted pretty values. Rendering is
    // injective by construction, but merge defensively if two
    // addresses ever print alike.
    let mut flow: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (addr, vals) in &store {
        flow.entry(fam.render_addr(addr))
            .or_default()
            .extend(vals.iter().map(|v| render_val(fam, v)));
    }

    // Call-graph edges and halt values, re-derived from the final
    // store exactly as the machines' own `eval` resolves operator
    // atoms. At the fixpoint this is engine-invariant: the reached
    // configurations and the store are.
    let mut call_graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut halt: BTreeSet<String> = BTreeSet::new();
    for c in configs {
        let call = program.call(fam.call_of(c));
        if let CallKind::Halt { value } = &call.kind {
            halt.extend(
                atom_vals(fam, c, value, &store)
                    .iter()
                    .map(|v| render_val(fam, v)),
            );
            continue;
        }
        for atom in operator_atoms(&call.kind) {
            let targets: BTreeSet<String> = atom_vals(fam, c, atom, &store)
                .iter()
                .filter_map(|v| match v {
                    AVal::Clo { lam, .. } => Some(lam_name(program, *lam)),
                    _ => None,
                })
                .collect();
            if !targets.is_empty() {
                call_graph
                    .entry(call_site_name(program, fam.call_of(c)))
                    .or_default()
                    .extend(targets);
            }
        }
    }

    let configs: BTreeSet<String> = configs.iter().map(|c| fam.render_config(c)).collect();

    Ok(CanonSnapshot {
        schema: SCHEMA_VERSION,
        machine: fam.machine().to_owned(),
        params: fam.params(),
        status: status_token(status),
        configs: configs.into_iter().collect(),
        call_graph: call_graph
            .into_iter()
            .map(|(k, v)| (k, v.into_iter().collect()))
            .collect(),
        flow: flow
            .into_iter()
            .map(|(k, v)| (k, v.into_iter().collect()))
            .collect(),
        halt: halt.into_iter().collect(),
    })
}

/// Canonicalizes a completed k-CFA fixpoint from any of the six
/// new-engine configurations.
pub fn canon_kcfa(
    program: &CpsProgram,
    k: usize,
    fix: &FixpointResult<KConfig, AddrK, ValK>,
) -> Result<CanonSnapshot, NotComparable> {
    let fam = KFam {
        program,
        k: k as u64,
    };
    let store = fix.store.iter().map(|(a, set)| (a.clone(), set)).collect();
    build(&fam, &fix.status, &fix.configs, store)
}

/// Canonicalizes a completed k-CFA fixpoint from the reference oracle.
pub fn canon_kcfa_ref(
    program: &CpsProgram,
    k: usize,
    fix: &RefFixpointResult<KConfig, AddrK, ValK>,
) -> Result<CanonSnapshot, NotComparable> {
    let fam = KFam {
        program,
        k: k as u64,
    };
    let store = fix
        .store
        .iter()
        .map(|(a, set)| (a.clone(), set.clone()))
        .collect();
    build(&fam, &fix.status, &fix.configs, store)
}

fn mcfa_fam(program: &CpsProgram, m: usize) -> MFam<'_> {
    MFam {
        program,
        machine: "m-CFA",
        param_key: "m",
        bound: m as u64,
    }
}

fn poly_fam(program: &CpsProgram, k: usize) -> MFam<'_> {
    MFam {
        program,
        machine: "poly-k-CFA",
        param_key: "k",
        bound: k as u64,
    }
}

/// Canonicalizes a completed m-CFA fixpoint from any of the six
/// new-engine configurations.
pub fn canon_mcfa(
    program: &CpsProgram,
    m: usize,
    fix: &FixpointResult<MConfig, AddrM, ValM>,
) -> Result<CanonSnapshot, NotComparable> {
    let store = fix.store.iter().map(|(a, set)| (a.clone(), set)).collect();
    build(&mcfa_fam(program, m), &fix.status, &fix.configs, store)
}

/// Canonicalizes a completed m-CFA fixpoint from the reference oracle.
pub fn canon_mcfa_ref(
    program: &CpsProgram,
    m: usize,
    fix: &RefFixpointResult<MConfig, AddrM, ValM>,
) -> Result<CanonSnapshot, NotComparable> {
    let store = fix
        .store
        .iter()
        .map(|(a, set)| (a.clone(), set.clone()))
        .collect();
    build(&mcfa_fam(program, m), &fix.status, &fix.configs, store)
}

/// Canonicalizes a completed poly-k-CFA fixpoint from any of the six
/// new-engine configurations.
pub fn canon_poly_kcfa(
    program: &CpsProgram,
    k: usize,
    fix: &FixpointResult<MConfig, AddrM, ValM>,
) -> Result<CanonSnapshot, NotComparable> {
    let store = fix.store.iter().map(|(a, set)| (a.clone(), set)).collect();
    build(&poly_fam(program, k), &fix.status, &fix.configs, store)
}

/// Canonicalizes a completed poly-k-CFA fixpoint from the reference
/// oracle.
pub fn canon_poly_kcfa_ref(
    program: &CpsProgram,
    k: usize,
    fix: &RefFixpointResult<MConfig, AddrM, ValM>,
) -> Result<CanonSnapshot, NotComparable> {
    let store = fix
        .store
        .iter()
        .map(|(a, set)| (a.clone(), set.clone()))
        .collect();
    build(&poly_fam(program, k), &fix.status, &fix.configs, store)
}

// ---------------------------------------------------------------------
// Deterministic JSON serialization
// ---------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_string_array(out: &mut String, indent: &str, items: &[String]) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, item) in items.iter().enumerate() {
        out.push_str(indent);
        out.push_str("  \"");
        out.push_str(&esc(item));
        out.push('"');
        if i + 1 < items.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(indent);
    out.push(']');
}

fn push_string_map(out: &mut String, indent: &str, entries: &[(String, Vec<String>)]) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    for (i, (key, vals)) in entries.iter().enumerate() {
        out.push_str(indent);
        out.push_str("  \"");
        out.push_str(&esc(key));
        out.push_str("\": [");
        for (j, v) in vals.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&esc(v));
            out.push('"');
        }
        out.push(']');
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(indent);
    out.push('}');
}

impl CanonSnapshot {
    /// Serializes the snapshot as deterministic, pretty-printed JSON:
    /// fixed field order, sorted collections, stable escaping. Two
    /// equal snapshots always serialize to identical bytes, and the
    /// output round-trips through [`CanonSnapshot::parse`] unchanged.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", self.schema));
        out.push_str(&format!("  \"machine\": \"{}\",\n", esc(&self.machine)));
        out.push_str("  \"params\": {");
        for (i, (key, value)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", esc(key), value));
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"status\": \"{}\",\n", esc(&self.status)));
        out.push_str("  \"configs\": ");
        push_string_array(&mut out, "  ", &self.configs);
        out.push_str(",\n  \"call_graph\": ");
        push_string_map(&mut out, "  ", &self.call_graph);
        out.push_str(",\n  \"flow\": ");
        push_string_map(&mut out, "  ", &self.flow);
        out.push_str(",\n  \"halt\": ");
        push_string_array(&mut out, "  ", &self.halt);
        out.push_str("\n}\n");
        out
    }

    /// Parses a snapshot document produced by [`CanonSnapshot::to_json`]
    /// (or hand-written JSON of the same shape). Structural problems —
    /// bad JSON, missing or unknown fields, wrong types — are
    /// [`MalformedSnapshot`] errors; `cfa compare` maps them to exit
    /// code 2.
    pub fn parse(text: &str) -> Result<CanonSnapshot, MalformedSnapshot> {
        let value = json::parse(text)?;
        snapshot_from_json(value)
    }

    /// Whether this snapshot describes a completed run. Only complete
    /// snapshots are comparable; `cfa compare` rejects others.
    pub fn is_complete(&self) -> bool {
        self.status == "complete"
    }
}

fn malformed(message: impl Into<String>) -> MalformedSnapshot {
    MalformedSnapshot {
        message: message.into(),
    }
}

fn as_string_array(value: json::Json, what: &str) -> Result<Vec<String>, MalformedSnapshot> {
    let json::Json::Arr(items) = value else {
        return Err(malformed(format!("\"{what}\" must be an array")));
    };
    items
        .into_iter()
        .map(|item| match item {
            json::Json::Str(s) => Ok(s),
            _ => Err(malformed(format!("\"{what}\" entries must be strings"))),
        })
        .collect()
}

fn as_string_map(
    value: json::Json,
    what: &str,
) -> Result<Vec<(String, Vec<String>)>, MalformedSnapshot> {
    let json::Json::Obj(entries) = value else {
        return Err(malformed(format!("\"{what}\" must be an object")));
    };
    entries
        .into_iter()
        .map(|(key, v)| Ok((key, as_string_array(v, what)?)))
        .collect()
}

fn snapshot_from_json(value: json::Json) -> Result<CanonSnapshot, MalformedSnapshot> {
    let json::Json::Obj(fields) = value else {
        return Err(malformed("top level must be an object"));
    };
    let mut schema = None;
    let mut machine = None;
    let mut params = None;
    let mut status = None;
    let mut configs = None;
    let mut call_graph = None;
    let mut flow = None;
    let mut halt = None;
    for (key, v) in fields {
        match key.as_str() {
            "schema" => match v {
                json::Json::Int(n) => schema = Some(n),
                _ => return Err(malformed("\"schema\" must be an integer")),
            },
            "machine" => match v {
                json::Json::Str(s) => machine = Some(s),
                _ => return Err(malformed("\"machine\" must be a string")),
            },
            "params" => {
                let json::Json::Obj(entries) = v else {
                    return Err(malformed("\"params\" must be an object"));
                };
                let mut out = Vec::with_capacity(entries.len());
                for (name, pv) in entries {
                    match pv {
                        json::Json::Int(n) => out.push((name, n)),
                        _ => return Err(malformed("\"params\" values must be integers")),
                    }
                }
                params = Some(out);
            }
            "status" => match v {
                json::Json::Str(s) => status = Some(s),
                _ => return Err(malformed("\"status\" must be a string")),
            },
            "configs" => configs = Some(as_string_array(v, "configs")?),
            "call_graph" => call_graph = Some(as_string_map(v, "call_graph")?),
            "flow" => flow = Some(as_string_map(v, "flow")?),
            "halt" => halt = Some(as_string_array(v, "halt")?),
            other => return Err(malformed(format!("unknown field \"{other}\""))),
        }
    }
    let require = |name: &str| malformed(format!("missing field \"{name}\""));
    Ok(CanonSnapshot {
        schema: schema.ok_or_else(|| require("schema"))?,
        machine: machine.ok_or_else(|| require("machine"))?,
        params: params.ok_or_else(|| require("params"))?,
        status: status.ok_or_else(|| require("status"))?,
        configs: configs.ok_or_else(|| require("configs"))?,
        call_graph: call_graph.ok_or_else(|| require("call_graph"))?,
        flow: flow.ok_or_else(|| require("flow"))?,
        halt: halt.ok_or_else(|| require("halt"))?,
    })
}

/// A minimal hand-rolled JSON reader — the workspace is offline by
/// design (no serde), and the snapshot grammar only needs objects,
/// arrays, strings, and non-negative integers.
mod json {
    use super::MalformedSnapshot;

    /// A parsed JSON value (the subset the snapshot grammar uses).
    #[derive(Debug)]
    pub enum Json {
        /// A string.
        Str(String),
        /// A non-negative integer.
        Int(u64),
        /// An object, in source order.
        Obj(Vec<(String, Json)>),
        /// An array.
        Arr(Vec<Json>),
    }

    pub fn parse(text: &str) -> Result<Json, MalformedSnapshot> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(err(format!(
                "trailing input after document (at char {})",
                p.pos
            )));
        }
        Ok(value)
    }

    fn err(message: impl Into<String>) -> MalformedSnapshot {
        MalformedSnapshot {
            message: message.into(),
        }
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Result<char, MalformedSnapshot> {
            let c = self.peek().ok_or_else(|| err("unexpected end of input"))?;
            self.pos += 1;
            Ok(c)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, want: char) -> Result<(), MalformedSnapshot> {
            let got = self.bump()?;
            if got != want {
                return Err(err(format!(
                    "expected '{want}' at char {}, found '{got}'",
                    self.pos - 1
                )));
            }
            Ok(())
        }

        fn value(&mut self) -> Result<Json, MalformedSnapshot> {
            match self.peek() {
                Some('{') => self.object(),
                Some('[') => self.array(),
                Some('"') => Ok(Json::Str(self.string()?)),
                Some(c) if c.is_ascii_digit() => self.integer(),
                Some(c) => Err(err(format!(
                    "unexpected character '{c}' at char {}",
                    self.pos
                ))),
                None => Err(err("unexpected end of input")),
            }
        }

        fn object(&mut self) -> Result<Json, MalformedSnapshot> {
            self.expect('{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some('}') {
                self.pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(':')?;
                self.skip_ws();
                let value = self.value()?;
                entries.push((key, value));
                self.skip_ws();
                match self.bump()? {
                    ',' => continue,
                    '}' => return Ok(Json::Obj(entries)),
                    c => return Err(err(format!("expected ',' or '}}', found '{c}'"))),
                }
            }
        }

        fn array(&mut self) -> Result<Json, MalformedSnapshot> {
            self.expect('[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.bump()? {
                    ',' => continue,
                    ']' => return Ok(Json::Arr(items)),
                    c => return Err(err(format!("expected ',' or ']', found '{c}'"))),
                }
            }
        }

        fn string(&mut self) -> Result<String, MalformedSnapshot> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.bump()? {
                    '"' => return Ok(out),
                    '\\' => match self.bump()? {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000c}'),
                        'u' => {
                            let code = self.hex4()?;
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(err(format!(
                                        "invalid \\u escape {code:#06x} (surrogate pairs \
                                         are not used by the snapshot grammar)"
                                    )))
                                }
                            }
                        }
                        c => return Err(err(format!("invalid escape '\\{c}'"))),
                    },
                    c if (c as u32) < 0x20 => {
                        return Err(err("raw control character in string"));
                    }
                    c => out.push(c),
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, MalformedSnapshot> {
            let mut code = 0u32;
            for _ in 0..4 {
                let c = self.bump()?;
                let digit = c
                    .to_digit(16)
                    .ok_or_else(|| err(format!("invalid hex digit '{c}' in \\u escape")))?;
                code = code * 16 + digit;
            }
            Ok(code)
        }

        fn integer(&mut self) -> Result<Json, MalformedSnapshot> {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some('.' | 'e' | 'E')) {
                return Err(err("the snapshot grammar has no fractional numbers"));
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            text.parse()
                .map(Json::Int)
                .map_err(|_| err(format!("integer '{text}' out of range")))
        }
    }
}

// ---------------------------------------------------------------------
// Structural diff
// ---------------------------------------------------------------------

/// The result of [`diff_snapshots`]: the first N divergent facts by
/// name, plus the total count (so a truncated listing still reports
/// the blast radius).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiffReport {
    /// The first `limit` divergences, each one human-readable line.
    pub divergences: Vec<String>,
    /// Total number of divergent facts found (may exceed
    /// `divergences.len()`).
    pub total: usize,
}

impl DiffReport {
    /// Whether the two snapshots are structurally identical.
    pub fn is_identical(&self) -> bool {
        self.total == 0
    }

    /// Renders the report: one line per listed divergence and a
    /// summary line naming the total.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.divergences {
            out.push_str(d);
            out.push('\n');
        }
        if self.total > self.divergences.len() {
            out.push_str(&format!(
                "… and {} more divergent facts\n",
                self.total - self.divergences.len()
            ));
        }
        out.push_str(&format!("{} divergent facts\n", self.total));
        out
    }
}

struct DiffSink {
    divergences: Vec<String>,
    total: usize,
    limit: usize,
}

impl DiffSink {
    fn note(&mut self, line: String) {
        if self.divergences.len() < self.limit {
            self.divergences.push(line);
        }
        self.total += 1;
    }
}

fn diff_string_sets(sink: &mut DiffSink, what: &str, left: &[String], right: &[String]) {
    let l: BTreeSet<&String> = left.iter().collect();
    let r: BTreeSet<&String> = right.iter().collect();
    for only in l.difference(&r) {
        sink.note(format!("{what} only in left: {only}"));
    }
    for only in r.difference(&l) {
        sink.note(format!("{what} only in right: {only}"));
    }
}

fn diff_string_maps(
    sink: &mut DiffSink,
    what: &str,
    entry_word: &str,
    left: &[(String, Vec<String>)],
    right: &[(String, Vec<String>)],
) {
    let l: BTreeMap<&String, &Vec<String>> = left.iter().map(|(k, v)| (k, v)).collect();
    let r: BTreeMap<&String, &Vec<String>> = right.iter().map(|(k, v)| (k, v)).collect();
    let keys: BTreeSet<&&String> = l.keys().chain(r.keys()).collect();
    for key in keys {
        match (l.get(*key), r.get(*key)) {
            (Some(lv), Some(rv)) => {
                let ls: BTreeSet<&String> = lv.iter().collect();
                let rs: BTreeSet<&String> = rv.iter().collect();
                for only in ls.difference(&rs) {
                    sink.note(format!("{what}[{key}]: {entry_word} {only} only in left"));
                }
                for only in rs.difference(&ls) {
                    sink.note(format!("{what}[{key}]: {entry_word} {only} only in right"));
                }
            }
            (Some(_), None) => sink.note(format!("{what} key only in left: {key}")),
            (None, Some(_)) => sink.note(format!("{what} key only in right: {key}")),
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
}

/// Structurally compares two snapshots, reporting the first `limit`
/// divergent facts by name — a schema/machine/parameter mismatch, a
/// configuration, call-graph edge, flow fact, or halt value present on
/// one side only — plus the total divergence count.
pub fn diff_snapshots(left: &CanonSnapshot, right: &CanonSnapshot, limit: usize) -> DiffReport {
    let mut sink = DiffSink {
        divergences: Vec::new(),
        total: 0,
        limit,
    };
    if left.schema != right.schema {
        sink.note(format!(
            "schema: left {}, right {}",
            left.schema, right.schema
        ));
    }
    if left.machine != right.machine {
        sink.note(format!(
            "machine: left {}, right {}",
            left.machine, right.machine
        ));
    }
    {
        let l: BTreeMap<&String, u64> = left.params.iter().map(|(k, v)| (k, *v)).collect();
        let r: BTreeMap<&String, u64> = right.params.iter().map(|(k, v)| (k, *v)).collect();
        let keys: BTreeSet<&&String> = l.keys().chain(r.keys()).collect();
        for key in keys {
            match (l.get(*key), r.get(*key)) {
                (Some(lv), Some(rv)) if lv == rv => {}
                (Some(lv), Some(rv)) => {
                    sink.note(format!("params.{key}: left {lv}, right {rv}"));
                }
                (Some(lv), None) => sink.note(format!("params.{key}: left {lv}, right absent")),
                (None, Some(rv)) => sink.note(format!("params.{key}: left absent, right {rv}")),
                (None, None) => unreachable!("key came from one of the maps"),
            }
        }
    }
    if left.status != right.status {
        sink.note(format!(
            "status: left {}, right {}",
            left.status, right.status
        ));
    }
    diff_string_sets(&mut sink, "config", &left.configs, &right.configs);
    diff_string_maps(
        &mut sink,
        "call_graph",
        "target",
        &left.call_graph,
        &right.call_graph,
    );
    diff_string_maps(&mut sink, "flow", "value", &left.flow, &right.flow);
    diff_string_sets(&mut sink, "halt value", &left.halt, &right.halt);
    DiffReport {
        divergences: sink.divergences,
        total: sink.total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineLimits;

    fn snap(src: &str, k: usize) -> CanonSnapshot {
        let p = cfa_syntax::compile(src).unwrap();
        let r = crate::analyze_kcfa(&p, k, EngineLimits::default());
        canon_kcfa(&p, k, &r.fixpoint).unwrap()
    }

    #[test]
    fn halt_and_flow_are_rendered() {
        let s = snap("((lambda (x) x) 42)", 1);
        assert_eq!(s.machine, "k-CFA");
        assert_eq!(s.params, vec![("k".to_owned(), 1)]);
        assert_eq!(s.status, "complete");
        assert!(s.halt.contains(&"42".to_owned()));
        assert!(!s.flow.is_empty());
        assert!(!s.call_graph.is_empty());
    }

    #[test]
    fn round_trips_byte_identically() {
        let s = snap("(define (id x) x) (id (id (cons 1 2)))", 1);
        let text = s.to_json();
        let back = CanonSnapshot::parse(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn kcfa_and_mcfa_snapshots_diverge_by_machine() {
        let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
        let rk = crate::analyze_kcfa(&p, 1, EngineLimits::default());
        let rm = crate::analyze_mcfa(&p, 1, EngineLimits::default());
        let sk = canon_kcfa(&p, 1, &rk.fixpoint).unwrap();
        let sm = canon_mcfa(&p, 1, &rm.fixpoint).unwrap();
        let d = diff_snapshots(&sk, &sm, DEFAULT_DIFF_LIMIT);
        assert!(!d.is_identical());
        assert!(d.divergences.iter().any(|l| l.starts_with("machine:")));
    }

    #[test]
    fn diff_names_the_first_divergent_fact() {
        let a = snap("((lambda (x) x) 42)", 1);
        let mut b = a.clone();
        for (_, vals) in b.flow.iter_mut() {
            for v in vals.iter_mut() {
                if v == "42" {
                    *v = "43".to_owned();
                }
            }
        }
        let d = diff_snapshots(&a, &b, DEFAULT_DIFF_LIMIT);
        assert!(!d.is_identical());
        assert!(
            d.divergences
                .iter()
                .any(|l| l.starts_with("flow[") && l.contains("42")),
            "{:?}",
            d.divergences
        );
    }

    #[test]
    fn incomplete_runs_are_not_comparable() {
        let p = cfa_syntax::compile("(define (loop f) (loop f)) (loop loop)").unwrap();
        let limits = EngineLimits {
            max_iterations: 1,
            ..EngineLimits::default()
        };
        let r = crate::analyze_kcfa(&p, 0, limits);
        let err = canon_kcfa(&p, 0, &r.fixpoint).unwrap_err();
        assert_eq!(err.status, "iteration-limit");
        assert!(err.to_string().contains("not comparable"));
    }

    #[test]
    fn parse_rejects_garbage_and_unknown_fields() {
        assert!(CanonSnapshot::parse("{").is_err());
        assert!(CanonSnapshot::parse("[1, 2]").is_err());
        let s = snap("1", 0);
        let doctored = s.to_json().replace("\"halt\"", "\"bogus\"");
        assert!(CanonSnapshot::parse(&doctored).is_err());
    }

    #[test]
    fn concurrent_values_render_without_ids() {
        let src = "(let ((c (atom 0)))
                     (let ((t (spawn (reset! c 1))))
                       (begin (join t) (deref c))))";
        let s = snap(src, 1);
        let text = s.to_json();
        assert!(text.contains("atom:ℓ"), "{text}");
    }
}

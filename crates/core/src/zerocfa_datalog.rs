//! 0CFA for CPS expressed in Datalog — the functional side of the
//! "Datalog road".
//!
//! `cfa-fj::datalog` demonstrates that *OO* k-CFA is a Datalog program
//! (hence polynomial). This module walks the same road from the
//! functional side: context-insensitive CFA for the CPS language is
//! also expressible in Datalog — it is only the *context-sensitive*
//! functional analysis (k ≥ 1 over shared environments) that falls out
//! of Datalog's polynomial fragment, because abstract environments are
//! maps rather than atoms. Together the two modules bracket the paradox:
//! Datalog accommodates OO k-CFA for any fixed k and functional CFA at
//! k = 0, and the exponential gap lives exactly in the functional
//! closure environments.
//!
//! The encoding mirrors [`crate::constraints`] constraint for
//! constraint, so cross-validation asserts *equality* of flow sets, not
//! mere mutual soundness:
//!
//! * `flow(node, val)` — the flow relation;
//! * `edge(a, b)` — unconditional subset edges;
//! * `app(site, op, arity)` + `apparg*(site, i, …)` — conditional
//!   application rules, arity-guarded like the solver;
//! * `proj*(site, scrutinee)` + `paircar/paircdr` — pair projections,
//!   including the indirect "flow into whatever continuation arrives"
//!   form.

use crate::constraints::{Node, Val0};
use crate::domain::AbsBasic;
use crate::prim::{classify, PrimSpec};
use cfa_datalog::{Const, ConstPool, DatalogProgram, EvalStats, RelId, Term};
use cfa_syntax::cps::{AExp, CallKind, CpsProgram, Label};
use cfa_syntax::intern::Symbol;
use std::collections::{BTreeSet, HashMap};

/// The result of the Datalog 0CFA.
#[derive(Debug)]
pub struct ZeroCfaDatalog {
    flows: HashMap<Node, BTreeSet<Val0>>,
    /// Input fact count.
    pub edb_facts: usize,
    /// Facts at the fixpoint.
    pub total_facts: usize,
    /// Engine statistics.
    pub stats: EvalStats,
}

impl ZeroCfaDatalog {
    /// The flow set of a node (`⊥` if absent).
    pub fn flow(&self, node: Node) -> BTreeSet<Val0> {
        self.flows.get(&node).cloned().unwrap_or_default()
    }

    /// The flow set of a variable.
    pub fn var_flow(&self, v: Symbol) -> BTreeSet<Val0> {
        self.flow(Node::Var(v))
    }

    /// Values reaching `%halt`.
    pub fn halt_flow(&self) -> BTreeSet<Val0> {
        self.flow(Node::Halt)
    }

    /// All nodes with a non-empty flow set.
    pub fn nodes(&self) -> impl Iterator<Item = (&Node, &BTreeSet<Val0>)> {
        self.flows.iter()
    }

    /// Total `(node, value)` facts.
    pub fn fact_count(&self) -> usize {
        self.flows.values().map(BTreeSet::len).sum()
    }
}

struct Rels {
    flow: RelId,
    edge: RelId,
    app: RelId,
    appargn: RelId,
    appargc: RelId,
    lamarity: RelId,
    lamparam: RelId,
    projcar: RelId,
    projcdr: RelId,
    projnode: RelId,
    projcont: RelId,
    paircar: RelId,
    paircdr: RelId,
}

fn v(name: &str) -> Term {
    Term::var(name)
}

struct Encoder<'p> {
    cps: &'p CpsProgram,
    pool: ConstPool,
    program: DatalogProgram,
    rels: Rels,
    db: Option<cfa_datalog::Database>,
    node_of: HashMap<Const, Node>,
    val_of: HashMap<Const, Val0>,
    edb_facts: usize,
    next_site: u32,
    cons_sites: Vec<Label>,
}

impl<'p> Encoder<'p> {
    fn new(cps: &'p CpsProgram) -> Self {
        let mut program = DatalogProgram::new();
        let rels = Rels {
            flow: program.relation("flow", 2),
            edge: program.relation("edge", 2),
            app: program.relation("app", 3),
            appargn: program.relation("appargn", 3),
            appargc: program.relation("appargc", 3),
            lamarity: program.relation("lamarity", 2),
            lamparam: program.relation("lamparam", 3),
            projcar: program.relation("projcar", 2),
            projcdr: program.relation("projcdr", 2),
            projnode: program.relation("projnode", 2),
            projcont: program.relation("projcont", 2),
            paircar: program.relation("paircar", 2),
            paircdr: program.relation("paircdr", 2),
        };
        Encoder {
            cps,
            pool: ConstPool::new(),
            program,
            rels,
            db: None,
            node_of: HashMap::new(),
            val_of: HashMap::new(),
            edb_facts: 0,
            next_site: 0,
            cons_sites: Vec::new(),
        }
    }

    fn node_const(&mut self, n: Node) -> Const {
        let name = match n {
            Node::Var(s) => format!("var{}", s.index()),
            Node::Car(l) => format!("car{}", l.0),
            Node::Cdr(l) => format!("cdr{}", l.0),
            Node::Halt => "halt".to_owned(),
            Node::ThreadRet => "threadret".to_owned(),
            Node::AtomCell => "atomcell".to_owned(),
        };
        let c = self.pool.intern(&name);
        self.node_of.insert(c, n);
        c
    }

    fn val_const(&mut self, val: Val0) -> Const {
        let name = match val {
            Val0::Lam(l) => format!("lam{}", l.0),
            Val0::Basic(b) => format!("basic:{b:?}"),
            Val0::Pair(l) => format!("pair{}", l.0),
            Val0::Tid => "tid".to_owned(),
            Val0::RetK => "retk".to_owned(),
            Val0::Atom(l) => format!("atom{}", l.0),
        };
        let c = self.pool.intern(&name);
        self.val_of.insert(c, val);
        c
    }

    fn idx_const(&mut self, i: usize) -> Const {
        self.pool.intern(&format!("i{i}"))
    }

    fn arity_const(&mut self, n: usize) -> Const {
        self.pool.intern(&format!("n{n}"))
    }

    fn site_const(&mut self) -> Const {
        let c = self.pool.intern(&format!("s{}", self.next_site));
        self.next_site += 1;
        c
    }

    fn fact(&mut self, rel: RelId, tuple: &[Const]) {
        if self.db.as_mut().expect("db initialized").insert(rel, tuple) {
            self.edb_facts += 1;
        }
    }

    /// Seeds `val` directly into `node` (the solver's `add_values`).
    fn seed(&mut self, node: Node, val: Val0) {
        let n = self.node_const(node);
        let val_c = self.val_const(val);
        self.fact(self.rels.flow, &[n, val_c]);
    }

    /// Adds an unconditional subset edge (the solver's `add_edge`).
    fn subset(&mut self, from: Node, to: Node) {
        let f = self.node_const(from);
        let t = self.node_const(to);
        self.fact(self.rels.edge, &[f, t]);
    }

    /// The value of an atom, as either a node or a constant.
    fn atom(&self, e: &AExp) -> Result<Node, Val0> {
        match e {
            AExp::Var(x) => Ok(Node::Var(*x)),
            AExp::Lam(l) => Err(Val0::Lam(*l)),
            AExp::Lit(l) => Err(Val0::Basic(AbsBasic::from_lit(*l))),
        }
    }

    /// `atom ⊆ node`.
    fn flow_atom(&mut self, e: &AExp, to: Node) {
        match self.atom(e) {
            Ok(from) => self.subset(from, to),
            Err(val) => self.seed(to, val),
        }
    }

    /// Registers an application trigger site (the solver's `ApplyRule`):
    /// each `args[i]` flows to parameter i of every arity-matching λ
    /// arriving at `op_node`.
    fn app_site(&mut self, op_node: Node, args: &[AExp]) {
        let s = self.site_const();
        let f = self.node_const(op_node);
        let n = self.arity_const(args.len());
        self.fact(self.rels.app, &[s, f, n]);
        for (i, arg) in args.iter().enumerate() {
            let ic = self.idx_const(i);
            match self.atom(arg) {
                Ok(node) => {
                    let a = self.node_const(node);
                    self.fact(self.rels.appargn, &[s, ic, a]);
                }
                Err(val) => {
                    let val_c = self.val_const(val);
                    self.fact(self.rels.appargc, &[s, ic, val_c]);
                }
            }
        }
    }

    /// `value ⊆ cont` — into a λ's first parameter, or via an app site
    /// when the continuation is a variable (the solver's
    /// `flow_into_cont`).
    fn flow_value_into_cont(&mut self, cont: &AExp, vals: &[Val0]) {
        match cont {
            AExp::Lam(l) => {
                if let Some(&param) = self.cps.lam(*l).params.first() {
                    for &val in vals {
                        self.seed(Node::Var(param), val);
                    }
                }
            }
            AExp::Var(k) => {
                let s = self.site_const();
                let f = self.node_const(Node::Var(*k));
                let n = self.arity_const(1);
                self.fact(self.rels.app, &[s, f, n]);
                let ic = self.idx_const(0);
                for &val in vals {
                    let val_c = self.val_const(val);
                    self.fact(self.rels.appargc, &[s, ic, val_c]);
                }
            }
            AExp::Lit(_) => {}
        }
    }

    /// `atom ⊆ cont` for an arbitrary atom (the solver's
    /// `flow_into_cont` with a node RHS).
    fn flow_atom_into_cont(&mut self, cont: &AExp, arg: &AExp) {
        match cont {
            AExp::Lam(l) => {
                if let Some(&param) = self.cps.lam(*l).params.first() {
                    self.flow_atom(arg, Node::Var(param));
                }
            }
            AExp::Var(k) => {
                let s = self.site_const();
                let f = self.node_const(Node::Var(*k));
                let n = self.arity_const(1);
                self.fact(self.rels.app, &[s, f, n]);
                let ic = self.idx_const(0);
                match self.atom(arg) {
                    Ok(node) => {
                        let a = self.node_const(node);
                        self.fact(self.rels.appargn, &[s, ic, a]);
                    }
                    Err(val) => {
                        let val_c = self.val_const(val);
                        self.fact(self.rels.appargc, &[s, ic, val_c]);
                    }
                }
            }
            AExp::Lit(_) => {}
        }
    }

    /// `node ⊆ cont` for a global node (the solver's
    /// `flow_rule_target`): a direct edge into a λ continuation, an app
    /// site when the continuation is a variable.
    fn flow_node_into_cont(&mut self, cont: &AExp, from: Node) {
        match cont {
            AExp::Lam(l) => {
                if let Some(&param) = self.cps.lam(*l).params.first() {
                    self.subset(from, Node::Var(param));
                }
            }
            AExp::Var(k) => {
                let s = self.site_const();
                let f = self.node_const(Node::Var(*k));
                let n = self.arity_const(1);
                self.fact(self.rels.app, &[s, f, n]);
                let ic = self.idx_const(0);
                let a = self.node_const(from);
                self.fact(self.rels.appargn, &[s, ic, a]);
            }
            AExp::Lit(_) => {}
        }
    }

    fn generate(&mut self) {
        // λ structure facts.
        for lam_id in self.cps.lam_ids() {
            let lam = self.cps.lam(lam_id).clone();
            let lv = self.val_const(Val0::Lam(lam_id));
            let n = self.arity_const(lam.params.len());
            self.fact(self.rels.lamarity, &[lv, n]);
            for (i, &p) in lam.params.iter().enumerate() {
                let ic = self.idx_const(i);
                let pc = self.node_const(Node::Var(p));
                self.fact(self.rels.lamparam, &[lv, ic, pc]);
            }
        }

        for call_id in self.cps.call_ids() {
            let call = self.cps.call(call_id).clone();
            match &call.kind {
                CallKind::App { func, args } => match func {
                    AExp::Lam(l) => {
                        let lam = self.cps.lam(*l).clone();
                        if lam.params.len() == args.len() {
                            for (&param, arg) in lam.params.iter().zip(args) {
                                self.flow_atom(arg, Node::Var(param));
                            }
                        }
                    }
                    AExp::Var(f) => self.app_site(Node::Var(*f), args),
                    AExp::Lit(_) => {}
                },
                CallKind::If { .. } => {}
                CallKind::PrimCall { op, args, cont } => match classify(*op) {
                    PrimSpec::Abort => {}
                    PrimSpec::Basics(bs) => {
                        let vals: Vec<Val0> = bs.iter().map(|&b| Val0::Basic(b)).collect();
                        self.flow_value_into_cont(cont, &vals);
                    }
                    PrimSpec::AllocPair => {
                        self.cons_sites.push(call.label);
                        if let Some(a0) = args.first() {
                            self.flow_atom(a0, Node::Car(call.label));
                        }
                        if let Some(a1) = args.get(1) {
                            self.flow_atom(a1, Node::Cdr(call.label));
                        }
                        self.flow_value_into_cont(cont, &[Val0::Pair(call.label)]);
                    }
                    PrimSpec::ReadCar | PrimSpec::ReadCdr => {
                        let want_car = classify(*op) == PrimSpec::ReadCar;
                        let Some(AExp::Var(scrutinee)) = args.first() else {
                            continue;
                        };
                        // Resolve the projection target exactly as the
                        // solver does.
                        enum Target {
                            Node(Node),
                            Cont(Node),
                        }
                        let target = match cont {
                            AExp::Lam(l) => match self.cps.lam(*l).params.first() {
                                Some(&p) => Target::Node(Node::Var(p)),
                                None => continue,
                            },
                            AExp::Var(k) => Target::Cont(Node::Var(*k)),
                            AExp::Lit(_) => continue,
                        };
                        let s = self.site_const();
                        let x = self.node_const(Node::Var(*scrutinee));
                        let rel = if want_car {
                            self.rels.projcar
                        } else {
                            self.rels.projcdr
                        };
                        self.fact(rel, &[s, x]);
                        match target {
                            Target::Node(n) => {
                                let t = self.node_const(n);
                                self.fact(self.rels.projnode, &[s, t]);
                            }
                            Target::Cont(n) => {
                                let t = self.node_const(n);
                                self.fact(self.rels.projcont, &[s, t]);
                            }
                        }
                    }
                    PrimSpec::AllocAtom => {
                        if let Some(a0) = args.first() {
                            self.flow_atom(a0, Node::AtomCell);
                        }
                        self.flow_value_into_cont(cont, &[Val0::Atom(call.label)]);
                    }
                    PrimSpec::ReadAtom => {
                        self.flow_node_into_cont(cont, Node::AtomCell);
                    }
                    PrimSpec::WriteAtom => {
                        if let Some(a1) = args.get(1) {
                            self.flow_atom(a1, Node::AtomCell);
                            self.flow_atom_into_cont(cont, a1);
                        }
                    }
                    PrimSpec::CasAtom => {
                        if let Some(a2) = args.get(2) {
                            self.flow_atom(a2, Node::AtomCell);
                        }
                        self.flow_value_into_cont(cont, &[Val0::Basic(AbsBasic::AnyBool)]);
                    }
                },
                CallKind::Spawn { thunk, cont } => {
                    // Mirror of the solver: the thunk's continuation
                    // parameter receives the thread-return continuation,
                    // the parent continuation receives a handle.
                    match thunk {
                        AExp::Lam(l) => {
                            let lam = self.cps.lam(*l).clone();
                            if let [param] = lam.params[..] {
                                self.seed(Node::Var(param), Val0::RetK);
                            }
                        }
                        AExp::Var(f) => {
                            let s = self.site_const();
                            let fc = self.node_const(Node::Var(*f));
                            let n = self.arity_const(1);
                            self.fact(self.rels.app, &[s, fc, n]);
                            let ic = self.idx_const(0);
                            let retk = self.val_const(Val0::RetK);
                            self.fact(self.rels.appargc, &[s, ic, retk]);
                        }
                        AExp::Lit(_) => {}
                    }
                    self.flow_value_into_cont(cont, &[Val0::Tid]);
                }
                CallKind::Join { cont, .. } => {
                    self.flow_node_into_cont(cont, Node::ThreadRet);
                }
                CallKind::Fix { bindings, .. } => {
                    for &(name, lam) in bindings {
                        self.seed(Node::Var(name), Val0::Lam(lam));
                    }
                }
                CallKind::Halt { value } => {
                    self.flow_atom(value, Node::Halt);
                }
            }
        }

        // Pair field linkage.
        for &label in &self.cons_sites.clone() {
            let pv = self.val_const(Val0::Pair(label));
            let car = self.node_const(Node::Car(label));
            let cdr = self.node_const(Node::Cdr(label));
            self.fact(self.rels.paircar, &[pv, car]);
            self.fact(self.rels.paircdr, &[pv, cdr]);
        }
    }

    fn install_rules(&mut self) {
        let r = &self.rels;
        let one = self.pool.intern("n1");
        let zero = self.pool.intern("i0");
        // Subset propagation.
        self.program
            .rule(
                r.flow,
                vec![v("b"), v("val")],
                vec![
                    (r.edge, vec![v("a"), v("b")]),
                    (r.flow, vec![v("a"), v("val")]),
                ],
            )
            .expect("edge rule");
        // Application, variable argument.
        self.program
            .rule(
                r.flow,
                vec![v("p"), v("val")],
                vec![
                    (r.app, vec![v("s"), v("f"), v("n")]),
                    (r.flow, vec![v("f"), v("L")]),
                    (r.lamarity, vec![v("L"), v("n")]),
                    (r.lamparam, vec![v("L"), v("i"), v("p")]),
                    (r.appargn, vec![v("s"), v("i"), v("a")]),
                    (r.flow, vec![v("a"), v("val")]),
                ],
            )
            .expect("app node rule");
        // Application, constant argument.
        self.program
            .rule(
                r.flow,
                vec![v("p"), v("val")],
                vec![
                    (r.app, vec![v("s"), v("f"), v("n")]),
                    (r.flow, vec![v("f"), v("L")]),
                    (r.lamarity, vec![v("L"), v("n")]),
                    (r.lamparam, vec![v("L"), v("i"), v("p")]),
                    (r.appargc, vec![v("s"), v("i"), v("val")]),
                ],
            )
            .expect("app const rule");
        // A thread-return continuation in operator position routes the
        // single argument of the site to the global ThreadRet node
        // (mirror of the solver's RetK branch in `fire`).
        let retk = {
            let c = self.val_const(Val0::RetK);
            Term::Const(c)
        };
        let threadret = {
            let c = self.node_const(Node::ThreadRet);
            Term::Const(c)
        };
        let r = &self.rels;
        self.program
            .rule(
                r.flow,
                vec![threadret.clone(), v("val")],
                vec![
                    (r.app, vec![v("s"), v("f"), Term::Const(one)]),
                    (r.flow, vec![v("f"), retk.clone()]),
                    (r.appargn, vec![v("s"), Term::Const(zero), v("a")]),
                    (r.flow, vec![v("a"), v("val")]),
                ],
            )
            .expect("retk node rule");
        self.program
            .rule(
                r.flow,
                vec![threadret, v("val")],
                vec![
                    (r.app, vec![v("s"), v("f"), Term::Const(one)]),
                    (r.flow, vec![v("f"), retk]),
                    (r.appargc, vec![v("s"), Term::Const(zero), v("val")]),
                ],
            )
            .expect("retk const rule");
        // Projections to a direct node target.
        for (proj, pair) in [(r.projcar, r.paircar), (r.projcdr, r.paircdr)] {
            self.program
                .rule(
                    r.flow,
                    vec![v("t"), v("val")],
                    vec![
                        (proj, vec![v("s"), v("x")]),
                        (r.projnode, vec![v("s"), v("t")]),
                        (r.flow, vec![v("x"), v("P")]),
                        (pair, vec![v("P"), v("fld")]),
                        (r.flow, vec![v("fld"), v("val")]),
                    ],
                )
                .expect("proj node rule");
            // Projections through a continuation variable: the field
            // flows into the first parameter of 1-ary λs arriving there.
            self.program
                .rule(
                    r.flow,
                    vec![v("p"), v("val")],
                    vec![
                        (proj, vec![v("s"), v("x")]),
                        (r.projcont, vec![v("s"), v("k")]),
                        (r.flow, vec![v("x"), v("P")]),
                        (pair, vec![v("P"), v("fld")]),
                        (r.flow, vec![v("k"), v("L")]),
                        (r.lamarity, vec![v("L"), Term::Const(one)]),
                        (r.lamparam, vec![v("L"), Term::Const(zero), v("p")]),
                        (r.flow, vec![v("fld"), v("val")]),
                    ],
                )
                .expect("proj cont rule");
        }
    }

    fn run(mut self) -> ZeroCfaDatalog {
        self.db = Some(self.program.database());
        self.generate();
        self.install_rules();
        let mut db = self.db.take().expect("db present");
        let stats = self.program.run(&mut db);

        let mut flows: HashMap<Node, BTreeSet<Val0>> = HashMap::new();
        for t in db.tuples(self.rels.flow) {
            let (Some(&node), Some(&val)) = (self.node_of.get(&t[0]), self.val_of.get(&t[1]))
            else {
                continue;
            };
            flows.entry(node).or_default().insert(val);
        }
        ZeroCfaDatalog {
            flows,
            edb_facts: self.edb_facts,
            total_facts: db.total_facts(),
            stats,
        }
    }
}

/// Solves context-insensitive CFA for `program` by Datalog evaluation.
pub fn solve_zerocfa_datalog(program: &CpsProgram) -> ZeroCfaDatalog {
    Encoder::new(program).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::solve_zerocfa;

    fn both(src: &str) -> (crate::constraints::ZeroCfa, ZeroCfaDatalog) {
        let p = cfa_syntax::compile(src).unwrap();
        (solve_zerocfa(&p), solve_zerocfa_datalog(&p))
    }

    #[test]
    fn constant_reaches_halt() {
        let (_, d) = both("42");
        assert!(d.halt_flow().contains(&Val0::Basic(AbsBasic::Int(42))));
    }

    #[test]
    fn identity_merges_like_0cfa() {
        let (_, d) = both("(define (id x) x) (let ((a (id 3))) (id 4))");
        assert!(d.halt_flow().contains(&Val0::Basic(AbsBasic::Int(3))));
        assert!(d.halt_flow().contains(&Val0::Basic(AbsBasic::Int(4))));
    }

    #[test]
    fn pairs_project_precisely() {
        let (_, d) = both("(car (cons 7 8))");
        assert!(d.halt_flow().contains(&Val0::Basic(AbsBasic::Int(7))));
        assert!(!d.halt_flow().contains(&Val0::Basic(AbsBasic::Int(8))));
    }

    #[test]
    fn agrees_exactly_with_constraint_solver_on_basics() {
        for src in [
            "42",
            "((lambda (x) x) 1)",
            "(define (id x) x) (let ((a (id 3))) (id 4))",
            "(car (cons 7 8))",
            "(cdr (cons 7 8))",
            "(if (zero? 1) 10 20)",
            "(define (f g) (g 5)) (f (lambda (n) (+ n 1)))",
            "(define (f x) (f x)) (f (lambda (y) y))",
        ] {
            let p = cfa_syntax::compile(src).unwrap();
            let solver = solve_zerocfa(&p);
            let datalog = solve_zerocfa_datalog(&p);
            // Exact flow equality, node for node.
            for v in p.bound_vars() {
                assert_eq!(solver.var_flow(v), datalog.var_flow(v), "{src}: var {v:?}");
            }
            assert_eq!(solver.halt_flow(), datalog.halt_flow(), "{src}: halt");
        }
    }

    #[test]
    fn stats_report_work() {
        let (_, d) = both("(define (id x) x) (id (id 42))");
        assert!(d.edb_facts > 0);
        assert!(d.total_facts >= d.edb_facts);
        assert!(d.stats.rounds > 1);
        assert!(d.fact_count() > 0);
    }
}

//! A work-stealing parallel fixpoint engine over replicated stores —
//! the [`Replicated`] arm of the [`StoreBackend`] pair (the other arm,
//! one globally shared address-sharded store, lives in
//! [`crate::shardstore`]). Scheduling — steal discipline, pinned
//! wakeups, pending-counter termination, limit checks — is the generic
//! [`crate::fabric`] driver; this module contributes only the
//! store-specific half ([`fabric::BackendWorker`]).
//!
//! [`run_fixpoint_parallel`] shards the worklist of [`crate::engine`]
//! across N worker threads. The design leans on exactly the two
//! properties PR 1's interned store introduced for this purpose:
//!
//! * **flow sets are immutable epoch-stamped snapshots** — every worker
//!   owns a full [`AbsStore`] replica, so reads never cross a thread
//!   boundary and never see a torn set;
//! * **per-address epochs are the conflict detector** — wake queues
//!   are deliberately dedup-free (an is-queued bitmap would have to be
//!   kept coherent against growth arriving from remote merges), so a
//!   configuration woken by several growth events pops several times
//!   and the epoch gate absorbs the duplicates in O(|reads|) at pop
//!   time.
//!
//! # How work and facts move
//!
//! Configurations are sharded by **first touch**: a fresh configuration
//! is deduplicated once, globally, through the fabric's hash-sharded
//! seen-set, entered into a stealable queue, and becomes *homed* at
//! whichever worker first evaluates it — its dependency lists, read
//! set, and last-run epoch live only there, and every re-evaluation
//! (wakeup) is pinned to that home. Only never-evaluated configurations
//! migrate between workers, so no evaluation is ever repeated on
//! another replica and the total evaluation count stays in the same
//! regime as the sequential engine's.
//!
//! Each evaluation runs against the worker's own replica. When a step
//! grows an address, the worker wakes its *local* dependents and
//! broadcasts the grown rows — as `(address, values)` pairs, since
//! dense ids are replica-local — to every other worker's inbox. A
//! worker merges inbox batches into its replica before taking new
//! work; merges that grow an address wake that replica's dependents in
//! turn. Every generated fact therefore reaches every replica, which is
//! what keeps pinning sound: growth anywhere eventually becomes growth
//! at the home replica, which re-wakes exactly the configurations that
//! read the grown address there.
//!
//! # Termination
//!
//! The fabric's single atomic `pending` counter tracks queued tasks,
//! in-flight evaluations, and undelivered fact batches; a task's
//! increment is released only after all work it spawned has been
//! counted. When an idle worker observes `pending == 0` there is
//! provably no work anywhere and it raises the done flag.
//!
//! # Convergence
//!
//! The fixed point of a monotone transfer function is unique, so any
//! interleaving must reach the same configuration set and store facts
//! as [`crate::engine::run_fixpoint`] and [`crate::reference`]; the
//! differential tests in `tests/engine_differential.rs` enforce that on
//! the Scheme and FJ suites, the worst-case family, and random
//! programs. Worker replicas are equal at quiescence; the result store
//! is still assembled by id-remapping union ([`AbsStore::merge_from`])
//! as a defensive cross-check.

use crate::engine::{
    AbstractMachine, EngineLimits, EvalMode, FixpointResult, SchedStats, TrackedStore,
};
use crate::fabric::{self, Fabric, WorkerCtx};
use crate::fxhash::FxHashMap;
use crate::store::AbsStore;
use std::sync::Arc;
use std::time::Instant;

/// An [`AbstractMachine`] that can be driven by N workers at once.
///
/// Each worker drives its own machine instance (forked up front), so
/// `step` keeps its `&mut self` freedom — metric logs, memo tables and
/// environment pools stay thread-local — and the per-worker state is
/// folded back into the original machine when the run ends.
pub trait ParallelMachine: AbstractMachine + Send {
    /// A fresh worker-local instance sharing the immutable program data
    /// (metric accumulators start empty).
    fn fork(&self) -> Self;

    /// Folds a worker's accumulated state back into `self`. Called once
    /// per worker after the fixpoint is reached; the union across
    /// workers must be order-insensitive.
    fn absorb(&mut self, worker: Self);
}

/// Facts in transit between replicas: `(address, grown row values)`.
/// Value ids are replica-local, so the wire format is value-level; the
/// receiving replica re-interns (and its hash-consed ids make that one
/// hash per distinct value).
type FactBatch<A, V> = Vec<(A, Vec<V>)>;

/// The replicated backend's inter-worker message: a fact batch shared
/// (`Arc`, not copied) across its receivers.
type Batch<M> = Arc<FactBatch<<M as AbstractMachine>::Addr, <M as AbstractMachine>::Val>>;

/// The store-specific half of a replicated worker: a full store replica
/// plus the same scheduling tables the sequential engine keeps
/// (configs, dependency lists with pruning, read sets, last-run
/// epochs). The loop that drives it is [`crate::fabric`].
struct ReplicatedWorker<M: AbstractMachine> {
    machine: M,
    store: AbsStore<M::Addr, M::Val>,
    configs: Vec<M::Config>,
    index: FxHashMap<M::Config, usize>,
    deps: Vec<Vec<usize>>,
    config_reads: Vec<Vec<u32>>,
    last_run_epoch: Vec<Option<u64>>,
    /// Scratch for [`ReplicatedWorker::wake_dependents`], recycled
    /// across calls.
    woken: Vec<usize>,
    /// Successor scratch, recycled across evaluations.
    successors: Vec<M::Config>,
    /// Tracking-buffer scratch (reads, grew, delta), recycled likewise.
    bufs: (Vec<u32>, Vec<u32>, Vec<u32>),
}

impl<M> ReplicatedWorker<M>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    fn new(machine: M) -> Self {
        ReplicatedWorker {
            machine,
            store: AbsStore::new(),
            configs: Vec::new(),
            index: FxHashMap::default(),
            deps: Vec::new(),
            config_reads: Vec::new(),
            last_run_epoch: Vec::new(),
            woken: Vec::new(),
            successors: Vec::new(),
            bufs: Default::default(),
        }
    }

    /// Wakes the local dependents of the (sorted, unique) grown address
    /// ids. Wakeups are pinned here — the dependents' scheduling state
    /// lives in this replica — and carry no is-queued dedup: the epoch
    /// gate disarms duplicates at pop time.
    fn wake_dependents(&mut self, grown: &[u32], ctx: &mut WorkerCtx<'_, M::Config, Batch<M>>) {
        let woken = &mut self.woken;
        woken.clear();
        for &a in grown {
            if let Some(dependents) = self.deps.get(a as usize) {
                woken.extend_from_slice(dependents);
            }
        }
        woken.sort_unstable();
        woken.dedup();
        if !woken.is_empty() {
            ctx.trace.wake_batch(woken.len() as u64);
        }
        for &j in woken.iter() {
            ctx.wake_local(j);
        }
    }

    /// Broadcasts the grown rows of this step to every other replica.
    /// Rows (not deltas) keep the wire format independent of join
    /// internals; receiving joins dedup for free. The batch is built
    /// once and shared behind an `Arc` — receivers read it in place.
    fn broadcast(&self, grown: &[u32], ctx: &mut WorkerCtx<'_, M::Config, Batch<M>>) {
        let n = ctx.threads();
        if n == 1 || grown.is_empty() {
            return;
        }
        let batch: Batch<M> = Arc::new(
            grown
                .iter()
                .map(|&a| {
                    let addr = self.store.addr(a).clone();
                    let values = self
                        .store
                        .flow_by_id(a)
                        .iter()
                        .map(|id| self.store.val(id).clone())
                        .collect();
                    (addr, values)
                })
                .collect(),
        );
        for other in 0..n {
            if other == ctx.id() {
                continue;
            }
            ctx.send(other, Arc::clone(&batch));
        }
    }
}

impl<M> fabric::BackendWorker for ReplicatedWorker<M>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    type Config = M::Config;
    type Msg = Batch<M>;

    fn seed(&mut self, _ctx: &mut WorkerCtx<'_, M::Config, Batch<M>>) {
        // Every replica is seeded identically, so seed facts need no
        // broadcast.
        let mut tracked =
            TrackedStore::wrap(&mut self.store, None, Vec::new(), Vec::new(), Vec::new());
        self.machine.seed(&mut tracked);
    }

    fn intern(&mut self, cfg: M::Config) -> usize {
        if let Some(&i) = self.index.get(&cfg) {
            return i;
        }
        let i = self.configs.len();
        self.configs.push(cfg.clone());
        self.index.insert(cfg, i);
        self.config_reads.push(Vec::new());
        self.last_run_epoch.push(None);
        i
    }

    fn gated(&self, i: usize) -> bool {
        match self.last_run_epoch[i] {
            Some(epoch) => self.config_reads[i]
                .iter()
                .all(|&a| self.store.addr_epoch(a) <= epoch),
            None => false,
        }
    }

    /// Evaluates one task (by local index): step, dependency
    /// registration with pruning, successor dedup, local wakeups, fact
    /// broadcast. Mirrors one iteration of
    /// [`crate::engine::run_fixpoint`].
    fn evaluate(&mut self, i: usize, ctx: &mut WorkerCtx<'_, M::Config, Batch<M>>) {
        let epoch_at_start = self.store.epoch();
        let config = self.configs[i].clone();
        self.successors.clear();
        let (reads_buf, grew_buf, delta_buf) = &mut self.bufs;
        reads_buf.clear();
        grew_buf.clear();
        // The semi-naive baseline works per replica: this config is
        // pinned here, its last evaluation ran against this store, and
        // facts merged from other replicas land in this store's delta
        // logs — so the epochs line up exactly as in the sequential
        // engine.
        let baseline = match ctx.mode() {
            EvalMode::SemiNaive => self.last_run_epoch[i],
            EvalMode::FullReeval => None,
        };
        let mut tracked = TrackedStore::wrap(
            &mut self.store,
            baseline,
            std::mem::take(reads_buf),
            std::mem::take(grew_buf),
            std::mem::take(delta_buf),
        );
        self.machine
            .step(&config, &mut tracked, &mut self.successors);
        let (reads, grew, delta, step_delta, step_applies) = tracked.into_parts();
        self.bufs = (reads, grew, delta);
        ctx.delta_facts += step_delta;
        ctx.delta_applies += step_applies;
        self.last_run_epoch[i] = Some(epoch_at_start);

        // Dependency registration with stale-dep pruning — the shared
        // logic of both engines.
        crate::engine::register_deps(&mut self.deps, &mut self.config_reads, i, &mut self.bufs.0);

        ctx.submit_fresh(&mut self.successors);

        let mut grew = std::mem::take(&mut self.bufs.1);
        grew.sort_unstable();
        grew.dedup();
        self.wake_dependents(&grew, ctx);
        self.broadcast(&grew, ctx);
        self.bufs.1 = grew;
    }

    fn describe(&self, i: usize) -> String {
        format!("{:?}", self.configs[i])
    }

    /// Merges one delivered fact batch into the replica and wakes the
    /// dependents of every address that grew. The batch is shared with
    /// the other receivers ([`std::sync::Arc`]); values are cloned only
    /// when first interned locally.
    fn on_msg(&mut self, batch: Batch<M>, ctx: &mut WorkerCtx<'_, M::Config, Batch<M>>) {
        let mut grown: Vec<u32> = Vec::new();
        let mut ids: Vec<u32> = Vec::new();
        let mut delta: Vec<u32> = Vec::new();
        for (addr, values) in batch.iter() {
            let addr_id = self.store.addr_id(addr);
            ids.clear();
            ids.extend(values.iter().map(|v| self.store.val_id_ref(v)));
            ids.sort_unstable();
            ids.dedup();
            delta.clear();
            if self.store.join_ids(addr_id, &ids, &mut delta) {
                grown.push(addr_id);
            }
        }
        grown.sort_unstable();
        grown.dedup();
        self.wake_dependents(&grown, ctx);
    }

    fn enforce_watermark(&mut self, watermark: usize, threads: usize) {
        // Per replica: the broadcast design multiplies log memory by
        // the worker count, so each replica holds itself to its share
        // (O(1) — log bytes are tracked incrementally).
        let share = watermark / threads;
        if self.store.delta_log_bytes() > share {
            self.store.trim_delta_logs();
        }
    }

    fn finish(&mut self, sched: &mut SchedStats) {
        // Measure the replica before the driver unions it away: the sum
        // across workers is the memory the replication design pays.
        sched.store_resident_bytes = self.store.approx_bytes() as u64;
    }
}

/// Runs `machine` to its least fixed point on `threads` worker threads
/// (or until a limit fires).
///
/// The returned [`FixpointResult`] matches [`crate::engine::run_fixpoint`]
/// on configurations and store facts (the fixed point is unique);
/// `configs` order is arbitrary, `iterations`/`skipped`/`wakeups` are
/// summed across workers, and `delta_facts` counts evaluation-side
/// growth per replica (two workers deriving the same fact independently
/// both count it).
pub fn run_fixpoint_parallel<M>(
    machine: &mut M,
    threads: usize,
    limits: EngineLimits,
) -> FixpointResult<M::Config, M::Addr, M::Val>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    run_fixpoint_parallel_with(machine, threads, limits, EvalMode::SemiNaive)
}

/// [`run_fixpoint_parallel`] under an explicit [`EvalMode`] — the
/// fixpoint is mode-independent; the mode only changes how much of the
/// product each re-evaluation redoes.
pub fn run_fixpoint_parallel_with<M>(
    machine: &mut M,
    threads: usize,
    limits: EngineLimits,
    mode: EvalMode,
) -> FixpointResult<M::Config, M::Addr, M::Val>
where
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    let start = Instant::now();
    let threads = threads.max(1);

    let fabric: Fabric<M::Config, Batch<M>> = Fabric::new(threads);
    fabric.submit_root(machine.initial());

    let backends: Vec<ReplicatedWorker<M>> = (0..threads)
        .map(|_| ReplicatedWorker::new(machine.fork()))
        .collect();
    let reports = fabric::drive(&fabric, backends, mode, &limits, start);
    let (status, configs) = fabric.finish();

    let mut store: AbsStore<M::Addr, M::Val> = AbsStore::new();
    let (mut iterations, mut skipped, mut wakeups) = (0u64, 0u64, 0u64);
    let (mut delta_facts, mut delta_applies) = (0u64, 0u64);
    let mut sched = SchedStats::default();
    let mut rings = Vec::new();
    for report in reports {
        iterations += report.iterations;
        skipped += report.skipped;
        wakeups += report.wakeups;
        delta_facts += report.delta_facts;
        delta_applies += report.delta_applies;
        sched.absorb(&report.sched);
        rings.push(report.trace);
        store.merge_from(&report.backend.store);
        machine.absorb(report.backend.machine);
    }

    FixpointResult {
        configs,
        store,
        status,
        iterations,
        skipped,
        wakeups,
        delta_facts,
        delta_applies,
        sched,
        elapsed: start.elapsed(),
        queue_wait: std::time::Duration::ZERO,
        trace: crate::telemetry::RunTrace::from_buffers(rings),
    }
}

/// A parallel store backend, as a type-level selector: how N workers
/// share the abstract store.
///
/// [`run_fixpoint_parallel_on`] is generic over this, so callers (the
/// differential harness, the benchmarks, the CI backend matrix) can
/// run the *same* machine through both designs:
///
/// * [`Replicated`] — per-worker store replicas with all-to-all fact
///   broadcast (this module). Memory O(program × threads); no shared
///   rows, so evaluations never contend on a lock.
/// * [`Sharded`] — one globally shared, address-sharded store
///   ([`crate::shardstore`]). Memory O(program); facts are interned
///   once and never re-joined per replica; writes and wakeups route
///   point-to-point to row owners.
pub trait StoreBackend {
    /// Short backend name (bench columns, env-var selection).
    const NAME: &'static str;

    /// Runs `machine` to its least fixed point on `threads` workers
    /// under this backend.
    fn run_fixpoint<M>(
        machine: &mut M,
        threads: usize,
        limits: EngineLimits,
        mode: EvalMode,
    ) -> FixpointResult<M::Config, M::Addr, M::Val>
    where
        M: ParallelMachine,
        M::Config: Send + Sync,
        M::Addr: Send + Sync + Ord,
        M::Val: Send + Sync;
}

/// Per-worker store replicas + all-to-all fact broadcast (the backend
/// implemented by this module).
#[derive(Copy, Clone, Debug, Default)]
pub struct Replicated;

impl StoreBackend for Replicated {
    const NAME: &'static str = "replicated";

    fn run_fixpoint<M>(
        machine: &mut M,
        threads: usize,
        limits: EngineLimits,
        mode: EvalMode,
    ) -> FixpointResult<M::Config, M::Addr, M::Val>
    where
        M: ParallelMachine,
        M::Config: Send + Sync,
        M::Addr: Send + Sync + Ord,
        M::Val: Send + Sync,
    {
        run_fixpoint_parallel_with(machine, threads, limits, mode)
    }
}

impl crate::pool::PoolBackend for Replicated {
    fn tenant<M>(
        mut machine: M,
        limits: EngineLimits,
        mode: EvalMode,
        deposit: Box<dyn FnOnce(crate::pool::PoolRun<M>) + Send>,
    ) -> Box<dyn crate::pool::TenantRun>
    where
        M: ParallelMachine + 'static,
        M::Config: Send + Sync + 'static,
        M::Addr: Send + Sync + Ord + 'static,
        M::Val: Send + Sync + 'static,
    {
        let fabric: Fabric<M::Config, Batch<M>> = Fabric::new(1);
        fabric.submit_root(machine.initial());
        let backend = ReplicatedWorker::new(machine.fork());
        // Mirrors the single-worker tail of run_fixpoint_parallel_with:
        // merge the replica into a fresh store by id-remapping union,
        // absorb the worker machine — so a pooled fixpoint is assembled
        // exactly like a solo one.
        let assemble =
            move |backend: ReplicatedWorker<M>, status, configs, totals: crate::pool::RunTotals| {
                let mut store: AbsStore<M::Addr, M::Val> = AbsStore::new();
                store.merge_from(&backend.store);
                machine.absorb(backend.machine);
                crate::pool::PoolRun {
                    machine,
                    fixpoint: FixpointResult {
                        configs,
                        store,
                        status,
                        iterations: totals.iterations,
                        skipped: totals.skipped,
                        wakeups: totals.wakeups,
                        delta_facts: totals.delta_facts,
                        delta_applies: totals.delta_applies,
                        sched: totals.sched,
                        elapsed: totals.elapsed,
                        queue_wait: totals.queue_wait,
                        trace: totals.trace,
                    },
                }
            };
        Box::new(crate::pool::SoloTenant::new(
            fabric, backend, limits, mode, assemble, deposit,
        ))
    }
}

/// One shared, address-sharded store ([`crate::shardstore`]).
#[derive(Copy, Clone, Debug, Default)]
pub struct Sharded;

impl StoreBackend for Sharded {
    const NAME: &'static str = "sharded";

    fn run_fixpoint<M>(
        machine: &mut M,
        threads: usize,
        limits: EngineLimits,
        mode: EvalMode,
    ) -> FixpointResult<M::Config, M::Addr, M::Val>
    where
        M: ParallelMachine,
        M::Config: Send + Sync,
        M::Addr: Send + Sync + Ord,
        M::Val: Send + Sync,
    {
        crate::shardstore::run_fixpoint_sharded_with(machine, threads, limits, mode)
    }
}

/// [`run_fixpoint_parallel_with`], generic over the store backend.
///
/// # Examples
///
/// ```
/// use cfa_core::engine::{EngineLimits, EvalMode};
/// use cfa_core::kcfa::KCfaMachine;
/// use cfa_core::parallel::{run_fixpoint_parallel_on, Replicated, Sharded};
///
/// let p = cfa_syntax::compile("((lambda (x) x) 1)").unwrap();
/// let rep = run_fixpoint_parallel_on::<Replicated, _>(
///     &mut KCfaMachine::new(&p, 1),
///     2,
///     EngineLimits::default(),
///     EvalMode::SemiNaive,
/// );
/// let sh = run_fixpoint_parallel_on::<Sharded, _>(
///     &mut KCfaMachine::new(&p, 1),
///     2,
///     EngineLimits::default(),
///     EvalMode::SemiNaive,
/// );
/// // The fixed point of a monotone transfer function is unique, so
/// // both backends reach identical facts.
/// assert_eq!(rep.store.fact_count(), sh.store.fact_count());
/// assert_eq!(rep.config_count(), sh.config_count());
/// ```
pub fn run_fixpoint_parallel_on<B, M>(
    machine: &mut M,
    threads: usize,
    limits: EngineLimits,
    mode: EvalMode,
) -> FixpointResult<M::Config, M::Addr, M::Val>
where
    B: StoreBackend,
    M: ParallelMachine,
    M::Config: Send + Sync,
    M::Addr: Send + Sync + Ord,
    M::Val: Send + Sync,
{
    B::run_fixpoint(machine, threads, limits, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_fixpoint, Status};
    use std::time::Duration;

    /// The toy machine of the sequential engine tests.
    #[derive(Clone)]
    struct Counter {
        n: u32,
    }

    impl AbstractMachine for Counter {
        type Config = u32;
        type Addr = u32;
        type Val = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn step(&mut self, c: &u32, s: &mut TrackedStore<'_, u32, u32>, out: &mut Vec<u32>) {
            let c = *c;
            if c < self.n {
                s.join(&(c % 3), [c]);
                out.push(c + 1);
            } else {
                let _ = s.read(&0);
            }
        }
    }

    impl ParallelMachine for Counter {
        fn fork(&self) -> Self {
            self.clone()
        }
        fn absorb(&mut self, _worker: Self) {}
    }

    #[test]
    fn parallel_matches_sequential_on_counter() {
        for threads in [1, 2, 4] {
            let seq = run_fixpoint(&mut Counter { n: 40 }, EngineLimits::default());
            let par =
                run_fixpoint_parallel(&mut Counter { n: 40 }, threads, EngineLimits::default());
            assert_eq!(par.status, Status::Completed, "threads={threads}");
            let mut seq_configs = seq.configs.clone();
            let mut par_configs = par.configs.clone();
            seq_configs.sort_unstable();
            par_configs.sort_unstable();
            assert_eq!(seq_configs, par_configs, "threads={threads}");
            for addr in 0..3u32 {
                assert_eq!(
                    seq.store.read(&addr),
                    par.store.read(&addr),
                    "threads={threads}"
                );
            }
            assert_eq!(
                seq.store.fact_count(),
                par.store.fact_count(),
                "threads={threads}"
            );
        }
    }

    /// The reader (scheduled first) reads two addresses that two later
    /// configurations grow one step apart. The parallel queues carry no
    /// is-queued bitmap, so the second growth enqueues a second wakeup;
    /// by the time it pops, the first re-evaluation has already seen
    /// both values and the epoch gate must skip it. With one worker the
    /// schedule is deterministic: root, reader, two growers, the
    /// justified re-run, then exactly one gate-skipped duplicate.
    struct TwoGrowers;

    impl AbstractMachine for TwoGrowers {
        type Config = u32;
        type Addr = u32;
        type Val = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn step(&mut self, c: &u32, s: &mut TrackedStore<'_, u32, u32>, out: &mut Vec<u32>) {
            match *c {
                // Root: schedule the reader before the growers.
                0 => out.extend([10, 1, 2]),
                1 => s.join(&100, [7]),
                2 => s.join(&101, [8]),
                10 => {
                    let _ = s.read(&100);
                    let _ = s.read(&101);
                }
                _ => {}
            }
        }
    }

    impl ParallelMachine for TwoGrowers {
        fn fork(&self) -> Self {
            TwoGrowers
        }
        fn absorb(&mut self, _worker: Self) {}
    }

    #[test]
    fn epoch_gate_fires_on_duplicate_wakeups() {
        let r = run_fixpoint_parallel(&mut TwoGrowers, 1, EngineLimits::default());
        assert_eq!(r.status, Status::Completed);
        assert_eq!(r.wakeups, 2, "each grower wakes the reader once");
        assert_eq!(r.skipped, 1, "the duplicate wakeup dies at the epoch gate");
        assert_eq!(
            r.iterations, 5,
            "root, reader, growers, one justified re-run"
        );
        assert_eq!(r.store.read(&100), [7].into_iter().collect());
        assert_eq!(r.store.read(&101), [8].into_iter().collect());
    }

    /// Feedback machine: the fixpoint needs repeated re-evaluations, so
    /// wakeups and fact broadcasts cross worker boundaries constantly.
    struct Feedback;

    impl AbstractMachine for Feedback {
        type Config = u8;
        type Addr = u8;
        type Val = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn step(&mut self, c: &u8, s: &mut TrackedStore<'_, u8, u8>, out: &mut Vec<u8>) {
            if *c == 0 {
                s.join(&0, [1u8]);
                out.extend([1, 2]);
            } else {
                let seen = s.read(&(*c % 2));
                let next: Vec<u8> = seen
                    .iter()
                    .map(|id| *s.val(id))
                    .filter(|&v| v < 40)
                    .map(|v| v + 1)
                    .collect();
                s.join(&((*c + 1) % 2), next);
            }
        }
    }

    impl ParallelMachine for Feedback {
        fn fork(&self) -> Self {
            Feedback
        }
        fn absorb(&mut self, _worker: Self) {}
    }

    #[test]
    fn parallel_feedback_converges_across_thread_counts() {
        let seq = run_fixpoint(&mut Feedback, EngineLimits::default());
        for threads in [1, 2, 4] {
            let par = run_fixpoint_parallel(&mut Feedback, threads, EngineLimits::default());
            assert_eq!(par.status, Status::Completed, "threads={threads}");
            assert_eq!(par.store.read(&0), seq.store.read(&0), "threads={threads}");
            assert_eq!(par.store.read(&1), seq.store.read(&1), "threads={threads}");
            assert_eq!(par.config_count(), seq.config_count(), "threads={threads}");
        }
    }

    /// Both drain policies compute the same fixpoint — bounded batches
    /// only reorder deliveries relative to evaluations.
    #[test]
    fn wake_batching_policies_agree() {
        use crate::fabric::WakeBatching;
        let seq = run_fixpoint(&mut Feedback, EngineLimits::default());
        for batching in [WakeBatching::Adaptive, WakeBatching::DrainAll] {
            let limits = EngineLimits {
                wake_batching: batching,
                ..EngineLimits::default()
            };
            let par = run_fixpoint_parallel(&mut Feedback, 3, limits);
            assert_eq!(par.status, Status::Completed, "{batching:?}");
            assert_eq!(par.store.read(&0), seq.store.read(&0), "{batching:?}");
            assert_eq!(par.store.read(&1), seq.store.read(&1), "{batching:?}");
        }
    }

    #[test]
    fn iteration_limit_fires_in_parallel() {
        let r = run_fixpoint_parallel(
            &mut Counter { n: 1_000_000 },
            2,
            EngineLimits::iterations(100),
        );
        assert_eq!(r.status, Status::IterationLimit);
        assert!(
            r.iterations <= 100,
            "evaluations counted globally: {}",
            r.iterations
        );
    }

    #[test]
    fn timeout_fires_in_parallel() {
        struct Spin;
        impl AbstractMachine for Spin {
            type Config = u64;
            type Addr = u64;
            type Val = u64;
            fn initial(&self) -> u64 {
                0
            }
            fn step(&mut self, c: &u64, _s: &mut TrackedStore<'_, u64, u64>, out: &mut Vec<u64>) {
                std::thread::sleep(Duration::from_millis(1));
                out.push(c + 1);
            }
        }
        impl ParallelMachine for Spin {
            fn fork(&self) -> Self {
                Spin
            }
            fn absorb(&mut self, _worker: Self) {}
        }
        let r = run_fixpoint_parallel(
            &mut Spin,
            2,
            EngineLimits::timeout(Duration::from_millis(50)),
        );
        assert_eq!(r.status, Status::TimedOut);
    }
}

//! Analysis-independent result summaries.
//!
//! Every analyzer in this crate (and the Featherweight Java analyzer in
//! `cfa-fj`) produces a [`Metrics`] summary so that the experiment harness
//! can tabulate analyses with different abstract domains side by side —
//! the paper's §6 tables compare k-CFA, m-CFA, polynomial k-CFA, and
//! 0CFA on exactly these axes (running time, precision via inlinings).

use crate::engine::Status;
use cfa_syntax::cps::{CallId, LamId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

/// A cross-analysis summary of one run.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Human-readable analysis name, e.g. `k-CFA(k=1)`.
    pub analysis: String,
    /// Completion status.
    pub status: Status,
    /// Wall-clock duration of the fixpoint computation.
    pub elapsed: Duration,
    /// Configuration evaluations (including re-evaluations).
    pub iterations: u64,
    /// Distinct configurations reached.
    pub config_count: usize,
    /// Bound abstract addresses in the final store.
    pub store_entries: usize,
    /// Total `(address, value)` facts in the final store.
    pub store_facts: usize,
    /// Reachable user (procedure) call sites.
    pub reachable_user_calls: usize,
    /// User call sites whose operator flow set is a single procedure —
    /// the "inlinings supported" precision metric of §6.2.
    pub singleton_user_calls: usize,
    /// Call targets per call site (the on-the-fly call graph).
    pub call_targets: BTreeMap<CallId, BTreeSet<LamId>>,
    /// Distinct abstract environments each λ-term was *entered* with —
    /// "in how many environments does `baz` get analyzed" (Figures 1/2).
    pub lam_env_counts: BTreeMap<LamId, usize>,
    /// Size of the union of all entry environments across λ-terms — the
    /// program-wide abstract-environment count the Figure 1/2 experiment
    /// compares between paradigms (`O(N+M)` vs `O(N·M)`).
    pub distinct_envs: usize,
    /// Rendered abstract values reaching `%halt`.
    pub halt_values: BTreeSet<String>,
}

impl Metrics {
    /// Sum of per-λ environment counts — the total abstract environment
    /// count the Figure 1/2 experiment reports.
    pub fn total_env_count(&self) -> usize {
        self.lam_env_counts.values().sum()
    }

    /// The largest per-λ environment count.
    pub fn max_env_count(&self) -> usize {
        self.lam_env_counts.values().copied().max().unwrap_or(0)
    }

    /// Environment count for one λ-term.
    pub fn env_count(&self, lam: LamId) -> usize {
        self.lam_env_counts.get(&lam).copied().unwrap_or(0)
    }

    /// The inlining metric as a fraction of reachable user calls.
    pub fn inlining_ratio(&self) -> f64 {
        if self.reachable_user_calls == 0 {
            return 0.0;
        }
        self.singleton_user_calls as f64 / self.reachable_user_calls as f64
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: status={:?} time={:.3?} iters={} configs={} store={}({} facts) inline={}/{}",
            self.analysis,
            self.status,
            self.elapsed,
            self.iterations,
            self.config_count,
            self.store_entries,
            self.store_facts,
            self.singleton_user_calls,
            self.reachable_user_calls,
        )
    }
}

/// Deduplicates a `(key, item)` log into per-key distinct-item counts.
///
/// The machines record entry environments as append-only logs (a hot
/// path must not pay a set insert per application); this is the shared
/// off-line fold that turns a log into the paper's distinct-environment
/// counts.
pub fn distinct_counts<K, E>(log: &[(K, E)]) -> std::collections::BTreeMap<K, usize>
where
    K: Ord + Copy,
    E: Eq + std::hash::Hash,
{
    let mut per: std::collections::BTreeMap<K, crate::fxhash::FxHashSet<&E>> =
        std::collections::BTreeMap::new();
    for (key, item) in log {
        per.entry(*key).or_default().insert(item);
    }
    per.into_iter()
        .map(|(key, items)| (key, items.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> Metrics {
        Metrics {
            analysis: "test".into(),
            status: Status::Completed,
            elapsed: Duration::from_millis(1),
            iterations: 10,
            config_count: 5,
            store_entries: 3,
            store_facts: 4,
            reachable_user_calls: 4,
            singleton_user_calls: 3,
            call_targets: BTreeMap::new(),
            lam_env_counts: [(LamId(0), 2), (LamId(1), 5)].into_iter().collect(),
            distinct_envs: 6,
            halt_values: BTreeSet::new(),
        }
    }

    #[test]
    fn env_count_helpers() {
        let m = dummy();
        assert_eq!(m.total_env_count(), 7);
        assert_eq!(m.max_env_count(), 5);
        assert_eq!(m.env_count(LamId(0)), 2);
        assert_eq!(m.env_count(LamId(9)), 0);
    }

    #[test]
    fn inlining_ratio() {
        let m = dummy();
        assert!((m.inlining_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!dummy().to_string().is_empty());
    }
}

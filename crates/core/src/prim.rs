//! Abstract interpretation of primitives.
//!
//! Classifies every [`PrimOp`] by how an abstract machine must handle it:
//! pure type-level results, pair allocation, pair projection, or abort.
//! Both the shared-environment (k-CFA) and flat-environment (m-CFA /
//! polynomial k-CFA) machines, and the Featherweight Java machine's cast
//! handling, share this classification.

use crate::domain::AbsBasic;
use cfa_syntax::cps::PrimOp;

/// How a primitive behaves abstractly.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PrimSpec {
    /// Allocates a pair in the abstract heap (`cons`).
    AllocPair,
    /// Projects the car of pair arguments.
    ReadCar,
    /// Projects the cdr of pair arguments.
    ReadCdr,
    /// Aborts the program (`error`): the continuation is never invoked.
    Abort,
    /// Produces exactly these abstract constants.
    Basics(&'static [AbsBasic]),
    /// Allocates an atomic reference cell (`atom`).
    AllocAtom,
    /// Reads an atomic reference cell (`deref`).
    ReadAtom,
    /// Unconditionally overwrites an atomic reference cell (`reset!`) —
    /// the unsynchronized write the race detector looks for.
    WriteAtom,
    /// Compare-and-swap on an atomic reference cell (`cas!`): abstractly
    /// both a read and a (synchronized) write.
    CasAtom,
}

/// Returns the abstract behavior of `op`.
pub fn classify(op: PrimOp) -> PrimSpec {
    use PrimOp::*;
    const ANY_INT: &[AbsBasic] = &[AbsBasic::AnyInt];
    const ANY_BOOL: &[AbsBasic] = &[AbsBasic::AnyBool];
    const STR: &[AbsBasic] = &[AbsBasic::Str];
    match op {
        Cons => PrimSpec::AllocPair,
        Car => PrimSpec::ReadCar,
        Cdr => PrimSpec::ReadCdr,
        Error => PrimSpec::Abort,
        AtomNew => PrimSpec::AllocAtom,
        AtomRead => PrimSpec::ReadAtom,
        AtomSet => PrimSpec::WriteAtom,
        AtomCas => PrimSpec::CasAtom,
        Add | Sub | Mul | Div | Rem => PrimSpec::Basics(ANY_INT),
        NumEq | Lt | Le | Gt | Ge | Eq | IsPair | IsNull | IsZero | IsNumber | IsBool
        | IsProcedure | IsSymbol | IsString | Not => PrimSpec::Basics(ANY_BOOL),
        StringAppend | ToString => PrimSpec::Basics(STR),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_ops_are_special() {
        assert_eq!(classify(PrimOp::Cons), PrimSpec::AllocPair);
        assert_eq!(classify(PrimOp::Car), PrimSpec::ReadCar);
        assert_eq!(classify(PrimOp::Cdr), PrimSpec::ReadCdr);
        assert_eq!(classify(PrimOp::Error), PrimSpec::Abort);
    }

    #[test]
    fn arithmetic_widens_to_any_int() {
        for op in [
            PrimOp::Add,
            PrimOp::Sub,
            PrimOp::Mul,
            PrimOp::Div,
            PrimOp::Rem,
        ] {
            assert_eq!(classify(op), PrimSpec::Basics(&[AbsBasic::AnyInt]));
        }
    }

    #[test]
    fn predicates_yield_any_bool() {
        for op in [
            PrimOp::IsNull,
            PrimOp::IsZero,
            PrimOp::Not,
            PrimOp::Eq,
            PrimOp::Lt,
        ] {
            assert_eq!(classify(op), PrimSpec::Basics(&[AbsBasic::AnyBool]));
        }
    }
}

//! The parallel scheduling fabric: one generic worker driver that both
//! store backends run on.
//!
//! PR 2 (replicated stores) and PR 4 (one shared address-sharded store)
//! each hand-rolled the same worker loop — steal discipline, idle
//! backoff, pending-counter termination, pop-keyed limit checks — and
//! the ROADMAP warned that scheduling fixes of the PR 2 class (stale
//! dependency wakeups, timeout starvation) must never be applied to
//! only one copy. This module is that extraction: the loop exists once,
//! parameterized over a [`BackendWorker`] that contributes only the
//! store-specific operations (how facts move, how dependencies
//! register, what a message means).
//!
//! # What the fabric owns
//!
//! * **stealable fresh-config deques** — one per worker; owners pop the
//!   front, thieves steal half from the back (the steal's two queue
//!   locks are never held across each other, so crossed steals cannot
//!   deadlock);
//! * **hash-sharded global dedup** of first-time configurations
//!   ([`WorkerCtx::submit_fresh`]);
//! * **pinned wakeups** — re-evaluations of a configuration run only on
//!   its home worker (where its read set and last-run state live), via
//!   a worker-private dedup-free wake queue whose duplicate pops the
//!   backend's epoch gate absorbs;
//! * **the pending-counter termination protocol** — one atomic counts
//!   queued tasks + in-flight evaluations + undelivered messages +
//!   queued wakeups; a task or message releases its own count only
//!   after everything it spawned has been counted, so `pending == 0`
//!   observed by an idle worker proves global quiescence
//!   ([`Fabric::finish`] asserts it on every completed run);
//! * **pop-keyed limit checks** — the wall clock and the store-bytes
//!   watermark are consulted every [`LIMIT_CHECK_CADENCE`] *pops*
//!   (evaluations and gate-skips alike), so a long run of skipped pops
//!   can never starve the timeout — the PR 2 fix, now in one place;
//! * **the iteration budget** — a global evaluation counter claimed
//!   before each step;
//! * **idle-spin backoff** and the [`SchedStats`] accounting for all of
//!   the above;
//! * **adaptive wake-batch coalescing** ([`WakeBatching`]) — how much
//!   of the inbox one drain takes before the worker returns to
//!   evaluating.
//!
//! # What a backend contributes
//!
//! The [`BackendWorker`] hooks are exactly the store-specific residue:
//! how a configuration is interned and epoch-gated against *its* store
//! view, what one evaluation does (step, dependency registration,
//! growth announcement), what an inter-worker message means (a
//! replicated fact batch to merge; a sharded growth / dependency /
//! wake routing message), and what the store-bytes watermark trims.
//! The replicated backend ([`crate::parallel`]) and the sharded
//! backend ([`crate::shardstore`]) implement it; the differential
//! suites prove both reach the sequential engine's fixpoint through
//! this one loop.

use crate::engine::{EngineLimits, EvalMode, SchedStats, Status};
use crate::fxhash::{FxHashSet, FxHasher};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of seen-set shards (a power of two well above any sane
/// thread count, so dedup contention stays negligible).
const SEEN_SHARDS: usize = 64;

/// Pops between wall-clock / watermark checks. Keyed on *total* pops
/// (evaluations + gate-skips): a long run of skipped pops must still
/// consult the clock, or it could overrun `time_budget` unnoticed.
pub const LIMIT_CHECK_CADENCE: u64 = 64;

/// Smallest bounded inbox drain under [`WakeBatching::Adaptive`].
const MIN_DRAIN_BATCH: usize = 8;

/// Largest bounded inbox drain under [`WakeBatching::Adaptive`].
const MAX_DRAIN_BATCH: usize = 512;

/// Seen-set shard for a configuration. Taken from the *high* hash bits:
/// the intra-shard `FxHashSet` derives its bucket index from the low
/// bits of the very same hash, so sharding on those would cluster every
/// entry of a shard onto 1/64th of the bucket positions.
fn seen_shard<C: Hash>(cfg: &C) -> usize {
    let mut h = FxHasher::default();
    cfg.hash(&mut h);
    (h.finish() >> 58) as usize % SEEN_SHARDS
}

/// How a worker drains its message inbox — the wake-batch coalescing
/// policy.
///
/// Messages (fact batches, growth notifications, dependency
/// registrations, remote wakeups) arrive in per-worker inboxes and are
/// always delivered before new evaluations are taken on. The policy
/// decides *how many* one drain takes:
///
/// * [`WakeBatching::Adaptive`] (the default) takes a bounded batch
///   sized by the worker's observed average inbox depth (clamped to
///   8..=512), then returns to evaluating. Workers that historically
///   see deep inboxes take bigger gulps (amortizing the inbox lock);
///   workers with shallow traffic take small ones, so evaluations —
///   and the wake coalescing that deferring pinned re-runs buys —
///   interleave with delivery instead of stalling behind a deep inbox.
/// * [`WakeBatching::DrainAll`] takes the whole inbox and delivers
///   every message before the next evaluation — the pre-fabric
///   behavior, kept selectable so `engine_bench` can measure the
///   before/after cells.
///
/// Carried on [`EngineLimits::wake_batching`]; ignored by the
/// sequential engine (which has no inbox).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum WakeBatching {
    /// Bounded drains sized by the observed average inbox depth.
    #[default]
    Adaptive,
    /// Unbounded drains: deliver everything before evaluating.
    DrainAll,
}

/// State shared by all workers of one parallel run: the scheduling
/// fabric. `C` is the machine's configuration type, `M` the backend's
/// inter-worker message type.
#[derive(Debug)]
pub struct Fabric<C, M> {
    /// Per-worker queues of *fresh* (never-evaluated) configurations.
    /// Owners push/pop the front; thieves steal a batch from the back.
    /// Tasks carry configurations by value so a stolen task is
    /// meaningful on any worker; wakeups never enter these queues —
    /// they are pinned to the home worker's private queue.
    queues: Vec<Mutex<VecDeque<C>>>,
    /// Per-worker message inboxes (ring buffers: senders push the
    /// back, bounded drains pop the front in O(batch)).
    inboxes: Vec<Mutex<VecDeque<M>>>,
    /// Global dedup of first-time configurations, sharded by hash.
    seen: Vec<Mutex<FxHashSet<C>>>,
    /// Queued tasks + in-flight evaluations + undelivered messages +
    /// queued wakeups.
    pending: AtomicU64,
    /// Raised once: fixpoint reached or a limit fired.
    done: AtomicBool,
    /// Global evaluation counter (for `max_iterations`).
    evals: AtomicU64,
    /// The limit that stopped the run, if any (first writer wins).
    stop_status: Mutex<Option<Status>>,
}

impl<C: Clone + Eq + Hash, M> Fabric<C, M> {
    /// An empty fabric for `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Fabric {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            inboxes: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            seen: (0..SEEN_SHARDS)
                .map(|_| Mutex::new(FxHashSet::default()))
                .collect(),
            pending: AtomicU64::new(0),
            done: AtomicBool::new(false),
            evals: AtomicU64::new(0),
            stop_status: Mutex::new(None),
        }
    }

    /// Number of workers this fabric schedules.
    pub fn threads(&self) -> usize {
        self.queues.len()
    }

    /// Seeds the run: marks `root` seen and queues it at worker 0.
    pub fn submit_root(&self, root: C) {
        self.seen[seen_shard(&root)]
            .lock()
            .expect("seen lock")
            .insert(root.clone());
        self.pending_add();
        self.queues[0].lock().expect("queue lock").push_back(root);
    }

    /// Records the limit that stopped the run (first writer wins) and
    /// raises the done flag.
    fn stop(&self, status: Status) {
        let mut slot = self.stop_status.lock().expect("status lock");
        slot.get_or_insert(status);
        self.done.store(true, Ordering::Release);
    }

    fn pending_add(&self) {
        self.pending.fetch_add(1, Ordering::AcqRel);
    }

    fn pending_sub(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// Tears the fabric down after all workers have returned: the final
    /// [`Status`] and the global configuration set (the drained dedup).
    ///
    /// # Panics
    ///
    /// On a [`Status::Completed`] run the pending counter must be
    /// exactly zero — queued tasks, in-flight evaluations, undelivered
    /// messages, and queued wakeups have all been released — and this
    /// asserts it: a nonzero count would mean the termination protocol
    /// lost or double-counted work.
    pub fn finish(self) -> (Status, Vec<C>) {
        let status = self
            .stop_status
            .into_inner()
            .expect("status lock")
            .unwrap_or(Status::Completed);
        if status == Status::Completed {
            assert_eq!(
                self.pending.load(Ordering::Acquire),
                0,
                "completed run with nonzero pending: termination protocol broken"
            );
        }
        let configs = self
            .seen
            .into_iter()
            .flat_map(|shard| shard.into_inner().expect("seen lock"))
            .collect();
        (status, configs)
    }
}

/// One worker's handle onto the fabric: its identity, its private wake
/// queue, and the scheduling counters the driver accumulates. Backends
/// receive `&mut WorkerCtx` in every hook and use it to submit fresh
/// configurations, schedule wakeups, and route messages — they never
/// touch the shared state directly.
#[derive(Debug)]
pub struct WorkerCtx<'f, C, M> {
    id: usize,
    fabric: &'f Fabric<C, M>,
    mode: EvalMode,
    batching: WakeBatching,
    /// Pinned re-evaluations of locally homed configurations, by local
    /// index. Worker-private (no lock): only the owner pushes and pops.
    /// Deliberately dedup-free — the backend's epoch gate absorbs
    /// duplicate pops in O(|reads|).
    wakes: VecDeque<usize>,
    /// Dependent re-enqueues this worker scheduled (local wakes plus
    /// remote wakes it shipped).
    pub wakeups: u64,
    /// `(address, value)` facts this worker's evaluations added.
    pub delta_facts: u64,
    /// Application sites this worker processed in narrowed semi-naive
    /// form.
    pub delta_applies: u64,
    /// Scheduler observability counters.
    pub sched: SchedStats,
    /// Sum of inbox depths observed at each non-empty drain — the
    /// adaptive batching signal (`depth_sum / sched.inbox_drains` is
    /// the average depth this worker actually finds waiting).
    depth_sum: u64,
    iterations: u64,
    skipped: u64,
}

impl<'f, C: Clone + Eq + Hash, M> WorkerCtx<'f, C, M> {
    fn new(id: usize, fabric: &'f Fabric<C, M>, mode: EvalMode, batching: WakeBatching) -> Self {
        WorkerCtx {
            id,
            fabric,
            mode,
            batching,
            wakes: VecDeque::new(),
            wakeups: 0,
            delta_facts: 0,
            delta_applies: 0,
            sched: SchedStats::default(),
            depth_sum: 0,
            iterations: 0,
            skipped: 0,
        }
    }

    /// This worker's index (0-based; also its shard id under the
    /// sharded backend).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total workers in the run.
    pub fn threads(&self) -> usize {
        self.fabric.threads()
    }

    /// The evaluation mode of the run (semi-naive vs full
    /// re-evaluation).
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Ships `msg` to `target`'s inbox, counting it pending until the
    /// receiver processes it.
    pub fn send(&self, target: usize, msg: M) {
        self.fabric.pending_add();
        self.fabric.inboxes[target]
            .lock()
            .expect("inbox lock")
            .push_back(msg);
    }

    /// Routes never-seen successors through the global dedup into this
    /// worker's stealable queue (locality first; stealing rebalances).
    pub fn submit_fresh(&self, successors: &mut Vec<C>) {
        for succ in successors.drain(..) {
            let fresh = self.fabric.seen[seen_shard(&succ)]
                .lock()
                .expect("seen lock")
                .insert(succ.clone());
            if fresh {
                self.fabric.pending_add();
                self.fabric.queues[self.id]
                    .lock()
                    .expect("queue lock")
                    .push_back(succ);
            }
        }
    }

    /// Schedules a wakeup of locally homed task `i`, counting it both
    /// pending and as a wakeup.
    pub fn wake_local(&mut self, i: usize) {
        self.wakeups += 1;
        self.fabric.pending_add();
        self.wakes.push_back(i);
    }

    /// Enqueues a wakeup delivered *by message* — the sender already
    /// counted it as a wakeup; only the pending count is added here.
    pub fn deliver_wake(&mut self, i: usize) {
        self.fabric.pending_add();
        self.wakes.push_back(i);
    }

    fn pop_local(&self) -> Option<C> {
        self.fabric.queues[self.id]
            .lock()
            .expect("queue lock")
            .pop_front()
    }

    /// Steals up to half of a victim's fresh queue (from the back),
    /// keeping one task to run and enqueueing the rest locally. Locks
    /// are never held across each other, so crossed steals cannot
    /// deadlock. Stolen tasks were already counted pending when first
    /// queued — moving them counts nothing.
    fn steal(&mut self) -> Option<C> {
        let n = self.fabric.queues.len();
        for off in 1..n {
            let victim = (self.id + off) % n;
            let mut stolen = {
                let mut q = self.fabric.queues[victim].lock().expect("queue lock");
                let len = q.len();
                if len == 0 {
                    continue;
                }
                q.split_off(len - len.div_ceil(2))
            };
            let first = stolen.pop_front();
            if !stolen.is_empty() {
                self.fabric.queues[self.id]
                    .lock()
                    .expect("queue lock")
                    .append(&mut stolen);
            }
            self.sched.steals += 1;
            return first;
        }
        self.sched.failed_steals += 1;
        None
    }

    /// How many messages the next inbox drain may take.
    fn drain_limit(&self) -> usize {
        match self.batching {
            WakeBatching::DrainAll => usize::MAX,
            WakeBatching::Adaptive => {
                // Sized by the *observed* inbox depth (what was waiting
                // when this worker drained), never by the delivered
                // batch sizes — those are themselves capped by the
                // limit, and averaging them would pin the limit at
                // MIN_DRAIN_BATCH forever.
                match self.depth_sum.checked_div(self.sched.inbox_drains) {
                    None => MIN_DRAIN_BATCH,
                    Some(avg) => usize::try_from(avg)
                        .unwrap_or(MAX_DRAIN_BATCH)
                        .clamp(MIN_DRAIN_BATCH, MAX_DRAIN_BATCH),
                }
            }
        }
    }

    /// Takes one bounded batch from this worker's inbox (FIFO order
    /// preserved; empty when the inbox is), recording the observed
    /// depth and the drain counters.
    fn drain_inbox(&mut self) -> VecDeque<M> {
        let limit = self.drain_limit();
        let mut inbox = self.fabric.inboxes[self.id].lock().expect("inbox lock");
        let depth = inbox.len();
        if depth == 0 {
            return VecDeque::new();
        }
        self.sched.inbox_drains += 1;
        self.sched.max_inbox_depth = self.sched.max_inbox_depth.max(depth as u64);
        self.depth_sum += depth as u64;
        let msgs = if depth <= limit {
            std::mem::take(&mut *inbox)
        } else {
            // Front drain of a ring buffer: O(limit), no shifting of
            // the messages left behind.
            inbox.drain(..limit).collect()
        };
        self.sched.inbox_batches += msgs.len() as u64;
        msgs
    }
}

/// The store-specific half of a parallel worker: what the fabric's
/// generic driver ([`drive`]) calls into.
///
/// Implementations hold the worker's store view and its per-config
/// scheduling state (read sets, last-run epochs, dependency lists);
/// the fabric holds everything else. Every hook receives the worker's
/// [`WorkerCtx`] to submit fresh configurations, schedule wakeups, and
/// route messages.
pub trait BackendWorker: Send {
    /// The machine's configuration type (tasks move between workers by
    /// value).
    type Config: Clone + Eq + Hash + Send + Sync;
    /// The backend's inter-worker message: a replicated fact batch, or
    /// a sharded growth / dependency / wake routing message.
    type Msg: Send;

    /// Seeds the worker's store view before the loop starts (e.g. the
    /// Featherweight Java machine pre-binds the `Main` receiver).
    fn seed(&mut self, ctx: &mut WorkerCtx<'_, Self::Config, Self::Msg>);

    /// Interns a fresh or stolen configuration into this worker's local
    /// tables, returning its task index. The configuration is homed
    /// here from now on: wakeups for it are pinned to this worker.
    fn intern(&mut self, cfg: Self::Config) -> usize;

    /// The epoch gate: `true` when re-evaluating task `i` is provably a
    /// no-op (no address it last read has grown past the epoch that
    /// evaluation observed). The fabric's wake queues are dedup-free,
    /// so duplicate wakeups die here — this gate is load-bearing, not
    /// an optimization.
    fn gated(&self, i: usize) -> bool;

    /// Evaluates task `i`: step the machine against the store view,
    /// register dependencies (with stale-dep pruning), submit fresh
    /// successors, and announce growth (local wakes + routed messages).
    fn evaluate(&mut self, i: usize, ctx: &mut WorkerCtx<'_, Self::Config, Self::Msg>);

    /// Delivers one inter-worker message. The fabric releases the
    /// message's pending count after this returns, so everything the
    /// delivery spawns (wakes, forwarded messages) must be counted
    /// inside.
    fn on_msg(&mut self, msg: Self::Msg, ctx: &mut WorkerCtx<'_, Self::Config, Self::Msg>);

    /// Enforces [`EngineLimits::store_bytes_watermark`], called on the
    /// pop cadence: trim delta logs if this worker's store (or its
    /// share of it) outgrew `watermark`.
    fn enforce_watermark(&mut self, watermark: usize, threads: usize);

    /// Final accounting after the loop exits (e.g. measuring
    /// store-resident bytes into `sched` before the driver unions the
    /// replica away).
    fn finish(&mut self, sched: &mut SchedStats);
}

/// What one worker hands back from [`drive`]: its backend (store view,
/// machine, backend-specific counters) plus the fabric-accumulated
/// scheduling counters.
#[derive(Debug)]
pub struct WorkerReport<B> {
    /// The backend worker, for the caller to drain (machine absorb,
    /// store merge, counter sums).
    pub backend: B,
    /// Evaluations this worker performed.
    pub iterations: u64,
    /// Pops absorbed by the epoch gate.
    pub skipped: u64,
    /// Wakeups this worker scheduled.
    pub wakeups: u64,
    /// Facts this worker's evaluations added.
    pub delta_facts: u64,
    /// Narrowed semi-naive application sites.
    pub delta_applies: u64,
    /// Scheduling counters.
    pub sched: SchedStats,
}

/// The unified worker loop — the one place every scheduling invariant
/// lives. See the module docs for the protocol; the order of business
/// each turn is: done flag, inbox (bounded by [`WakeBatching`]), fresh
/// work, pinned wakeups, steal, termination check / idle backoff; per
/// pop: cadenced wall-clock + watermark checks, epoch gate, iteration
/// claim, evaluation.
fn run_worker<B: BackendWorker>(
    mut backend: B,
    mut ctx: WorkerCtx<'_, B::Config, B::Msg>,
    limits: &EngineLimits,
    start: Instant,
) -> WorkerReport<B> {
    backend.seed(&mut ctx);

    let mut pops: u64 = 0;
    let mut idle_spins: u32 = 0;

    loop {
        if ctx.fabric.done.load(Ordering::Acquire) {
            break;
        }

        // Deliver messages before taking on new evaluations, so local
        // wakeups are scheduled against the freshest store view. Under
        // adaptive batching a bounded batch is taken and the worker
        // falls through to evaluate; under drain-all the whole inbox is
        // delivered first (the pre-fabric discipline).
        let msgs = ctx.drain_inbox();
        if !msgs.is_empty() {
            for msg in msgs {
                backend.on_msg(msg, &mut ctx);
                // Only now is the message's own pending released:
                // everything it spawned is already counted.
                ctx.fabric.pending_sub();
            }
            idle_spins = 0;
            if ctx.batching == WakeBatching::DrainAll {
                continue;
            }
        }

        // Fresh exploration first — it discovers the configuration
        // space and is the work that can be stolen; pinned re-runs
        // after (deferring them coalesces several growth events into
        // one re-evaluation); stealing only when both are dry.
        let task: Option<usize> = match ctx.pop_local() {
            Some(cfg) => Some(backend.intern(cfg)),
            None => match ctx.wakes.pop_front() {
                Some(i) => Some(i),
                None => ctx.steal().map(|cfg| backend.intern(cfg)),
            },
        };
        let Some(i) = task else {
            if ctx.fabric.pending.load(Ordering::Acquire) == 0 {
                ctx.fabric.done.store(true, Ordering::Release);
                break;
            }
            idle_spins += 1;
            ctx.sched.idle_spins += 1;
            if idle_spins < 32 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
            continue;
        };
        idle_spins = 0;

        pops += 1;
        if pops.is_multiple_of(LIMIT_CHECK_CADENCE) {
            if let Some(budget) = limits.time_budget {
                if start.elapsed() > budget {
                    ctx.fabric.stop(Status::TimedOut);
                    ctx.fabric.pending_sub();
                    break;
                }
            }
            if let Some(watermark) = limits.store_bytes_watermark {
                backend.enforce_watermark(watermark, ctx.fabric.threads());
            }
        }

        // The epoch gate is load-bearing here: the wake queue carries
        // no is-queued dedup, so a configuration woken by several
        // growth events before its re-run pops once per event — and
        // every pop past the first dies here.
        if backend.gated(i) {
            ctx.skipped += 1;
            ctx.fabric.pending_sub();
            continue;
        }

        if ctx.fabric.evals.fetch_add(1, Ordering::AcqRel) >= limits.max_iterations {
            ctx.fabric.stop(Status::IterationLimit);
            ctx.fabric.pending_sub();
            continue;
        }
        ctx.iterations += 1;

        backend.evaluate(i, &mut ctx);
        // Only now is this task's own pending count released:
        // everything it spawned is already counted, so pending == 0
        // implies global quiescence.
        ctx.fabric.pending_sub();
    }

    backend.finish(&mut ctx.sched);

    WorkerReport {
        backend,
        iterations: ctx.iterations,
        skipped: ctx.skipped,
        wakeups: ctx.wakeups,
        delta_facts: ctx.delta_facts,
        delta_applies: ctx.delta_applies,
        sched: ctx.sched,
    }
}

/// Runs one backend worker per fabric slot to quiescence (or until a
/// limit fires) and returns their reports. `backends.len()` must equal
/// [`Fabric::threads`]. Single-worker runs stay on the caller's thread:
/// deterministic, no spawn cost — and the degenerate case of the same
/// algorithm.
pub fn drive<B: BackendWorker>(
    fabric: &Fabric<B::Config, B::Msg>,
    backends: Vec<B>,
    mode: EvalMode,
    limits: &EngineLimits,
    start: Instant,
) -> Vec<WorkerReport<B>> {
    assert_eq!(
        backends.len(),
        fabric.threads(),
        "one backend worker per fabric slot"
    );
    let mut backends = backends;
    let ctx_for = |id: usize| WorkerCtx::new(id, fabric, mode, limits.wake_batching);

    if backends.len() == 1 {
        let backend = backends.pop().expect("one worker");
        vec![run_worker(backend, ctx_for(0), limits, start)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = backends
                .drain(..)
                .enumerate()
                .map(|(id, backend)| {
                    let ctx = ctx_for(id);
                    scope.spawn(move || run_worker(backend, ctx, limits, start))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }
}
